"""The full adaptation loop — a drifting stream that heals itself.

Walks every layer of the confidence-aware serving stack in one process:

1. train a ROCKET classifier on series drawn from a synthetic generator,
   publish it to a registry tagged ``stable``;
2. open a :class:`~repro.streaming.StreamScorer` over a
   :class:`~repro.serving.PredictionService` with an
   :class:`~repro.adaptation.AdaptationController` hooked in as the
   scorer's adapter;
3. stream fresh series from the *same* generator with a mid-stream
   prototype swap.  Watch the sequence unfold, window by window:

   * probabilities ride every window (``confidence`` on each result);
   * at the shift, accuracy collapses and the drift monitor flags it;
   * the controller collects a post-flag training set, retrains, and
     publishes the result as the next version tagged ``canary``;
   * live windows are shadow-scored against both versions;
   * the canary wins on accuracy and the ``stable`` tag moves to it;

4. print the decision, the registry state and the adaptation metrics
   the server would export on ``/metrics``.

The same flow from the shell:

    python -m repro train RacketSports --registry ./registry --tag stable
    python -m repro adapt RacketSports-rocket --registry ./registry \
        --synthetic-like RacketSports --series 150 --shift-at 2000

Run:  python examples/adaptive_serving.py
"""

import tempfile

import numpy as np

from repro.adaptation import AdaptationController, family_trainer
from repro.classifiers import RocketClassifier
from repro.data.generators import MTSGenerator
from repro.serving import (
    PROTOCOL_PREPROCESSING,
    ModelRegistry,
    PredictionService,
    model_metadata,
    prepare_panel,
)
from repro.streaming import StreamScorer, SyntheticSource

WINDOW = 32
N_SERIES = 160
SHIFT_AT = 40 * WINDOW  # swap prototypes a quarter of the way in


def main() -> None:
    # 1. a generator defines the "world"; train and publish `stable`.
    generator = MTSGenerator(n_channels=2, length=WINDOW, n_classes=2,
                             difficulty=0.2, seed=7)
    X, y = generator.sample(np.array([40, 40]), np.random.default_rng(1))
    model = RocketClassifier(num_kernels=200, seed=0).fit(prepare_panel(X), y)

    registry = ModelRegistry(tempfile.mkdtemp(prefix="registry-"))
    record = registry.publish(model, "demo", tags=("stable",),
                              metadata=model_metadata(
        model, dataset="synthetic", technique="baseline",
        preprocessing=PROTOCOL_PREPROCESSING, input_shape=[2, WINDOW]))
    print(f"published {record.name}:{record.version} tags={record.tags}")

    # 2. a service + scorer with the adaptation controller hooked in.
    service = PredictionService(registry, max_queue=256)
    controller = AdaptationController(
        service, "demo",
        collect_windows=30,     # post-flag windows the canary trains on
        shadow_windows=16,      # live comparisons before the decision
        background=False,       # inline retrain: deterministic demo
        trainer=family_trainer("rocket", num_kernels=200),
    )

    # 3. stream the same world, with a concept shift partway through.
    source = SyntheticSource(generator=generator, n_series=N_SERIES,
                             seed=3, shift_at=SHIFT_AT)
    shift_window = SHIFT_AT // WINDOW
    printed_flag = False
    with StreamScorer(service, "demo", window=WINDOW,
                      adapter=controller) as scorer:
        for sample in source:
            for result in scorer.feed(sample.values, sample.label):
                drift = result.drift
                if result.index in (0, shift_window) \
                        or (drift.shift and not printed_flag):
                    marker = " <-- DRIFT FLAG" if drift.shift else ""
                    print(f"window {result.index:3d}: label={result.label} "
                          f"truth={result.truth} "
                          f"confidence={result.confidence:.3f} "
                          f"acc_fast={drift.accuracy_fast:.2f}{marker}")
                    printed_flag = printed_flag or drift.shift
        scorer.finish()
    service.close()

    # 4. what happened?
    print(f"\nwindows scored: {scorer.windows}, drift-flagged: {scorer.shifts}")
    for decision in controller.decisions:
        print(f"decision: {decision.as_dict()}")
    for version in registry.versions("demo"):
        print(f"registry: demo:{version.version} tags={version.tags} "
              f"adapted_from={version.metadata.get('adapted_from')}")
    stats = controller.stats
    print(f"metrics: retrainings={stats.retrainings.value} "
          f"promotions={stats.promotions.value} "
          f"rollbacks={stats.rollbacks.value} "
          f"shadow_windows={stats.shadow_windows.value} "
          f"shadow_agreements={stats.shadow_agreements.value}")

    promoted = registry.record("demo", "stable")
    assert promoted.version == 2, "expected the canary to be promoted"
    print(f"\nthe stream healed itself: 'stable' now points at "
          f"demo:{promoted.version}")


if __name__ == "__main__":
    main()
