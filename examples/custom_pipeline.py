"""Custom augmentation pipelines: the combination strategy of Section IV-F.

The paper's Future Work argues for combining techniques from different
taxonomy branches (like CutMix-style pipelines in vision).  This example
builds two combinations —

* a Compose chain (time-warp, then mild noise) applied to every sample, and
* a RandomChoice mixture drawing per-sample from three branches —

registers the mixture as a first-class technique, and compares both against
their ingredients on an imbalanced dataset.

Run:  python examples/custom_pipeline.py
"""

from repro.augmentation import (
    Compose,
    NoiseInjection,
    RandomChoice,
    SMOTE,
    TimeWarping,
    augment_to_balance,
    make_augmenter,
    register_augmenter,
)
from repro.classifiers import RocketClassifier
from repro.data import load_dataset


def score(train, test_ready, augmenter, seed=0) -> float:
    augmented = augment_to_balance(train, augmenter, rng=seed)
    ready = augmented.znormalize().impute()
    model = RocketClassifier(num_kernels=400, seed=seed)
    model.fit(ready.X, ready.y)
    return model.score(test_ready.X, test_ready.y)


def main() -> None:
    train, test = load_dataset("Epilepsy", scale="small")
    test_ready = test.znormalize().impute()

    baseline_ready = train.znormalize().impute()
    baseline = RocketClassifier(num_kernels=400, seed=0)
    baseline.fit(baseline_ready.X, baseline_ready.y)
    baseline_accuracy = baseline.score(test_ready.X, test_ready.y)

    chain = Compose([TimeWarping(sigma=0.15), NoiseInjection(0.5)])
    mixture = RandomChoice(
        [NoiseInjection(1.0), SMOTE(), TimeWarping()],
        weights=[0.25, 0.5, 0.25],
    )
    # A pipeline is a first-class technique: register it and it becomes
    # available to the experiment grid by name.
    register_augmenter("warp_noise_smote_mix", lambda: mixture)
    from_registry = make_augmenter("warp_noise_smote_mix")

    contenders = {
        "noise1": make_augmenter("noise1"),
        "smote": make_augmenter("smote"),
        "time_warping": make_augmenter("time_warping"),
        chain.name: chain,
        from_registry.name: from_registry,
    }

    print(f"Epilepsy baseline accuracy: {baseline_accuracy:.3f}\n")
    print(f"{'technique':34s} {'accuracy':>9s} {'gain %':>8s}")
    for name, augmenter in contenders.items():
        accuracy = score(train, test_ready, augmenter)
        gain = 100 * (accuracy - baseline_accuracy) / baseline_accuracy
        print(f"{name:34s} {accuracy:9.3f} {gain:+8.2f}")

    print("\nCombinations draw from several taxonomy branches per synthetic "
          "sample — the strategy the paper's conclusion recommends exploring.")


if __name__ == "__main__":
    main()
