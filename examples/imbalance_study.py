"""Imbalance study: what plain accuracy hides on skewed datasets.

Sweeps the imbalance of a synthetic problem, balances each variant with
SMOTE, and reports plain accuracy *and* balanced accuracy / macro-F1 for a
ROCKET classifier.  The gap between the two metrics grows with imbalance —
the reason the paper's protocol balances to equality — and augmentation
recovers most of the minority-class recall.

Run:  python examples/imbalance_study.py
"""

import numpy as np

from repro.augmentation import SMOTE, augment_to_balance
from repro.classifiers import RocketClassifier
from repro.data import MTSGenerator, TimeSeriesDataset, imbalance_degree
from repro.experiments import classification_report


def build(minority_count: int, seed: int = 21):
    generator = MTSGenerator(
        n_channels=2, length=40, n_classes=2, difficulty=0.5, seed=seed
    )
    X_train, y_train = generator.sample(np.array([40, minority_count]), rng=seed)
    # The test set mirrors the training imbalance, as in the UEA archive.
    test_minority = max(4, 30 * minority_count // 40)
    X_test, y_test = generator.sample(np.array([30, test_minority]), rng=seed + 1)
    return TimeSeriesDataset(X_train, y_train, name="sweep"), X_test, y_test


def evaluate(train: TimeSeriesDataset, X_test, y_test):
    ready = train.znormalize().impute()
    model = RocketClassifier(num_kernels=400, seed=0).fit(ready.X, ready.y)
    test = TimeSeriesDataset(X_test, y_test).znormalize().impute()
    return classification_report(y_test, model.predict(test.X))


def main() -> None:
    print(f"{'minority':>8s} {'ID':>5s} | {'acc':>6s} {'bal-acc':>8s} {'F1':>6s} "
          f"| {'acc+SMOTE':>9s} {'bal+SMOTE':>9s}")
    for minority in (40, 20, 10, 5, 3):
        train, X_test, y_test = build(minority)
        degree = imbalance_degree(train.class_counts())

        plain = evaluate(train, X_test, y_test)
        balanced = evaluate(
            augment_to_balance(train, SMOTE(), rng=0), X_test, y_test
        )
        print(f"{minority:8d} {degree:5.2f} | {plain.accuracy:6.3f} "
              f"{plain.balanced_accuracy:8.3f} {plain.macro_f1:6.3f} "
              f"| {balanced.accuracy:9.3f} {balanced.balanced_accuracy:9.3f}")

    print("\nAs the minority shrinks, plain accuracy stays deceptively high "
          "while balanced accuracy collapses; SMOTE balancing closes much of "
          "the gap — the mechanism behind the paper's Table IV gains.")


if __name__ == "__main__":
    main()
