"""Train, publish, serve and classify over HTTP — the serving subsystem.

Walks the full model-serving path in one process:

1. train a ROCKET classifier on an archive dataset;
2. publish it to a versioned registry (content-hashed ``.npz`` artifact
   plus fit-time metadata) and tag it ``prod``;
3. start the stdlib HTTP prediction server in a background thread —
   load-hardened: bounded request queue (429 on overflow), body-size cap
   (413), LRU model cache;
4. classify test series via ``POST /v1/models/<name>/predict`` — single
   requests and a concurrent burst that the micro-batcher coalesces —
   and check the labels against the in-process classifier;
5. scrape ``GET /metrics`` (Prometheus text format) and show the
   per-model counters the burst produced.

The same flow from the shell:

    python -m repro train RacketSports --registry ./registry --tag prod
    python -m repro serve --registry ./registry --port 8080 \
        --max-queue 256 --max-loaded-models 8 --access-log
    curl -s localhost:8080/v1/models/RacketSports-rocket/predict \
        -d '{"series": [[...]]}'
    curl -s localhost:8080/metrics

Run:  python examples/serve_predict.py
"""

import json
import tempfile
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro.classifiers import RocketClassifier
from repro.data import load_dataset
from repro.serving import ModelRegistry, create_server, model_metadata, prepare_panel

DATASET = "RacketSports"
KERNELS = 400


def post_predict(base: str, name: str, series) -> dict:
    request = urllib.request.Request(
        f"{base}/v1/models/{name}/predict",
        data=json.dumps({"series": series.tolist()}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def main() -> None:
    # 1. train exactly as the protocol does: znormalize + impute, then fit.
    train, test = load_dataset(DATASET, scale="small")
    ready = train.znormalize().impute()
    model = RocketClassifier(num_kernels=KERNELS, seed=0).fit(ready.X, ready.y)
    test_ready = test.znormalize().impute()
    print(f"trained ROCKET on {DATASET}: "
          f"{100 * model.score(test_ready.X, test_ready.y):.1f}% test accuracy")

    # 2. publish to a registry.
    registry = ModelRegistry(tempfile.mkdtemp(prefix="registry-"))
    record = registry.publish(
        model, DATASET,
        metadata=model_metadata(model, dataset=DATASET, technique="baseline",
                                seed=0, preprocessing="znormalize+impute"),
        tags=("prod",),
    )
    print(f"published {record.name}:{record.version} "
          f"(digest {record.digest}, tags {list(record.tags)})")

    # 3. serve it, load-hardened: bounded queue, body cap, LRU lifecycle.
    server = create_server(registry, port=0, max_queue=256,
                           max_loaded_models=8, max_body_bytes=10_000_000)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{server.port}"
    with urllib.request.urlopen(f"{base}/healthz") as response:
        print(f"server up at {base}: {json.load(response)}")

    # 4a. single requests.
    expected = model.predict(test_ready.X)
    for index in range(3):
        reply = post_predict(base, DATASET, test_ready.X[index])
        print(f"  series {index}: HTTP label {reply['label']}, "
              f"in-process {expected[index]}, true {test.y[index]}")

    # 4b. a concurrent burst — the micro-batcher coalesces these.
    with ThreadPoolExecutor(max_workers=8) as pool:
        replies = list(pool.map(
            lambda series: post_predict(base, DATASET, series), test_ready.X))
    labels = [reply["label"] for reply in replies]
    stats = server.service._loaded[(DATASET, record.version)][1].stats
    print(f"burst of {len(labels)}: all labels match in-process predictions: "
          f"{labels == [int(v) for v in expected]}")
    print(f"micro-batching: {stats.requests} requests served in "
          f"{stats.batches} panels (mean batch {stats.mean_batch_size:.1f})")

    # 5. observability: the burst as Prometheus metrics.
    with urllib.request.urlopen(f"{base}/metrics") as response:
        metrics = response.read().decode()
    shown = [line for line in metrics.splitlines()
             if line.startswith(("repro_serving_requests_total",
                                 "repro_serving_batches_total",
                                 "repro_serving_request_latency_seconds_count",
                                 "repro_serving_loaded_models"))]
    print("GET /metrics (excerpt):")
    for line in shown:
        print(f"  {line}")

    server.shutdown()
    server.server_close()  # drains in-flight batches before returning


if __name__ == "__main__":
    main()
