"""Online classification of a drifting stream — the streaming subsystem.

Walks the full streaming path in one process:

1. train a ROCKET classifier on series drawn from a synthetic generator
   and publish it to a registry;
2. serve the registry over HTTP (the same load-hardened server the batch
   path uses);
3. build a synthetic sample stream from the *same* generator, with a
   mid-stream concept shift: halfway through, the class prototypes are
   swapped, so the nominal labels keep arriving but their shapes belong
   to other classes;
4. replay the stream against ``POST /v1/models/<name>/stream`` (NDJSON
   over chunked encoding) and watch the per-window results: accuracy
   collapses at the shift and the drift monitor raises its flag a few
   windows later — and not before;
5. scrape ``GET /metrics`` for the per-stream counters.

The same flow from the shell:

    python -m repro train RacketSports --registry ./registry
    python -m repro serve --registry ./registry --port 8080
    python -m repro stream RacketSports-rocket --url http://127.0.0.1:8080 \
        --synthetic-like RacketSports --series 50 --shift-at 750

Run:  python examples/stream_scoring.py
"""

import tempfile
import threading
import urllib.request

import numpy as np

from repro.classifiers import RocketClassifier
from repro.data.generators import MTSGenerator
from repro.serving import ModelRegistry, create_server, model_metadata, prepare_panel
from repro.streaming import SyntheticSource, stream_windows

WINDOW = 32
N_SERIES = 50
SHIFT_AT = (N_SERIES // 2) * WINDOW  # swap prototypes mid-stream


def main() -> None:
    # 1. a generator defines the "world"; train a model on it.
    generator = MTSGenerator(n_channels=2, length=WINDOW, n_classes=2,
                             difficulty=0.15, seed=0)
    X, y = generator.sample(np.array([40, 40]), np.random.default_rng(1))
    model = RocketClassifier(num_kernels=200, seed=0).fit(prepare_panel(X), y)

    registry = ModelRegistry(tempfile.mkdtemp(prefix="registry-"))
    record = registry.publish(model, "demo", metadata=model_metadata(
        model, dataset="synthetic", preprocessing="znormalize+impute"))
    print(f"published {record.name}:{record.version}")

    # 2. serve it.
    server = create_server(registry, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"serving on http://127.0.0.1:{server.port}")

    # 3. the same world, but the concepts swap halfway through.
    source = SyntheticSource(generator=generator, n_series=N_SERIES, seed=7,
                             shift_at=SHIFT_AT)

    # 4. replay it window by window over NDJSON.
    first_flag = None
    correct_pre = correct_post = n_pre = n_post = 0
    for event in stream_windows("127.0.0.1", server.port, "demo",
                                ((s.values, s.label) for s in source),
                                window=WINDOW):
        if event["kind"] == "window":
            hit = event["label"] == event["truth"]
            if event["end"] < SHIFT_AT:
                n_pre, correct_pre = n_pre + 1, correct_pre + hit
            else:
                n_post, correct_post = n_post + 1, correct_post + hit
            if event["drift"]["shift"] and first_flag is None:
                first_flag = event["index"]
                print(f"  drift flag raised at window {event['index']} "
                      f"(signal: {event['drift']['signal']}, shift began at "
                      f"window {SHIFT_AT // WINDOW})")
        elif event["kind"] == "summary":
            print(f"summary: {event['windows']} windows over "
                  f"{event['samples']} samples, {event['shifts']} flagged")
    print(f"accuracy before the shift: {correct_pre / n_pre:.2f}  "
          f"after: {correct_post / n_post:.2f}")

    # 5. the stream as Prometheus metrics.
    with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}/metrics") as response:
        metrics = response.read().decode()
    print("GET /metrics (streaming excerpt):")
    for line in metrics.splitlines():
        if line.startswith("repro_serving_stream") \
                or line.startswith("repro_serving_active_streams"):
            print(f"  {line}")

    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
