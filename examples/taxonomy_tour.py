"""Taxonomy tour: every implemented technique from Figure 1, in one pass.

Prints the taxonomy tree, then exercises one representative technique per
branch on the same minority class and summarises what each produced —
demonstrating the breadth of the augmentation API.

Run:  python examples/taxonomy_tour.py
"""

import numpy as np

from repro.augmentation import available_augmenters, make_augmenter
from repro.data import make_classification_panel
from repro.taxonomy import implementation_coverage, render_taxonomy

REPRESENTATIVES = {
    "time domain": "time_warping",
    "frequency domain": "fourier",
    "oversampling": "smote",
    "decomposition": "emd",
    "statistical generative": "gmm",
    "neural generative": "autoencoder",
    "probabilistic generative": "ar",
    "label preserving": "range",
    "structure preserving": "ohit",
}


def main() -> None:
    print(render_taxonomy())
    print("\nCoverage per branch:")
    for branch, fraction in sorted(implementation_coverage().items()):
        print(f"  {branch}: {fraction:.0%}")
    print(f"\nRegistered techniques: {len(available_augmenters())}")

    X, y = make_classification_panel(
        n_series=30, n_channels=3, length=48, n_classes=2, seed=4
    )
    minority, majority = X[y == 0], X[y == 1]
    print(f"\nGenerating 8 synthetic series per branch from a "
          f"{len(minority)}-series minority class:\n")
    print(f"{'branch':26s} {'technique':12s} {'out std':>8s} {'src dist':>9s}")
    source_flat = minority.reshape(len(minority), -1)
    for branch, name in REPRESENTATIVES.items():
        augmenter = make_augmenter(name)
        if hasattr(augmenter, "epochs"):
            augmenter.epochs = 20  # keep the tour fast
        synthetic = augmenter.generate(minority, 8, rng=0, X_other=majority)
        flat = synthetic.reshape(8, -1)
        nearest = np.linalg.norm(
            flat[:, None, :] - source_flat[None, :, :], axis=2
        ).min(axis=1).mean()
        print(f"{branch:26s} {name:12s} {synthetic.std():8.3f} {nearest:9.2f}")

    print("\nEach branch fills the same contract — generate(X_class, n) — so "
          "techniques are interchangeable in the balancing protocol.")


if __name__ == "__main__":
    main()
