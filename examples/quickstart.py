"""Quickstart: augment an imbalanced multivariate dataset and classify it.

Walks the paper's core loop end to end on one archive dataset:

1. load an imbalanced dataset from the (simulated) UEA archive;
2. inspect its Table III characteristics;
3. balance it with SMOTE using the paper's protocol;
4. train ROCKET + ridge on original vs augmented data;
5. report the relative gain (Eq. 3).

Run:  python examples/quickstart.py
"""

from repro.augmentation import augment_to_balance, make_augmenter
from repro.classifiers import RocketClassifier
from repro.data import characterize, load_dataset
from repro.experiments import relative_gain


def main() -> None:
    train, test = load_dataset("Handwriting", scale="small")
    print(f"Loaded {train.name}: {train.n_series} train series, "
          f"{train.n_channels} channels, length {train.length}")

    row = characterize(train, test)
    print(f"Characteristics: {row.n_classes} classes, "
          f"imbalance degree {row.im_ratio:.2f}, variance {row.var_train:.3f}")
    print(f"Class counts before augmentation: {train.class_counts().tolist()}")

    smote = make_augmenter("smote")
    balanced = augment_to_balance(train, smote, rng=0)
    print(f"Class counts after SMOTE balancing: {balanced.class_counts().tolist()}")

    # Classification pipeline: per-series z-normalisation, then imputation.
    test_ready = test.znormalize().impute()

    baseline_ready = train.znormalize().impute()
    baseline = RocketClassifier(num_kernels=500, seed=0)
    baseline.fit(baseline_ready.X, baseline_ready.y)
    baseline_accuracy = baseline.score(test_ready.X, test_ready.y)

    augmented_ready = balanced.znormalize().impute()
    augmented = RocketClassifier(num_kernels=500, seed=0)
    augmented.fit(augmented_ready.X, augmented_ready.y)
    augmented_accuracy = augmented.score(test_ready.X, test_ready.y)

    gain = relative_gain(baseline_accuracy, augmented_accuracy)
    print(f"\nROCKET baseline accuracy : {baseline_accuracy:.3f}")
    print(f"ROCKET + SMOTE accuracy  : {augmented_accuracy:.3f}")
    print(f"Relative gain (Eq. 3)    : {100 * gain:+.2f}%")


if __name__ == "__main__":
    main()
