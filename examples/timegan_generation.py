"""TimeGAN deep dive: train a per-class TimeGAN and inspect its output.

The paper highlights TimeGAN as "the only generative model to take into
account the temporal aspect of time series".  This example trains one on a
single class (the paper's per-class protocol), then compares real vs
generated series on three temporal statistics: marginal moments, lag-1
autocorrelation and cross-channel correlation.

Run:  python examples/timegan_generation.py
"""

import numpy as np

from repro.augmentation import TimeGAN, TimeGANConfig
from repro.data import make_classification_panel


def lag1_autocorrelation(panel: np.ndarray) -> float:
    values = []
    for series in panel:
        for channel in series:
            if channel.std() > 1e-12:
                values.append(np.corrcoef(channel[:-1], channel[1:])[0, 1])
    return float(np.nanmean(values))


def cross_channel_correlation(panel: np.ndarray) -> float:
    values = []
    for series in panel:
        if series.shape[0] < 2:
            continue
        corr = np.corrcoef(series)
        values.append(corr[np.triu_indices_from(corr, k=1)].mean())
    return float(np.nanmean(values))


def main() -> None:
    X, y = make_classification_panel(
        n_series=40, n_channels=3, length=32, n_classes=2, difficulty=0.3, seed=9
    )
    real = X[y == 0]
    print(f"Training TimeGAN on {len(real)} series of one class "
          f"({real.shape[1]} channels x {real.shape[2]} steps)")

    # Paper hyper-parameters (latent 10, gamma 1, lr 5e-4, batch 32) with a
    # CPU-scale iteration budget; the paper used (2500, 2500, 1000).
    config = TimeGANConfig(iterations=(150, 150, 80))
    generated = TimeGAN(config).generate(real, 20, rng=0)

    print(f"\n{'statistic':28s} {'real':>8s} {'generated':>10s}")
    for label, fn in [
        ("mean", lambda p: float(p.mean())),
        ("std", lambda p: float(p.std())),
        ("lag-1 autocorrelation", lag1_autocorrelation),
        ("cross-channel correlation", cross_channel_correlation),
    ]:
        print(f"{label:28s} {fn(real):8.3f} {fn(generated):10.3f}")

    print("\nGenerated series stay inside the real value range "
          f"[{real.min():.2f}, {real.max():.2f}]: "
          f"[{generated.min():.2f}, {generated.max():.2f}]")
    print("The supervisor loss is what keeps lag-1 structure close; a plain "
          "GAN on flattened windows loses it.")


if __name__ == "__main__":
    main()
