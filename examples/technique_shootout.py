"""Technique shoot-out: the paper's five configurations on one dataset.

Reproduces one row of Table IV — baseline ROCKET accuracy plus the five
augmentation configurations (noise 1/3/5, SMOTE, TimeGAN) — and reports the
best-technique relative improvement, demonstrating the "no one-size-fits-
all" finding at example scale.

Run:  python examples/technique_shootout.py [dataset]
"""

import sys

from repro.augmentation import TimeGAN, TimeGANConfig, make_augmenter
from repro.data import load_dataset
from repro.experiments import evaluate, rocket_spec


def main(dataset_name: str = "Heartbeat") -> None:
    train, test = load_dataset(dataset_name, scale="small")
    print(f"Dataset {dataset_name}: class counts {train.class_counts().tolist()}")

    spec = rocket_spec(num_kernels=400)
    baseline = evaluate(train, test, spec, None, n_runs=3, seed=0)
    print(f"\n{'technique':12s} {'accuracy':>9s} {'std':>6s} {'gain %':>8s}")
    print(f"{'baseline':12s} {100 * baseline.mean_accuracy:8.2f}% "
          f"{100 * baseline.std_accuracy:5.2f}  {'':>8s}")

    techniques = [
        make_augmenter("noise1"),
        make_augmenter("noise3"),
        make_augmenter("noise5"),
        make_augmenter("smote"),
        TimeGAN(TimeGANConfig(iterations=(60, 60, 30))),  # CPU-scale budget
    ]
    best_name, best_accuracy = None, -1.0
    for technique in techniques:
        result = evaluate(train, test, spec, technique, n_runs=3, seed=0)
        gain = 100 * (result.mean_accuracy - baseline.mean_accuracy) / baseline.mean_accuracy
        print(f"{result.technique:12s} {100 * result.mean_accuracy:8.2f}% "
              f"{100 * result.std_accuracy:5.2f}  {gain:+8.2f}")
        if result.mean_accuracy > best_accuracy:
            best_name, best_accuracy = result.technique, result.mean_accuracy

    improvement = 100 * (best_accuracy - baseline.mean_accuracy) / baseline.mean_accuracy
    print(f"\nBest technique: {best_name}  (improvement {improvement:+.2f}% — "
          f"the paper's Table IV 'Improvement' column)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Heartbeat")
