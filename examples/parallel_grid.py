"""Parallel, cached, resumable accuracy grids with the execution engine.

Shows the engine features behind ``run_grid``:

1. run a small Table IV-style grid on a 4-process worker pool;
2. verify the engine's core promise — ``jobs=4`` equals ``jobs=1``
   cell for cell, because every job's seeds derive from its identity;
3. checkpoint the grid to a JSON-lines file and resume it, re-running
   only the cells a (simulated) interruption left unfinished.

Run:  python examples/parallel_grid.py
"""

import tempfile
import time
from pathlib import Path

from repro.experiments import render_accuracy_table, rocket_spec, run_grid

DATASETS = ["Epilepsy", "RacketSports", "SelfRegulationSCP1"]
TECHNIQUES = ("noise1", "noise3", "smote")


def main() -> None:
    spec = rocket_spec(300)

    start = time.perf_counter()
    parallel = run_grid(spec, datasets=DATASETS, techniques=TECHNIQUES,
                        n_runs=3, seed=0, jobs=4)
    print(f"4-worker grid finished in {time.perf_counter() - start:.2f}s")
    print(render_accuracy_table(parallel))

    sequential = run_grid(spec, datasets=DATASETS, techniques=TECHNIQUES,
                          n_runs=3, seed=0, jobs=1)
    identical = all(
        sequential.cells[key].accuracies == parallel.cells[key].accuracies
        for key in sequential.cells
    )
    print(f"\njobs=1 equals jobs=4 cell for cell: {identical}")

    # Checkpoint, "interrupt" by dropping completed cells, then resume.
    checkpoint = Path(tempfile.mkdtemp()) / "grid.jsonl"
    run_grid(spec, datasets=DATASETS, techniques=TECHNIQUES,
             n_runs=3, seed=0, checkpoint=checkpoint)
    lines = checkpoint.read_text().splitlines()
    checkpoint.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
    print(f"\ncheckpoint truncated to {len(lines) // 2} of {len(lines)} lines; resuming...")

    start = time.perf_counter()
    resumed = run_grid(spec, datasets=DATASETS, techniques=TECHNIQUES,
                       n_runs=3, seed=0, checkpoint=checkpoint, resume=True)
    print(f"resume completed the missing cells in {time.perf_counter() - start:.2f}s")
    identical = all(
        sequential.cells[key].accuracies == resumed.cells[key].accuracies
        for key in sequential.cells
    )
    print(f"resumed grid equals uninterrupted grid: {identical}")


if __name__ == "__main__":
    main()
