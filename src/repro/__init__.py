"""repro — reproduction of "Data Augmentation for Multivariate Time Series
Classification: An Experimental Study" (ICDE 2024).

Subpackages
-----------
``repro.data``
    Dataset container, synthetic UEA archive (Table III), characteristics.
``repro.augmentation``
    The full Figure-1 taxonomy of augmentation techniques, plus the paper's
    balance-augmentation protocol.
``repro.classifiers``
    ROCKET + ridge, InceptionTime, MiniRocket and nearest-neighbour baselines.
``repro.nn``
    The from-scratch numpy deep-learning substrate.
``repro.experiments``
    Protocol, grid runner and renderers for every table and figure.
``repro.serving``
    Versioned model registry, micro-batching inference, HTTP prediction API.
``repro.taxonomy``
    The Figure-1 tree linked to implementations.

Quickstart
----------
>>> from repro.data import load_dataset
>>> from repro.augmentation import make_augmenter, augment_to_balance
>>> from repro.classifiers import RocketClassifier
>>> train, test = load_dataset("Epilepsy")
>>> augmented = augment_to_balance(train, make_augmenter("smote"), rng=0)
>>> ready = augmented.znormalize().impute()
>>> accuracy = RocketClassifier(num_kernels=500, seed=0).fit(ready.X, ready.y).score(
...     test.znormalize().impute().X, test.y)
"""

from . import augmentation, classifiers, data, experiments, nn, serving, taxonomy

__version__ = "1.1.0"

__all__ = ["augmentation", "classifiers", "data", "experiments", "nn", "serving",
           "taxonomy", "__version__"]
