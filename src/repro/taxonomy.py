"""The Figure-1 taxonomy of time-series augmentation techniques.

The taxonomy is represented as a :class:`networkx.DiGraph` (a tree rooted
at ``"Time Series Data Augmentation Techniques"``) whose leaves carry the
registry names of the implementations in :mod:`repro.augmentation`.  It
powers the Figure-1 benchmark, coverage tests and the taxonomy-tour
example.
"""

from __future__ import annotations

import networkx as nx

from .augmentation import available_augmenters

__all__ = ["build_taxonomy", "taxonomy_leaves", "implementation_coverage", "render_taxonomy"]

ROOT = "Time Series Data Augmentation Techniques"

# (path under the root, implementations at that leaf)
_LEAVES: list[tuple[tuple[str, ...], tuple[str, ...]]] = [
    (("Basic Techniques", "Time Domain", "Slicing"), ("slicing",)),
    (("Basic Techniques", "Time Domain", "Permutation"), ("permutation",)),
    (("Basic Techniques", "Time Domain", "Warping"),
     ("window_warping", "time_warping", "magnitude_warping", "guided_warping", "dba")),
    (("Basic Techniques", "Time Domain", "Masking"), ("masking", "cropping", "pooling")),
    (("Basic Techniques", "Time Domain", "Injecting Noise"), ("noise1", "noise3", "noise5", "drift")),
    (("Basic Techniques", "Time Domain", "Rotation"), ("rotation",)),
    (("Basic Techniques", "Time Domain", "Scaling"), ("scaling",)),
    (("Basic Techniques", "Frequency Domain", "Fourier Transform"), ("fourier",)),
    (("Basic Techniques", "Frequency Domain", "Frequency Warping"), ("frequency_warping",)),
    (("Basic Techniques", "Frequency Domain", "Frequency Masking"), ("frequency_masking",)),
    (("Basic Techniques", "Frequency Domain", "Mixing"), ("spectral_mixing",)),
    (("Basic Techniques", "Oversampling Techniques", "Interpolation"),
     ("smote", "borderline_smote", "smotefuna", "interpolation", "random_oversampling")),
    (("Basic Techniques", "Oversampling Techniques", "Density"), ("adasyn", "swim")),
    (("Basic Techniques", "Decomposition Techniques", "STL"), ("stl",)),
    (("Basic Techniques", "Decomposition Techniques", "EMD"), ("emd",)),
    (("Basic Techniques", "Decomposition Techniques", "RobustTAD"), ("fourier", "stl")),
    (("Basic Techniques", "Decomposition Techniques", "ICA"), ("ica",)),
    (("Generative Techniques", "Statistical Models", "Posterior Sampling"),
     ("gaussian", "meboot")),
    (("Generative Techniques", "Statistical Models", "Gaussian Trees"), ("gmm",)),
    (("Generative Techniques", "Statistical Models", "LGT"), ("lgt",)),
    (("Generative Techniques", "Statistical Models", "GRATIS"), ("gratis",)),
    (("Generative Techniques", "Neural Networks", "Autoencoders"),
     ("autoencoder", "vae", "lstm_ae")),
    (("Generative Techniques", "Neural Networks", "GANs"), ("timegan", "wgan")),
    (("Generative Techniques", "Probabilistic Models", "Autoregressive Models"),
     ("ar", "markov")),
    (("Generative Techniques", "Probabilistic Models", "Diffusion Models"), ("diffusion",)),
    (("Generative Techniques", "Probabilistic Models", "Normalizing Flows"), ("flow",)),
    (("Preserving Techniques", "Label Preserving", "Range Techniques"), ("range",)),
    (("Preserving Techniques", "Structure Preserving", "SPO"), ("spo",)),
    (("Preserving Techniques", "Structure Preserving", "INOS"), ("inos",)),
    (("Preserving Techniques", "Structure Preserving", "MDO"), ("mdo",)),
    (("Preserving Techniques", "Structure Preserving", "OHIT"), ("ohit",)),
]


def build_taxonomy() -> nx.DiGraph:
    """Build the Figure-1 tree; leaf nodes carry ``implementations`` lists."""
    graph = nx.DiGraph()
    graph.add_node(ROOT, kind="root")
    for path, implementations in _LEAVES:
        parent = ROOT
        for depth, part in enumerate(path):
            node = " / ".join(path[: depth + 1])
            if node not in graph:
                kind = "leaf" if depth == len(path) - 1 else "branch"
                graph.add_node(node, kind=kind, label=part)
            graph.add_edge(parent, node)
            parent = node
        graph.nodes[parent]["kind"] = "leaf"
        graph.nodes[parent]["implementations"] = list(implementations)
    return graph


def taxonomy_leaves(graph: nx.DiGraph | None = None) -> list[str]:
    """Leaf node identifiers, in Figure-1 order."""
    graph = graph or build_taxonomy()
    return [n for n, data in graph.nodes(data=True) if data.get("kind") == "leaf"]


def implementation_coverage(graph: nx.DiGraph | None = None) -> dict[str, float]:
    """Fraction of leaves with >= 1 implementation, per top-level branch."""
    graph = graph or build_taxonomy()
    registered = set(available_augmenters())
    coverage: dict[str, list[int]] = {}
    for leaf in taxonomy_leaves(graph):
        branch = leaf.split(" / ")[0]
        implementations = graph.nodes[leaf].get("implementations", [])
        implemented = any(name in registered for name in implementations)
        coverage.setdefault(branch, []).append(int(implemented))
    return {branch: sum(flags) / len(flags) for branch, flags in coverage.items()}


def render_taxonomy(graph: nx.DiGraph | None = None) -> str:
    """ASCII rendering of the Figure-1 tree with implementation markers."""
    graph = graph or build_taxonomy()
    registered = set(available_augmenters())
    lines = [ROOT]

    def visit(node: str, depth: int) -> None:
        for child in sorted(graph.successors(node)):
            data = graph.nodes[child]
            label = data.get("label", child)
            marker = ""
            if data.get("kind") == "leaf":
                implementations = [i for i in data.get("implementations", []) if i in registered]
                marker = f"  [{', '.join(implementations)}]" if implementations else "  [--]"
            lines.append("  " * depth + f"- {label}{marker}")
            visit(child, depth + 1)

    visit(ROOT, 1)
    return "\n".join(lines)
