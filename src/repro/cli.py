"""Command-line interface: ``python -m repro <command>``.

Regenerates any published artefact from the terminal without writing code:

* ``datasets`` — list the 13 archive datasets with their Table III specs;
* ``techniques`` — list every registered augmentation technique;
* ``taxonomy`` — print the Figure-1 tree with implementation markers;
* ``table3`` — regenerate Table III (measured vs paper);
* ``evaluate`` — run one (dataset, model, technique) protocol cell;
* ``grid`` — run the Table IV/V grid on selected datasets;
* ``figure`` — render one of Figures 2-6 as an ASCII scatter.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Data Augmentation for "
                    "Multivariate Time Series Classification' (ICDE 2024)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list the 13 archive datasets")
    commands.add_parser("techniques", help="list registered augmentation techniques")
    commands.add_parser("taxonomy", help="print the Figure-1 taxonomy tree")
    table3 = commands.add_parser("table3", help="regenerate Table III")
    table3.add_argument("--scale", choices=("small", "full"), default="small")

    evaluate = commands.add_parser("evaluate", help="run one protocol cell")
    evaluate.add_argument("dataset")
    evaluate.add_argument("--technique", default=None,
                          help="augmenter name (omit for the baseline)")
    evaluate.add_argument("--model", choices=("rocket", "inceptiontime"), default="rocket")
    evaluate.add_argument("--runs", type=int, default=3)
    evaluate.add_argument("--kernels", type=int, default=500)
    evaluate.add_argument("--seed", type=int, default=0)

    grid = commands.add_parser("grid", help="run a Table IV/V-style grid")
    grid.add_argument("--datasets", nargs="+", default=None)
    grid.add_argument("--model", choices=("rocket", "inceptiontime"), default="rocket")
    grid.add_argument("--techniques", nargs="+",
                      default=["noise1", "noise3", "noise5", "smote"])
    grid.add_argument("--runs", type=int, default=2)
    grid.add_argument("--kernels", type=int, default=300)
    grid.add_argument("--seed", type=int, default=0)
    grid.add_argument("--scale", choices=("small", "full"), default="small")
    grid.add_argument("--jobs", type=int, default=1,
                      help="worker processes; results are identical for any value")
    grid.add_argument("--checkpoint", default=None,
                      help="JSON-lines file recording completed cells")
    grid.add_argument("--resume", action="store_true",
                      help="continue an interrupted grid from --checkpoint")

    figure = commands.add_parser("figure", help="render Figure 2-6 as ASCII")
    figure.add_argument("number", type=int, choices=(2, 3, 4, 5, 6))

    fidelity = commands.add_parser(
        "fidelity", help="audit a technique's synthetic-data quality"
    )
    fidelity.add_argument("dataset")
    fidelity.add_argument("--technique", default="smote")
    fidelity.add_argument("--label", type=int, default=None,
                          help="class to audit (default: largest class)")
    fidelity.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "datasets": _cmd_datasets,
        "techniques": _cmd_techniques,
        "taxonomy": _cmd_taxonomy,
        "table3": _cmd_table3,
        "evaluate": _cmd_evaluate,
        "grid": _cmd_grid,
        "figure": _cmd_figure,
        "fidelity": _cmd_fidelity,
    }[args.command]
    return handler(args)


def _cmd_datasets(args) -> int:
    from .data.archive import UEA_IMBALANCED_SPECS

    print(f"{'dataset':24s} {'classes':>7s} {'train':>6s} {'dim':>5s} "
          f"{'length':>7s} {'ID':>6s} {'miss':>5s}")
    for spec in UEA_IMBALANCED_SPECS:
        print(f"{spec.name:24s} {spec.n_classes:7d} {spec.train_size:6d} "
              f"{spec.dim:5d} {spec.length:7d} {spec.im_ratio:6.2f} {spec.prop_miss:5.2f}")
    return 0


def _cmd_techniques(args) -> int:
    from .augmentation import available_augmenters, make_augmenter

    for name in available_augmenters():
        taxonomy = " / ".join(make_augmenter(name).taxonomy) or "composition"
        print(f"{name:20s} {taxonomy}")
    return 0


def _cmd_taxonomy(args) -> int:
    from .taxonomy import render_taxonomy

    print(render_taxonomy())
    return 0


def _cmd_table3(args) -> int:
    from .experiments.tables import render_table3_characteristics

    print(render_table3_characteristics(scale=args.scale))
    return 0


def _model_spec(args):
    from .experiments import inceptiontime_spec, rocket_spec

    if args.model == "rocket":
        return rocket_spec(args.kernels)
    return inceptiontime_spec()


def _cmd_evaluate(args) -> int:
    from .data.archive import load_dataset
    from .experiments import evaluate

    train, test = load_dataset(args.dataset, scale="small")
    result = evaluate(train, test, _model_spec(args), args.technique,
                      n_runs=args.runs, seed=args.seed)
    print(f"{result.dataset} / {result.model} / {result.technique}: "
          f"{100 * result.mean_accuracy:.2f}% "
          f"(+/- {100 * result.std_accuracy:.2f} over {args.runs} runs)")
    return 0


def _cmd_grid(args) -> int:
    from .experiments import render_accuracy_table, run_grid, summarize_findings

    try:
        grid = run_grid(_model_spec(args), datasets=args.datasets,
                        techniques=tuple(args.techniques), n_runs=args.runs,
                        scale=args.scale, seed=args.seed, verbose=True,
                        jobs=args.jobs, checkpoint=args.checkpoint,
                        resume=args.resume)
    except ValueError as error:
        # Checkpoint conflicts and bad flag values are user errors, not bugs.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_accuracy_table(grid))
    summary = summarize_findings(grid)
    print(f"\nimproved datasets: {summary.improved_datasets}/{summary.n_datasets}; "
          f"average improvement {summary.average_improvement_percent:+.2f}%")
    return 0


def _cmd_figure(args) -> int:
    from .experiments import (
        ascii_scatter,
        figure2_noise,
        figure3_smote,
        figure4_timegan,
        figure5_range,
        figure6_ohit,
    )

    builders = {2: figure2_noise, 3: figure3_smote, 4: figure4_timegan,
                5: figure5_range, 6: figure6_ohit}
    print(ascii_scatter(builders[args.number]()))
    return 0


def _cmd_fidelity(args) -> int:
    from .augmentation import make_augmenter
    from .data.archive import load_dataset
    from .experiments import fidelity_report

    train, _ = load_dataset(args.dataset, scale="small")
    label = args.label if args.label is not None else int(train.class_counts().argmax())
    X_class = train.series_of_class(label)
    X_other = train.X[train.y != label]
    report = fidelity_report(
        make_augmenter(args.technique), X_class, seed=args.seed, X_other=X_other
    )
    print(f"{args.dataset} class {label} ({len(X_class)} series):")
    print(f"  {report.as_row()}")
    print("  (disc: 0 = indistinguishable from real, 0.5 = trivially separable;"
          " tstr/trtr: 1 = trains a forecaster as well as real data)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
