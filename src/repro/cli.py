"""Command-line interface: ``python -m repro <command>``.

Regenerates any published artefact from the terminal without writing code:

* ``datasets`` — list the 13 archive datasets with their Table III specs;
* ``techniques`` — list every registered augmentation technique;
* ``taxonomy`` — print the Figure-1 tree with implementation markers;
* ``table3`` — regenerate Table III (measured vs paper);
* ``evaluate`` — run one (dataset, model, technique) protocol cell;
* ``grid`` — run the Table IV/V grid on selected datasets;
* ``figure`` — render one of Figures 2-6 as an ASCII scatter;
* ``train`` — fit a classifier and publish it to a model registry;
* ``predict`` — classify series with a registry model, in process;
* ``serve`` — start the HTTP prediction server over a registry;
* ``stream`` — replay a sample stream against a served model (NDJSON);
* ``adapt`` — run the drift→retrain→canary→promote loop on a stream;
* ``scenarios`` — replay scenario worlds and score the loop's budgets;
* ``trace`` — dump a running server's flight recorder (recent/slowest
  request traces from ``GET /v1/debug/traces``);
* ``audit`` — replay a decision-audit journal (JSONL) and print the
  decisions it reconstructs.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Data Augmentation for "
                    "Multivariate Time Series Classification' (ICDE 2024)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list the 13 archive datasets")
    commands.add_parser("techniques", help="list registered augmentation techniques")
    commands.add_parser("taxonomy", help="print the Figure-1 taxonomy tree")
    table3 = commands.add_parser("table3", help="regenerate Table III")
    table3.add_argument("--scale", choices=("small", "full"), default="small")

    evaluate = commands.add_parser("evaluate", help="run one protocol cell")
    evaluate.add_argument("dataset")
    evaluate.add_argument("--technique", default=None,
                          help="augmenter name (omit for the baseline)")
    evaluate.add_argument("--model", choices=("rocket", "inceptiontime"), default="rocket")
    evaluate.add_argument("--runs", type=int, default=3)
    evaluate.add_argument("--kernels", type=int, default=500)
    evaluate.add_argument("--seed", type=int, default=0)

    grid = commands.add_parser("grid", help="run a Table IV/V-style grid")
    grid.add_argument("--datasets", nargs="+", default=None)
    grid.add_argument("--model", choices=("rocket", "inceptiontime"), default="rocket")
    grid.add_argument("--techniques", nargs="+",
                      default=["noise1", "noise3", "noise5", "smote"])
    grid.add_argument("--runs", type=int, default=2)
    grid.add_argument("--kernels", type=int, default=300)
    grid.add_argument("--seed", type=int, default=0)
    grid.add_argument("--scale", choices=("small", "full"), default="small")
    grid.add_argument("--jobs", type=int, default=1,
                      help="worker processes; results are identical for any value")
    grid.add_argument("--checkpoint", default=None,
                      help="JSON-lines file recording completed cells")
    grid.add_argument("--resume", action="store_true",
                      help="continue an interrupted grid from --checkpoint")

    figure = commands.add_parser("figure", help="render Figure 2-6 as ASCII")
    figure.add_argument("number", type=int, choices=(2, 3, 4, 5, 6))

    fidelity = commands.add_parser(
        "fidelity", help="audit a technique's synthetic-data quality"
    )
    fidelity.add_argument("dataset")
    fidelity.add_argument("--technique", default="smote")
    fidelity.add_argument("--label", type=int, default=None,
                          help="class to audit (default: largest class)")
    fidelity.add_argument("--seed", type=int, default=0)

    train = commands.add_parser(
        "train", help="train a classifier and publish it to a model registry"
    )
    train.add_argument("dataset")
    train.add_argument("--registry", required=True, help="registry root directory")
    train.add_argument("--name", default=None,
                       help="registry model name (default: <dataset>-<model>)")
    train.add_argument("--model", choices=("rocket", "minirocket", "inceptiontime"),
                       default="rocket")
    train.add_argument("--technique", default=None,
                       help="balance the training set with this augmenter first")
    train.add_argument("--kernels", type=int, default=500,
                       help="ROCKET kernel budget")
    train.add_argument("--features", type=int, default=2000,
                       help="MiniRocket feature budget")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--scale", choices=("small", "full"), default="small")
    train.add_argument("--tag", action="append", default=None,
                       help="tag the published version (repeatable)")
    train.add_argument("--infer-dtype", choices=("float32", "float64"),
                       default="float32",
                       help="compute policy recorded for serving; fitting "
                            "always runs float64 (float32 serves the fused "
                            "fast path within the documented tolerance)")
    train.add_argument("--backend", choices=("numpy", "numba"),
                       default="numpy",
                       help="execution engine recorded for serving; numba "
                            "is parity-gated at publish and silently falls "
                            "back to numpy where unavailable")

    predict = commands.add_parser(
        "predict", help="classify series with a registry model"
    )
    predict.add_argument("name", help="registry model name")
    predict.add_argument("--registry", required=True)
    predict.add_argument("--version", default=None,
                         help="version number or tag (default: latest)")
    source = predict.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", default=None,
                        help="JSON file: one channels x length series, or a list of them")
    source.add_argument("--dataset", default=None,
                        help="classify a series from this archive dataset's test split")
    predict.add_argument("--index", type=int, default=0,
                         help="test-split series index (with --dataset)")
    predict.add_argument("--scale", choices=("small", "full"), default="small")

    serve = commands.add_parser(
        "serve", help="start the HTTP prediction server over a registry"
    )
    serve.add_argument("--registry", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="0 picks a free ephemeral port")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="micro-batch panel-size ceiling")
    serve.add_argument("--max-latency-ms", type=float, default=5.0,
                       help="how long a batch waits for stragglers")
    serve.add_argument("--batch-workers", type=int, default=1,
                       help="batch-assembling threads per model")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="bounded per-model request queue; overflow is "
                            "answered 429 (0 = unbounded)")
    serve.add_argument("--max-loaded-models", type=int, default=0,
                       help="LRU-evict loaded models beyond this many "
                            "(0 = unlimited)")
    serve.add_argument("--max-body-bytes", type=int, default=10_000_000,
                       help="refuse request bodies above this with 413 "
                            "(0 = unlimited)")
    serve.add_argument("--trace", action="store_true",
                       help="enable request tracing: per-stage spans land "
                            "in an in-memory flight recorder served at "
                            "GET /v1/debug/traces (see 'repro trace')")
    serve.add_argument("--trace-capacity", type=int, default=128,
                       help="completed traces the flight recorder retains "
                            "(plus the slowest 16; default 128)")
    serve.add_argument("--trace-export", default=None, metavar="PATH",
                       help="also append every finished span to this JSONL "
                            "file (implies --trace)")
    serve.add_argument("--access-log", action="store_true",
                       help="write one structured JSON line per request "
                            "to stderr")
    serve.add_argument("--infer-dtype", choices=("float32", "float64"),
                       default=None,
                       help="override every model's published compute "
                            "policy (default: honour metadata, float32 "
                            "when unrecorded)")
    serve.add_argument("--backend", choices=("numpy", "numba"), default=None,
                       help="override the execution engine (with "
                            "--infer-dtype; numba silently falls back to "
                            "numpy where unavailable)")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per HTTP request")
    serve.add_argument("--workers", type=int, default=1,
                       help="pre-fork this many worker processes behind one "
                            "port (shared-nothing; SO_REUSEPORT where "
                            "available); 1 = classic single-process server")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="seconds a stopping worker may spend finishing "
                            "in-flight requests before it is killed")

    stream = commands.add_parser(
        "stream", help="replay a sample stream against a served model "
                       "(NDJSON over POST /v1/models/<name>/stream)"
    )
    stream.add_argument("name", help="served model name")
    stream.add_argument("--url", default="http://127.0.0.1:8080",
                        help="base URL of a running `repro serve`")
    source = stream.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", default=None,
                        help="replay this archive dataset's test split")
    source.add_argument("--input", default=None,
                        help="JSON file: a panel, or one channels x length "
                             "series, replayed sample by sample")
    source.add_argument("--synthetic-like", default=None, metavar="DATASET",
                        help="stream fresh series from the dataset's own "
                             "generator (supports --shift-at)")
    stream.add_argument("--window", type=int, default=None,
                        help="window length (default: the source's series "
                             "length)")
    stream.add_argument("--hop", type=int, default=None,
                        help="samples between windows (default: window — "
                             "tumbling)")
    stream.add_argument("--version", default=None,
                        help="model version number or tag (default: latest)")
    stream.add_argument("--scale", choices=("small", "full"), default="small")
    stream.add_argument("--series", type=int, default=50,
                        help="series count for --synthetic-like")
    stream.add_argument("--seed", type=int, default=0,
                        help="stream seed for --synthetic-like")
    stream.add_argument("--shift-at", type=int, default=None,
                        help="induce a concept shift (prototype swap) after "
                             "this many samples (--synthetic-like only)")
    stream.add_argument("--limit", type=int, default=None,
                        help="stop after this many samples")
    stream.add_argument("--no-labels", action="store_true",
                        help="withhold ground-truth labels (drift detection "
                             "falls back to the prediction distribution)")
    stream.add_argument("--session", default=None, metavar="ID",
                        help="stream through a durable session: the client "
                             "resumes across disconnects and worker deaths "
                             "with no window lost or repeated (default id: "
                             "a fresh random one)")
    stream.add_argument("--resume", action="store_true",
                        help="with --session: re-attach the named session "
                             "where it stopped instead of requiring a fresh "
                             "one")
    stream.add_argument("--quiet", action="store_true",
                        help="print only the summary line")

    adapt = commands.add_parser(
        "adapt", help="score a stream in process and run the full "
                      "adaptation loop: drift flag -> retrain -> canary "
                      "-> shadow -> promote/rollback"
    )
    adapt.add_argument("name", help="registry model name")
    adapt.add_argument("--registry", required=True)
    source = adapt.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", default=None,
                        help="replay this archive dataset's test split")
    source.add_argument("--input", default=None,
                        help="JSON file: a panel, or one channels x length "
                             "series, replayed sample by sample")
    source.add_argument("--synthetic-like", default=None, metavar="DATASET",
                        help="stream fresh series from the dataset's own "
                             "generator (supports --shift-at)")
    adapt.add_argument("--window", type=int, default=None,
                       help="window length (default: the source's series "
                            "length)")
    adapt.add_argument("--hop", type=int, default=None,
                       help="samples between windows (default: window)")
    adapt.add_argument("--version", default=None,
                       help="stable version number or tag to score with "
                            "(default: latest)")
    adapt.add_argument("--scale", choices=("small", "full"), default="small")
    adapt.add_argument("--series", type=int, default=50,
                       help="series count for --synthetic-like")
    adapt.add_argument("--seed", type=int, default=0,
                       help="stream seed for --synthetic-like")
    adapt.add_argument("--shift-at", type=int, default=None,
                       help="induce a concept shift (prototype swap) after "
                            "this many samples (--synthetic-like only)")
    adapt.add_argument("--limit", type=int, default=None,
                       help="stop after this many samples")
    adapt.add_argument("--no-labels", action="store_true",
                       help="withhold ground-truth labels (drift uses the "
                            "confidence EWMA; retraining self-trains on "
                            "predictions; promotion uses the confidence "
                            "criterion)")
    adapt.add_argument("--drift-threshold", type=float, default=0.35,
                       help="accuracy-drop / label-mix flag threshold")
    adapt.add_argument("--confidence-threshold", type=float, default=0.08,
                       help="confidence-drop flag threshold (unlabelled "
                            "streams with probability-serving models)")
    adapt.add_argument("--warmup", type=int, default=10,
                       help="windows before the monitor may flag")
    adapt.add_argument("--persistence", type=int, default=5,
                       help="consecutive exceedances the confidence and "
                            "label-mix signals need")
    adapt.add_argument("--collect-windows", type=int, default=48,
                       help="post-flag windows gathered before retraining")
    adapt.add_argument("--shadow-windows", type=int, default=24,
                       help="live comparisons before promote/rollback")
    adapt.add_argument("--cooldown", type=int, default=50,
                       help="windows to ignore flags after a decision")
    adapt.add_argument("--audit-journal", default=None, metavar="PATH",
                       help="append every drift flag, retrain, shadow "
                            "verdict and promote/rollback decision (with "
                            "evidence) to this JSONL journal; replay it "
                            "with 'repro audit'")
    adapt.add_argument("--background", action="store_true",
                       help="retrain off-thread (production behavior); the "
                            "default trains inline so short demo streams "
                            "reach a decision deterministically")
    adapt.add_argument("--quiet", action="store_true",
                       help="print only decision and summary lines")

    scenarios = commands.add_parser(
        "scenarios", help="replay scenario worlds through the full "
                          "stream -> drift -> canary loop and score "
                          "detection delay, false flags and recovery "
                          "against each world's budget"
    )
    scenarios.add_argument("--list", action="store_true", dest="list_worlds",
                           help="list registered worlds and exit")
    scenarios.add_argument("--worlds", nargs="+", default=None,
                           metavar="WORLD",
                           help="world names to replay (default: all)")
    scenarios.add_argument("--seed", type=int, default=0,
                           help="master seed (worlds are bit-deterministic "
                                "per seed)")
    scenarios.add_argument("--series", type=int, default=None,
                           help="stream length override, in series")
    scenarios.add_argument("--json", default=None, metavar="PATH",
                           help="also write the suite report to this file")
    scenarios.add_argument("--journal", default=None, metavar="PATH",
                           help="append every replay's audit events (drift "
                                "flags, retrains, shadow verdicts, "
                                "decisions) to this JSONL journal")
    scenarios.add_argument("--quiet", action="store_true",
                           help="print only the per-world verdict lines")

    trace = commands.add_parser(
        "trace", help="dump a running server's flight recorder: the "
                      "recent (or slowest) request traces with their "
                      "per-stage spans, from GET /v1/debug/traces"
    )
    trace.add_argument("--url", default="http://127.0.0.1:8080",
                       help="server base URL (default http://127.0.0.1:8080)")
    trace.add_argument("--limit", type=int, default=10,
                       help="traces to fetch (default 10)")
    trace.add_argument("--slowest", action="store_true",
                       help="fetch the slowest retained traces instead of "
                            "the most recent")
    trace.add_argument("--json", action="store_true", dest="as_json",
                       help="print the raw JSON payload instead of the "
                            "span tree rendering")

    audit = commands.add_parser(
        "audit", help="replay a decision-audit journal (JSONL) offline "
                      "and print the drift flags, retrains and "
                      "promote/rollback decisions it reconstructs"
    )
    audit.add_argument("path", help="journal file written by "
                                    "'repro adapt --audit-journal', "
                                    "'repro scenarios --journal' or an "
                                    "AuditJournal")
    audit.add_argument("--kind", default=None,
                       help="print only events of this kind (drift_flag, "
                            "retrain, shadow_verdict, promotion, ...)")
    audit.add_argument("--events", action="store_true",
                       help="print every event line, not just the replay "
                            "summary")
    audit.add_argument("--json", action="store_true", dest="as_json",
                       help="print the replay summary as one JSON object")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "datasets": _cmd_datasets,
        "techniques": _cmd_techniques,
        "taxonomy": _cmd_taxonomy,
        "table3": _cmd_table3,
        "evaluate": _cmd_evaluate,
        "grid": _cmd_grid,
        "figure": _cmd_figure,
        "fidelity": _cmd_fidelity,
        "train": _cmd_train,
        "predict": _cmd_predict,
        "serve": _cmd_serve,
        "stream": _cmd_stream,
        "adapt": _cmd_adapt,
        "scenarios": _cmd_scenarios,
        "trace": _cmd_trace,
        "audit": _cmd_audit,
    }[args.command]
    return handler(args)


def _cmd_datasets(args) -> int:
    from .data.archive import UEA_IMBALANCED_SPECS

    print(f"{'dataset':24s} {'classes':>7s} {'train':>6s} {'dim':>5s} "
          f"{'length':>7s} {'ID':>6s} {'miss':>5s}")
    for spec in UEA_IMBALANCED_SPECS:
        print(f"{spec.name:24s} {spec.n_classes:7d} {spec.train_size:6d} "
              f"{spec.dim:5d} {spec.length:7d} {spec.im_ratio:6.2f} {spec.prop_miss:5.2f}")
    return 0


def _cmd_techniques(args) -> int:
    from .augmentation import available_augmenters, make_augmenter

    for name in available_augmenters():
        taxonomy = " / ".join(make_augmenter(name).taxonomy) or "composition"
        print(f"{name:20s} {taxonomy}")
    return 0


def _cmd_taxonomy(args) -> int:
    from .taxonomy import render_taxonomy

    print(render_taxonomy())
    return 0


def _cmd_table3(args) -> int:
    from .experiments.tables import render_table3_characteristics

    print(render_table3_characteristics(scale=args.scale))
    return 0


def _model_spec(args):
    from .experiments import inceptiontime_spec, rocket_spec

    if args.model == "rocket":
        return rocket_spec(args.kernels)
    return inceptiontime_spec()


def _cmd_evaluate(args) -> int:
    from .data.archive import load_dataset
    from .experiments import evaluate

    train, test = load_dataset(args.dataset, scale="small")
    result = evaluate(train, test, _model_spec(args), args.technique,
                      n_runs=args.runs, seed=args.seed)
    print(f"{result.dataset} / {result.model} / {result.technique}: "
          f"{100 * result.mean_accuracy:.2f}% "
          f"(+/- {100 * result.std_accuracy:.2f} over {args.runs} runs)")
    return 0


def _cmd_grid(args) -> int:
    from .experiments import render_accuracy_table, run_grid, summarize_findings

    try:
        grid = run_grid(_model_spec(args), datasets=args.datasets,
                        techniques=tuple(args.techniques), n_runs=args.runs,
                        scale=args.scale, seed=args.seed, verbose=True,
                        jobs=args.jobs, checkpoint=args.checkpoint,
                        resume=args.resume)
    except ValueError as error:
        # Checkpoint conflicts and bad flag values are user errors, not bugs.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_accuracy_table(grid))
    summary = summarize_findings(grid)
    print(f"\nimproved datasets: {summary.improved_datasets}/{summary.n_datasets}; "
          f"average improvement {summary.average_improvement_percent:+.2f}%")
    return 0


def _cmd_figure(args) -> int:
    from .experiments import (
        ascii_scatter,
        figure2_noise,
        figure3_smote,
        figure4_timegan,
        figure5_range,
        figure6_ohit,
    )

    builders = {2: figure2_noise, 3: figure3_smote, 4: figure4_timegan,
                5: figure5_range, 6: figure6_ohit}
    print(ascii_scatter(builders[args.number]()))
    return 0


def _cmd_fidelity(args) -> int:
    from .augmentation import make_augmenter
    from .data.archive import load_dataset
    from .experiments import fidelity_report

    train, _ = load_dataset(args.dataset, scale="small")
    label = args.label if args.label is not None else int(train.class_counts().argmax())
    X_class = train.series_of_class(label)
    X_other = train.X[train.y != label]
    report = fidelity_report(
        make_augmenter(args.technique), X_class, seed=args.seed, X_other=X_other
    )
    print(f"{args.dataset} class {label} ({len(X_class)} series):")
    print(f"  {report.as_row()}")
    print("  (disc: 0 = indistinguishable from real, 0.5 = trivially separable;"
          " tstr/trtr: 1 = trains a forecaster as well as real data)")
    return 0


def _build_classifier(args, model_rng):
    from .classifiers import (
        InceptionTimeClassifier,
        MiniRocketClassifier,
        RocketClassifier,
    )

    if args.model == "rocket":
        return RocketClassifier(num_kernels=args.kernels, seed=model_rng)
    if args.model == "minirocket":
        return MiniRocketClassifier(num_features=args.features, seed=model_rng)
    return InceptionTimeClassifier(
        n_filters=8, depth=3, kernel_sizes=(9, 5, 3), bottleneck=8,
        ensemble_size=1, max_epochs=30, patience=10, batch_size=16,
        seed=model_rng,
    )


def _cmd_train(args) -> int:
    import numpy as np

    from .augmentation import augment_to_balance, make_augmenter
    from .data.archive import load_dataset
    from .experiments import cell_seeds
    from .serving import (
        PROTOCOL_PREPROCESSING,
        ModelRegistry,
        model_metadata,
        validate_reference,
    )

    name = args.name or f"{args.dataset}-{args.model}"
    try:
        # Fail on a bad name/tag now, not after minutes of training.
        validate_reference(name, tuple(args.tag or ()))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        train, test = load_dataset(args.dataset, scale=args.scale)
        technique = args.technique or "baseline"
        # The same seed derivation as grid run 0, so a published model is
        # the model that grid cell trains.
        model_seed, aug_seed = cell_seeds(args.seed, args.dataset, technique, 0)
        synth_ready = None
        if args.technique is not None:
            augmented = augment_to_balance(train, make_augmenter(args.technique),
                                           rng=np.random.default_rng(aug_seed))
            if augmented.n_series > train.n_series:
                tail = augmented.subset(np.arange(train.n_series, augmented.n_series))
                synth_ready = tail.znormalize().impute()
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    train_ready = train.znormalize().impute()
    test_ready = test.znormalize().impute()

    model = _build_classifier(args, np.random.default_rng(model_seed))
    if synth_ready is not None and args.model == "inceptiontime":
        # Synthetic samples join only the training part of the internal
        # validation split (Sec. IV-D) — the same path the grid takes.
        model.fit(train_ready.X, train_ready.y,
                  X_extra=synth_ready.X, y_extra=synth_ready.y)
    elif synth_ready is not None:
        model.fit(np.concatenate([train_ready.X, synth_ready.X], axis=0),
                  np.concatenate([train_ready.y, synth_ready.y]))
    else:
        model.fit(train_ready.X, train_ready.y)
    accuracy = model.score(test_ready.X, test_ready.y)

    metadata = model_metadata(
        model, dataset=args.dataset, technique=technique, seed=args.seed,
        scale=args.scale, test_accuracy=accuracy,
        preprocessing=PROTOCOL_PREPROCESSING,
        # Explicit for every family: deep models don't expose a transform
        # fit shape, but the serving contract is the trained panel's shape.
        input_shape=list(train_ready.X.shape[1:]),
    )
    from .backend import ComputePolicy

    policy = ComputePolicy(dtype=args.infer_dtype, engine=args.backend)
    record = ModelRegistry(args.registry).publish(
        model, name, metadata=metadata, tags=tuple(args.tag or ()),
        compute_policy=policy,
        # The publish-time parity sweep runs on the (preprocessed) test
        # panel: the recorded policy is only written if labels match the
        # float64 reference bit-for-bit and probabilities stay within
        # tolerance on real data.
        parity_panel=test_ready.X)
    tags = f" tags={','.join(record.tags)}" if record.tags else ""
    print(f"published {record.name}:{record.version}{tags} "
          f"(digest {record.digest}, test accuracy {100 * accuracy:.2f}%)")
    return 0


def _cmd_predict(args) -> int:
    import json

    import numpy as np

    from .serving import ModelRegistry, PredictionService, ServingError

    if args.input is not None:
        try:
            with open(args.input) as handle:
                instances = np.asarray(json.load(handle), dtype=np.float64)
        except (OSError, json.JSONDecodeError, ValueError) as error:
            print(f"error: cannot read series from {args.input}: {error}",
                  file=sys.stderr)
            return 2
        truth = None
    else:
        from .data.archive import load_dataset

        try:
            _, test = load_dataset(args.dataset, scale=args.scale)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        if not 0 <= args.index < test.n_series:
            print(f"error: --index {args.index} out of range for "
                  f"{test.n_series} test series", file=sys.stderr)
            return 2
        instances = test.X[args.index]
        truth = int(test.y[args.index])

    service = PredictionService(ModelRegistry(args.registry))
    try:
        result = service.predict(args.name, instances, args.version)
    except ServingError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        service.close()
    suffix = f" (true label {truth})" if truth is not None else ""
    labels = result["labels"]
    shown = labels[0] if len(labels) == 1 else labels
    print(f"{result['model']}:{result['version']} -> {shown}{suffix}")
    return 0


def _stream_source(args):
    """Build the (source, default_window) pair for `repro stream`."""
    import json

    import numpy as np

    from .streaming import ReplaySource, SyntheticSource

    if args.dataset is not None:
        from .data.archive import load_dataset

        _, test = load_dataset(args.dataset, scale=args.scale)
        return ReplaySource(test.X, test.y), test.X.shape[2]
    if args.input is not None:
        with open(args.input) as handle:
            X = np.asarray(json.load(handle), dtype=np.float64)
        if X.ndim == 2:
            X = X[None]  # one channels x length series
        return ReplaySource(X), X.shape[2]
    from .data.archive import dataset_generator

    generator = dataset_generator(args.synthetic_like, scale=args.scale)
    source = SyntheticSource(generator=generator, n_series=args.series,
                             seed=args.seed, shift_at=args.shift_at)
    return source, generator.length


def _cmd_stream(args) -> int:
    import json
    import urllib.parse

    from .streaming import StreamRequestError, stream_session, stream_windows

    url = urllib.parse.urlsplit(args.url)
    if url.hostname is None or url.port is None:
        print(f"error: --url needs the form http://host:port; got {args.url}",
              file=sys.stderr)
        return 2
    if args.resume and args.session is None:
        print("error: --resume requires --session", file=sys.stderr)
        return 2
    try:
        source, default_window = _stream_source(args)
    except (KeyError, OSError, json.JSONDecodeError, ValueError) as error:
        message = error.args[0] if isinstance(error, KeyError) else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    window = args.window or default_window

    def samples():
        for sample in source:
            if args.limit is not None and sample.t >= args.limit:
                return
            yield (sample.values, None if args.no_labels else sample.label)

    failed = False
    try:
        if args.session is not None:
            # Durable: the client buffers unacknowledged samples and
            # resumes across disconnects/worker deaths with no window
            # lost or repeated; --resume re-attaches a session an
            # earlier process left behind, replaying its cached lines.
            events = stream_session(
                url.hostname, url.port, args.name, samples(),
                window=window, hop=args.hop, version=args.version,
                session=args.session,
                resume_from=0 if args.resume else None)
        else:
            events = stream_windows(url.hostname, url.port, args.name,
                                    samples(), window=window, hop=args.hop,
                                    version=args.version)
        for event in events:
            if event.get("kind") == "error":
                failed = True
                print(f"error: {event.get('error')}", file=sys.stderr)
            elif event.get("kind") == "summary" or not args.quiet:
                print(json.dumps(event))
    except (StreamRequestError, ConnectionError, TimeoutError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 1 if failed else 0


def _cmd_adapt(args) -> int:
    """Drive the in-process adaptation loop over a replayed/synthetic stream.

    The stream is scored exactly as ``repro stream`` scores it, with an
    :class:`~repro.adaptation.AdaptationController` hooked into the
    scorer: confirmed drift triggers a retrain, the canary is published
    and shadow-scored, and the promote/rollback decision is printed as a
    ``{"kind": "decision", ...}`` line.  After a promotion the scorer
    swaps to the promoted version *in place* (``swap_version``) and the
    controller rebases its baseline onto it — no window is double-scored
    or skipped across the switch, and the rest of the stream is scored
    by the adapted model (the self-healing path, end to end).  Each
    swap is printed as a ``{"kind": "swap", ...}`` line.
    """
    import json

    from .adaptation import AdaptationController
    from .observability import AuditJournal
    from .serving import ModelRegistry, PredictionService, ServingError
    from .streaming import DriftMonitor, StreamScorer

    try:
        source, default_window = _stream_source(args)
    except (KeyError, OSError, json.JSONDecodeError, ValueError) as error:
        message = error.args[0] if isinstance(error, KeyError) else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    window = args.window or default_window
    journal = AuditJournal(args.audit_journal) if args.audit_journal else None
    service = PredictionService(ModelRegistry(args.registry), max_queue=1024)

    def emit(payload: dict) -> None:
        print(json.dumps(payload), flush=True)

    def samples():
        for sample in source:
            if args.limit is not None and sample.t >= args.limit:
                return
            yield sample

    version = args.version
    windows = shifts = 0
    errors: list[str] = []
    try:
        controller = AdaptationController(
            service, args.name, version=version,
            collect_windows=args.collect_windows,
            shadow_windows=args.shadow_windows,
            cooldown_windows=args.cooldown,
            background=args.background, journal=journal,
        )
        decisions_seen = 0
        monitor = DriftMonitor(
            threshold=args.drift_threshold,
            confidence_threshold=args.confidence_threshold,
            warmup=args.warmup, persistence=args.persistence,
        )
        with StreamScorer(service, args.name, window=window,
                          hop=args.hop, version=version,
                          monitor=monitor, adapter=controller,
                          journal=journal) as scorer:

            def handle(result) -> int | None:
                nonlocal windows, shifts, decisions_seen
                windows += 1
                shifts += int(result.drift.shift if result.drift else 0)
                if not args.quiet:
                    emit(result.as_dict())
                switch = None
                while decisions_seen < len(controller.decisions):
                    decision = controller.decisions[decisions_seen]
                    decisions_seen += 1
                    emit(decision.as_dict())
                    if decision.action == "promote":
                        switch = decision.canary_version
                return switch

            def promote(target) -> None:
                # In-place switch: the open scorer moves onto the
                # promoted version (windows already submitted resolve
                # on the old one; nothing is double-scored or skipped)
                # and the controller rebases its baseline onto the same
                # record, so the monitor's EWMAs and the stream's
                # counters carry straight through.
                nonlocal version
                record = scorer.swap_version(target)
                controller.rebase(record.version)
                version = record.version
                emit({"kind": "swap", "version": record.version,
                      "window": scorer.windows})

            for sample in samples():
                label = None if args.no_labels else sample.label
                promoted = None
                for result in scorer.feed(sample.values, label):
                    promoted = handle(result) or promoted
                if promoted is not None:
                    promote(promoted)
            promoted = None
            for result in scorer.finish():
                promoted = handle(result) or promoted
            if promoted is not None:
                # The decision landed on the final flush; no windows
                # follow, but the summary must name the adapted model.
                promote(promoted)
        controller.wait(timeout=60.0)
        errors.extend(error for error in controller.errors
                      if error not in errors)
        stats = service.adaptation_stats(args.name)
        emit({
            "kind": "summary", "model": args.name, "windows": windows,
            "shifts": shifts, "retrainings": stats.retrainings.value,
            "promotions": stats.promotions.value,
            "rollbacks": stats.rollbacks.value,
            "serving_version": version,
            "state": controller.state,
        })
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        return 1 if errors else 0
    except (KeyError, ServingError) as error:
        message = error.args[0] if isinstance(error, KeyError) else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    finally:
        service.close()
        if journal is not None:
            journal.close()


def _cmd_scenarios(args) -> int:
    """Replay scenario worlds and score the loop against their budgets.

    Each world is a deterministic stream universe with known truth (see
    ``docs/scenarios.md``); the harness replays it through the real
    ``StreamScorer -> DriftMonitor -> AdaptationController`` loop and
    prints one verdict line per world plus a suite summary.  Exits 1
    when any world blows its budget — the CI regression contract.
    """
    import json
    from pathlib import Path

    from .data.scenarios import available_worlds, make_world
    from .experiments import run_scenario

    if args.list_worlds:
        for name in available_worlds():
            world = make_world(name)
            print(f"{name:26s} {world.kind:10s} {world.description}")
        return 0
    names = args.worlds if args.worlds is not None else available_worlds()
    unknown = sorted(set(names) - set(available_worlds()))
    if unknown:
        print(f"error: unknown world(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    journal = None
    if args.journal:
        from .observability import AuditJournal

        journal = AuditJournal(args.journal)
    reports = []
    for name in names:
        report = run_scenario(name, seed=args.seed, n_series=args.series,
                              journal=journal)
        reports.append(report)
        verdict = "PASS" if report.passed else "FAIL"
        detail = [f"windows={report.windows}"]
        if report.detected is not None:
            delay = report.detection_delay
            detail.append("delay=" + ("miss" if delay is None else str(delay)))
        detail.append(f"false_flags={report.false_flags}")
        if report.final_accuracy is not None:
            detail.append(f"final_acc={report.final_accuracy:.3f}")
        if report.promotions or report.rollbacks:
            detail.append(f"promotions={report.promotions}")
            detail.append(f"rollbacks={report.rollbacks}")
        print(f"{verdict} {name:26s} " + " ".join(detail), flush=True)
        if not args.quiet:
            print(json.dumps(report.as_dict()), flush=True)
    suite = {
        "seed": args.seed,
        "worlds": [report.as_dict() for report in reports],
        "failures": [report.world for report in reports if not report.passed],
        "passed": all(report.passed for report in reports),
    }
    if journal is not None:
        journal.close()
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(suite, indent=2) + "\n", encoding="utf-8")
    print(f"{'ok' if suite['passed'] else 'FAILED'}: "
          f"{len(reports) - len(suite['failures'])}/{len(reports)} worlds "
          f"within budget", flush=True)
    return 0 if suite["passed"] else 1


def _cmd_serve(args) -> int:
    import signal
    import threading

    policy = None
    if args.infer_dtype is not None or args.backend is not None:
        from .backend import ComputePolicy

        policy = ComputePolicy(dtype=args.infer_dtype or "float32",
                               engine=args.backend or "numpy")

    if args.workers > 1:
        # Pre-fork pool: the supervisor (this process) owns the port and
        # the workers; SIGTERM/SIGINT forward to the workers, which drain
        # in-flight requests before exiting.  Tracing is configured in
        # each worker (per-worker export paths), never here.
        from .serving import ServingPool

        pool = ServingPool(
            args.registry, workers=args.workers, host=args.host,
            port=args.port, max_batch=args.max_batch,
            max_latency=args.max_latency_ms / 1000.0,
            batch_workers=args.batch_workers, quiet=not args.verbose,
            max_queue=args.max_queue,
            max_loaded_models=args.max_loaded_models,
            max_body_bytes=args.max_body_bytes, access_log=args.access_log,
            compute_policy=policy, drain_timeout=args.drain_timeout,
            trace=args.trace, trace_capacity=args.trace_capacity,
            trace_export=args.trace_export,
        )
        pool.start()

        def _pool_stop(signum, frame):
            pool.stop()

        signal.signal(signal.SIGTERM, _pool_stop)
        signal.signal(signal.SIGINT, _pool_stop)
        print(f"serving registry {args.registry} on "
              f"http://{args.host}:{pool.port} with {args.workers} workers",
              flush=True)
        try:
            while not pool.wait(timeout=1.0):
                pass
        except KeyboardInterrupt:
            pool.stop()
            pool.wait(args.drain_timeout + 5.0)
        finally:
            pool.close()
        return 0

    from .serving import create_server

    if args.trace or args.trace_export:
        from .observability import configure_tracing

        configure_tracing(enabled=True, capacity=args.trace_capacity,
                          export_path=args.trace_export)
    server = create_server(
        args.registry, host=args.host, port=args.port,
        max_batch=args.max_batch, max_latency=args.max_latency_ms / 1000.0,
        batch_workers=args.batch_workers, quiet=not args.verbose,
        max_queue=args.max_queue, max_loaded_models=args.max_loaded_models,
        max_body_bytes=args.max_body_bytes, access_log=args.access_log,
        compute_policy=policy,
    )

    # Graceful stop on SIGTERM as well as Ctrl-C: shutdown() must run off
    # the serving thread (calling it from the handler would deadlock —
    # it waits for the serve_forever loop this very thread is running).
    def _stop(signum, frame):
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    print(f"serving registry {args.registry} on http://{args.host}:{server.port}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


def _cmd_trace(args) -> int:
    """Fetch and render a running server's flight-recorder traces.

    Talks to ``GET /v1/debug/traces`` on the server started by ``repro
    serve --trace`` and prints each retained trace as an indented span
    tree (name, duration, attributes), newest first — or the slowest
    retained ones with ``--slowest``.  ``--json`` dumps the raw payload
    for scripts.
    """
    import json
    import urllib.error
    import urllib.parse
    import urllib.request

    base = urllib.parse.urlsplit(args.url)
    if base.hostname is None or base.port is None:
        print(f"error: --url needs the form http://host:port; got {args.url}",
              file=sys.stderr)
        return 2
    query = f"limit={int(args.limit)}" + ("&slowest=1" if args.slowest else "")
    url = f"http://{base.hostname}:{base.port}/v1/debug/traces?{query}"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(payload, indent=2))
        return 0
    if not payload.get("enabled"):
        print("tracing is disabled on this server "
              "(start it with 'repro serve --trace')")
        return 1
    stats = payload.get("stats", {})
    print(f"traces: {stats.get('completed', 0)} completed, "
          f"{stats.get('recent', 0)} retained, "
          f"{stats.get('open', 0)} open")
    for trace in payload.get("traces", []):
        _print_trace(trace)
    return 0


def _print_trace(trace: dict) -> None:
    """Render one flight-recorder trace entry as an indented span tree."""
    print(f"\ntrace {trace['trace_id']}  {trace['root']}  "
          f"{trace['duration_ms']:.2f}ms  ({len(trace['spans'])} spans)")
    spans = trace["spans"]
    children: dict[str | None, list[dict]] = {}
    ids = {span["span_id"] for span in spans}
    for span in spans:
        # A parent outside the recorded set (evicted or cross-thread)
        # renders its orphan subtree at the top level.
        parent = span.get("parent_id")
        children.setdefault(parent if parent in ids else None, []).append(span)

    def render(parent: str | None, depth: int) -> None:
        for span in sorted(children.get(parent, []),
                           key=lambda item: item["start"]):
            attributes = " ".join(
                f"{key}={value}"
                for key, value in sorted(span.get("attributes", {}).items()))
            print(f"  {'  ' * depth}{span['name']:24s} "
                  f"{span['duration_ms']:9.3f}ms  {attributes}".rstrip())
            render(span["span_id"], depth + 1)

    render(None, 0)


def _cmd_audit(args) -> int:
    """Replay a decision-audit journal offline and print what it proves.

    Reads the JSONL journal (schema-validating every line), folds it
    back into the decision history via
    :func:`~repro.observability.replay_decisions`, and prints the
    summary plus each promote/rollback decision.  Exits 2 on a missing
    or schema-invalid journal and 1 on an empty one — which is what the
    CI smoke job asserts against.
    """
    import json

    from .observability import read_journal, replay_decisions

    try:
        events = read_journal(args.path)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not events:
        print(f"error: {args.path} holds no audit events", file=sys.stderr)
        return 1
    if args.kind or args.events:
        for event in events:
            if args.kind and event.get("kind") != args.kind:
                continue
            print(json.dumps(event))
        return 0
    replay = replay_decisions(events)
    if args.as_json:
        print(json.dumps(replay))
        return 0
    print(f"{replay['events']} events, models: "
          f"{', '.join(replay['models']) or '-'}")
    print(f"drift_flags={replay['drift_flags']} "
          f"retrainings={replay['retrainings']} "
          f"retrain_failures={replay['retrain_failures']} "
          f"shadow_windows={replay['shadow_windows']} "
          f"promotions={replay['promotions']} "
          f"rollbacks={replay['rollbacks']}")
    for decision in replay["decisions"]:
        print(json.dumps(decision))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
