"""Dataset-characteristic metrics from Section IV-B of the paper.

These implement the exact quantities reported in Table III:

* the multivariate dataset variance of Eqs. (4)–(5),
* the imbalance degree (ID) of Ortigosa-Hernández et al. (2017) with the
  Hellinger distance, as the paper recommends (``Im ratio``),
* the train/test distance (Euclidean distance between the train and test
  mean vectors, ``d train test``),
* the missing-value proportion (``prop miss``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_panel
from .dataset import TimeSeriesDataset

__all__ = [
    "dataset_variance",
    "hellinger_distance",
    "imbalance_degree",
    "train_test_distance",
    "DatasetCharacteristics",
    "characterize",
]


def dataset_variance(X: np.ndarray) -> float:
    """Multivariate dataset variance, Eqs. (4)–(5) of the paper.

    For each (dimension m, time step t) cell the variance across series is
    computed (Eq. 4); the dataset variance is the mean of those cell
    variances over all M x T cells (Eq. 5).  NaN observations are ignored.
    """
    X = check_panel(X)
    per_cell = np.nanvar(X, axis=0)  # (M, T), sigma^2_{mt}
    return float(np.nanmean(per_cell))


def hellinger_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Hellinger distance between two discrete distributions."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"distributions differ in shape: {p.shape} vs {q.shape}")
    if (p < 0).any() or (q < 0).any():
        raise ValueError("distributions must be non-negative")
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sqrt(0.5 * ((np.sqrt(p) - np.sqrt(q)) ** 2).sum()))


def imbalance_degree(class_counts: np.ndarray) -> float:
    """Imbalance degree (ID) with the Hellinger distance.

    Ortigosa-Hernández et al. (2017): with empirical distribution ``zeta``
    over K classes, ``e`` the balanced distribution and ``m`` the number of
    minority classes (probability < 1/K),

        ID = (m - 1) + d(zeta, e) / d(iota_m, e)

    where ``iota_m`` is the distribution at maximal distance from ``e``
    among those with exactly m minority classes (m classes at probability 0,
    K - m - 1 classes at 1/K, one class at (m + 1)/K).  Balanced data gives 0.
    """
    counts = np.asarray(class_counts, dtype=float)
    if counts.ndim != 1 or counts.size < 2:
        raise ValueError("class_counts must be a 1-D vector with >= 2 classes")
    if (counts < 0).any() or counts.sum() == 0:
        raise ValueError("class_counts must be non-negative and not all zero")
    k = counts.size
    zeta = counts / counts.sum()
    e = np.full(k, 1.0 / k)
    m = int((zeta < 1.0 / k - 1e-12).sum())
    if m == 0:
        return 0.0
    iota = np.concatenate([np.zeros(m), np.full(k - m - 1, 1.0 / k), [(m + 1) / k]])
    return float((m - 1) + hellinger_distance(zeta, e) / hellinger_distance(iota, e))


def train_test_distance(X_train: np.ndarray, X_test: np.ndarray) -> float:
    """Euclidean distance between the train and test mean vectors.

    The paper defines ``d train test`` as the distance between the mean
    vector of the training set and that of the test set (variance being a
    separate characteristic); series are flattened over channels and time,
    NaN-aware.
    """
    X_train = check_panel(X_train)
    X_test = check_panel(X_test)
    if X_train.shape[1:] != X_test.shape[1:]:
        raise ValueError(
            f"train and test shapes disagree: {X_train.shape[1:]} vs {X_test.shape[1:]}"
        )
    mean_train = np.nanmean(X_train, axis=0).ravel()
    mean_test = np.nanmean(X_test, axis=0).ravel()
    return float(np.linalg.norm(mean_train - mean_test))


@dataclass(frozen=True)
class DatasetCharacteristics:
    """One row of Table III."""

    name: str
    n_classes: int
    train_size: int
    dim: int
    length: int
    var_train: float
    var_test: float
    im_ratio: float
    d_train_test: float
    prop_miss: float

    def as_row(self) -> list:
        """Values in Table III column order."""
        return [
            self.name, self.n_classes, self.train_size, self.dim, self.length,
            self.var_train, self.var_test, self.im_ratio, self.d_train_test,
            self.prop_miss,
        ]


def characterize(train: TimeSeriesDataset, test: TimeSeriesDataset) -> DatasetCharacteristics:
    """Compute the full Table III row for a train/test pair."""
    total_missing = (
        np.isnan(train.X).sum() + np.isnan(test.X).sum()
    ) / (train.X.size + test.X.size)
    return DatasetCharacteristics(
        name=train.name,
        n_classes=train.n_classes,
        train_size=train.n_series,
        dim=train.n_channels,
        length=train.length,
        var_train=dataset_variance(train.X),
        var_test=dataset_variance(test.X),
        im_ratio=imbalance_degree(train.class_counts()),
        d_train_test=train_test_distance(train.X, test.X),
        prop_miss=float(total_missing),
    )
