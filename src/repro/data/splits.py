"""Train/validation splitting utilities.

Section IV-D: InceptionTime partitions the training data into training and
validation segments with a 2:1 ratio, stratified so the validation set
contains only original samples with the original class mix.
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from .._validation import check_labels

__all__ = ["stratified_split", "train_val_split"]


def stratified_split(
    y: np.ndarray,
    *,
    val_fraction: float = 1.0 / 3.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return (train_idx, val_idx) with per-class proportional allocation.

    Every class keeps at least one sample in the training part; classes with
    a single sample contribute nothing to validation.
    """
    y = check_labels(y)
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1); got {val_fraction}")
    rng = ensure_rng(seed)
    train_parts, val_parts = [], []
    for label in np.unique(y):
        members = np.flatnonzero(y == label)
        members = rng.permutation(members)
        n_val = int(round(len(members) * val_fraction))
        n_val = min(n_val, len(members) - 1)  # keep >= 1 training sample
        val_parts.append(members[:n_val])
        train_parts.append(members[n_val:])
    train_idx = rng.permutation(np.concatenate(train_parts))
    val_idx = rng.permutation(np.concatenate(val_parts)) if any(len(v) for v in val_parts) else np.array([], dtype=int)
    return train_idx, val_idx


def train_val_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    val_fraction: float = 1.0 / 3.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stratified 2:1 split returning ``(X_train, y_train, X_val, y_val)``."""
    train_idx, val_idx = stratified_split(y, val_fraction=val_fraction, seed=seed)
    return X[train_idx], y[train_idx], X[val_idx], y[val_idx]
