"""Data substrate: dataset container, synthetic UEA archive, characteristics.

Replaces the UCR/UEA multivariate archive used in the paper with a
deterministic synthetic equivalent whose Table III metadata matches the
published values (see DESIGN.md for the substitution argument).
"""

from .archive import (
    DatasetSpec,
    UEA_IMBALANCED_SPECS,
    dataset_generator,
    list_datasets,
    load_dataset,
    solve_class_counts,
)
from .characteristics import (
    DatasetCharacteristics,
    characterize,
    dataset_variance,
    hellinger_distance,
    imbalance_degree,
    train_test_distance,
)
from .dataset import TimeSeriesDataset
from .generators import ClassPrototype, MTSGenerator, make_classification_panel
from .splits import stratified_split, train_val_split
from .ts_io import read_ts, write_ts

# Imported last: scenarios reaches back into repro.streaming (whose
# sources module imports repro.data.generators), so it must not run
# before the submodules above are bound.
from .scenarios import (
    DBASampler,
    KernelSynthGenerator,
    MixupSampler,
    MorphSource,
    Scenario,
    ScenarioBudget,
    SeasonalModulation,
    available_worlds,
    make_world,
)

__all__ = [
    "TimeSeriesDataset",
    "MTSGenerator",
    "ClassPrototype",
    "make_classification_panel",
    "DatasetSpec",
    "UEA_IMBALANCED_SPECS",
    "dataset_generator",
    "list_datasets",
    "load_dataset",
    "solve_class_counts",
    "DatasetCharacteristics",
    "characterize",
    "dataset_variance",
    "hellinger_distance",
    "imbalance_degree",
    "train_test_distance",
    "stratified_split",
    "train_val_split",
    "read_ts",
    "write_ts",
    "DBASampler",
    "KernelSynthGenerator",
    "MixupSampler",
    "MorphSource",
    "Scenario",
    "ScenarioBudget",
    "SeasonalModulation",
    "available_worlds",
    "make_world",
]
