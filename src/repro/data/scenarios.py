"""Scenario worlds: deterministic stream universes for the adaptation loop.

The drift→retrain→canary stack (:mod:`repro.streaming`,
:mod:`repro.adaptation`) shipped tested on exactly one world — abrupt
prototype swaps over fixed-length, gap-free panels — so its
detection-delay, false-flag and recovery claims were assertions, not
measurements.  This module is the world *library* that turns them into
measurements: every world is a :class:`Scenario` bundling

* a **training panel** — what the served model learns before the stream
  starts (the pre-drift concept);
* a **sample stream** — a deterministic, seedable
  :class:`~repro.streaming.sources.StreamSource` the harness replays
  through the full ``StreamScorer → DriftMonitor →
  AdaptationController`` loop;
* **ground truth about the world itself** — where concept drift really
  happens (``drift_points``), whether labels are visible at scoring
  time (``feed_labels``) or arrive late (``label_delay``);
* a :class:`ScenarioBudget` — the per-world acceptance bar (maximum
  detection delay, maximum false flags, minimum tail accuracy) the
  harness scores against.

Three world families, following the metaforecast synthetic-generation
taxonomy (pure synthetic / semi-synthetic generation / semi-synthetic
transformation):

* **synthetic** — :class:`KernelSynthGenerator` composes trend,
  seasonal, sawtooth, bump and step kernels into class-conditional
  processes (KernelSynth-style sums and products); drift is produced by
  morphing between two kernel universes (:class:`MorphSource`) —
  abruptly, gradually, or in recurring regime cycles;
* **blend** — semi-synthetic worlds built from the UEA archive panels:
  :class:`MixupSampler` draws TSMixup-style convex combinations of
  stored series (its ``partner_weight`` dial contaminates a class with
  its neighbour — a genuine concept shift), :class:`DBASampler` serves
  jittered DTW-barycentric prototypes (class-faithful smoothing that a
  sound monitor must *not* flag);
* **pathology** — stream malformations layered on the above with the
  wrappers in :mod:`repro.streaming.sources`: outages and dropouts
  (:class:`~repro.streaming.sources.GapSource`), ragged variable-length
  series (:class:`~repro.streaming.sources.RaggedSource`), label noise
  (:class:`~repro.streaming.sources.LabelNoiseSource`), and
  adversarially-late labels (``label_delay``).

Worlds are registered by name — :func:`available_worlds` /
:func:`make_world` mirror the classifier and augmenter registries — and
every world is **bit-deterministic**: two constructions with the same
seed yield identical training panels and identical streams, so harness
runs are reproducible and diffable.  The replay harness itself lives in
:mod:`repro.experiments.scenario_harness`; ``repro scenarios`` is the
CLI front-end and ``benchmarks/bench_scenarios.py`` the regression
suite.  See ``docs/scenarios.md`` for the taxonomy table and budget
tuning guidance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from .._rng import ensure_rng
from .._validation import check_positive
from .generators import MTSGenerator

if TYPE_CHECKING:  # imported lazily at runtime: streaming pulls in the
    # serving/experiments stack, which reaches back into repro.data
    from ..streaming.sources import StreamSample, StreamSource

__all__ = [
    "DBASampler",
    "KernelSynthGenerator",
    "MixupSampler",
    "MorphSource",
    "Scenario",
    "ScenarioBudget",
    "SeasonalModulation",
    "available_worlds",
    "make_world",
]


# --------------------------------------------------------------------- #
# KernelSynth-style pure-synthetic generator
# --------------------------------------------------------------------- #

#: kernel vocabulary a class composition draws from
_KERNEL_KINDS = ("trend", "sine", "sawtooth", "bump", "step")


class KernelSynthGenerator:
    """Class-conditional kernel-composition generator (KernelSynth-style).

    Each class is a random composition of primitive kernels — linear
    trend, sinusoid, sawtooth, localised Gaussian bump, level step —
    combined by sums and products, the way KernelSynth builds synthetic
    series from a kernel bank.  Compositions are drawn deterministically
    from *seed*; per-series realisations add phase/amplitude jitter and
    shared AR(1) noise (shared across classes, so noise colour never
    leaks the label).

    The API mirrors :class:`~repro.data.generators.MTSGenerator`
    (``sample_class`` / ``sample``), so the two are interchangeable as
    concept samplers for :class:`MorphSource`.

    Parameters
    ----------
    n_channels, length, n_classes:
        Shape of the problem.
    n_kernels:
        Primitive kernels per class composition.
    difficulty:
        In ``(0, 1]``: attenuates the class signal and raises the noise
        floor, like the archive generator's dial.
    seed:
        Determines the per-class compositions.
    """

    def __init__(self, *, n_channels: int, length: int, n_classes: int,
                 n_kernels: int = 3, difficulty: float = 0.2,
                 seed: int | np.random.Generator | None = None):
        check_positive(n_channels, name="n_channels")
        check_positive(length, name="length")
        check_positive(n_classes, name="n_classes")
        check_positive(n_kernels, name="n_kernels")
        if not 0.0 < difficulty <= 1.0:
            raise ValueError(f"difficulty must be in (0, 1]; got {difficulty}")
        self.n_channels = int(n_channels)
        self.length = int(length)
        self.n_classes = int(n_classes)
        self.n_kernels = int(n_kernels)
        self.difficulty = float(difficulty)
        rng = ensure_rng(seed)
        self.compositions = [self._draw_composition(rng)
                             for _ in range(self.n_classes)]
        self.noise_scale = float(0.2 + 0.7 * self.difficulty)
        self.ar_coefficient = float(rng.uniform(0.4, 0.8))
        self.signal_strength = float(1.0 - 0.35 * self.difficulty)

    def _draw_composition(self, rng: np.random.Generator) -> list[dict]:
        """One class = ``n_kernels`` primitives, each additive or
        multiplicative, with per-channel phases and a channel mixer."""
        kinds = rng.choice(len(_KERNEL_KINDS),
                           size=min(self.n_kernels, len(_KERNEL_KINDS)),
                           replace=False)
        terms = []
        nyquist_cap = max(1.5, 0.35 * self.length)
        for kind_index in kinds:
            terms.append({
                "kind": _KERNEL_KINDS[int(kind_index)],
                "multiplicative": bool(rng.random() < 0.3),
                "frequency": float(rng.uniform(0.5, nyquist_cap)),
                "phases": rng.uniform(0, 2 * np.pi, size=self.n_channels),
                "amplitude": float(rng.uniform(0.6, 1.4)),
                "position": float(rng.uniform(0.2, 0.8)),
                "width": float(max(2.0 / self.length,
                                   rng.uniform(0.05, 0.18))),
                "slope": float(rng.uniform(-2.0, 2.0)),
                "mixing": np.eye(self.n_channels)
                + 0.25 * rng.standard_normal((self.n_channels,
                                              self.n_channels)),
            })
        return terms

    def _term_signal(self, term: dict, n: int,
                     rng: np.random.Generator) -> np.ndarray:
        """Realise one kernel term with per-series jitter: ``(n, C, T)``."""
        t = np.linspace(0.0, 1.0, self.length)[None, None, :]
        amp = term["amplitude"] * rng.uniform(0.85, 1.15, size=(n, 1, 1))
        kind = term["kind"]
        if kind == "trend":
            shape = term["slope"] * (t - 0.5) \
                * rng.uniform(0.9, 1.1, size=(n, 1, 1))
        elif kind == "sine":
            jitter = rng.normal(0.0, 0.02, size=(n, 1, 1))
            angles = 2 * np.pi * term["frequency"] * (t + jitter) \
                + term["phases"][None, :, None]
            shape = np.sin(angles)
        elif kind == "sawtooth":
            jitter = rng.normal(0.0, 0.02, size=(n, 1, 1))
            phase = term["phases"][None, :, None] / (2 * np.pi)
            shape = 2.0 * np.mod(term["frequency"] * (t + jitter) + phase,
                                 1.0) - 1.0
        elif kind == "bump":
            centers = term["position"] + rng.normal(0.0, 0.03, size=(n, 1, 1))
            widths = term["width"] * rng.uniform(0.8, 1.2, size=(n, 1, 1))
            shape = np.exp(-0.5 * ((t - centers) / widths) ** 2) \
                * np.ones((1, self.n_channels, 1))
        else:  # step
            positions = term["position"] \
                + rng.normal(0.0, 0.02, size=(n, 1, 1))
            shape = np.tanh((t - positions) / 0.04) \
                * np.ones((1, self.n_channels, 1))
        signal = amp * shape * np.ones((1, self.n_channels, 1))
        return np.einsum("cd,ndt->nct", term["mixing"], signal)

    def sample_class(self, label: int, n: int,
                     rng: int | np.random.Generator | None = None
                     ) -> np.ndarray:
        """Draw *n* series of class *label*: ``(n, n_channels, length)``.

        Additive terms sum; multiplicative terms modulate the running
        sum by ``1 + 0.5 * component`` (a KernelSynth product kernel),
        then shared AR(1) noise rides on top.
        """
        if not 0 <= label < self.n_classes:
            raise ValueError(f"label {label} outside [0, {self.n_classes})")
        if n == 0:
            return np.empty((0, self.n_channels, self.length))
        rng = ensure_rng(rng)
        signal = np.zeros((n, self.n_channels, self.length))
        for term in self.compositions[label]:
            component = self._term_signal(term, n, rng)
            if term["multiplicative"]:
                signal = signal * (1.0 + 0.5 * component)
            else:
                signal = signal + component
        return self.signal_strength * signal + self._ar1_noise(n, rng)

    def _ar1_noise(self, n: int, rng: np.random.Generator) -> np.ndarray:
        shocks = rng.standard_normal(
            (n, self.n_channels, self.length)) * self.noise_scale
        noise = np.empty_like(shocks)
        noise[:, :, 0] = shocks[:, :, 0]
        phi = self.ar_coefficient
        for step in range(1, self.length):
            noise[:, :, step] = phi * noise[:, :, step - 1] + shocks[:, :, step]
        return noise * np.sqrt(1 - phi**2)

    def sample(self, counts: np.ndarray,
               rng: int | np.random.Generator | None = None
               ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``counts[c]`` series per class; returns shuffled (X, y)."""
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.n_classes,):
            raise ValueError(
                f"counts must have shape ({self.n_classes},); "
                f"got {counts.shape}")
        rng = ensure_rng(rng)
        panels = [self.sample_class(c, int(k), rng)
                  for c, k in enumerate(counts)]
        X = np.concatenate(panels, axis=0)
        y = np.repeat(np.arange(self.n_classes), counts)
        order = rng.permutation(len(y))
        return X[order], y[order]


# --------------------------------------------------------------------- #
# semi-synthetic samplers over stored panels (DBA / TSMixup style)
# --------------------------------------------------------------------- #


class MixupSampler:
    """TSMixup-style sampler: convex combinations of stored series.

    ``sample_class(c)`` draws *k* same-class series from the stored
    panel and mixes them with Dirichlet weights — the semi-synthetic
    generation mode of the metaforecast taxonomy.  With
    ``partner_weight > 0`` each draw is additionally blended with a
    random series of class ``(c + partner_shift) % n_classes``: the
    nominal label keeps flowing while its generating process leans into
    the neighbouring class — a measurable concept shift dial.

    Parameters
    ----------
    X, y:
        The source panel ``(n, channels, length)`` and its labels.
    k:
        Same-class series per mix.
    partner_weight:
        In ``[0, 1)``: fraction of the mix contributed by the partner
        class (0 = class-faithful TSMixup).
    partner_shift:
        Which neighbour contaminates (label offset, mod ``n_classes``).
    jitter:
        Scale of white noise added per draw, in units of the panel's
        per-channel standard deviation.
    """

    def __init__(self, X: np.ndarray, y: np.ndarray, *, k: int = 3,
                 partner_weight: float = 0.0, partner_shift: int = 1,
                 jitter: float = 0.02):
        if not 0.0 <= partner_weight < 1.0:
            raise ValueError(
                f"partner_weight must be in [0, 1); got {partner_weight}")
        check_positive(k, name="k")
        self.X = np.asarray(X, dtype=np.float64)
        self.y = np.asarray(y, dtype=np.int64)
        self.k = int(k)
        self.partner_weight = float(partner_weight)
        self.partner_shift = int(partner_shift)
        self.jitter = float(jitter)
        self.classes = np.unique(self.y)
        self.n_classes = len(self.classes)
        self.n_channels = self.X.shape[1]
        self.length = self.X.shape[2]
        self._by_class = {int(c): np.flatnonzero(self.y == c)
                          for c in self.classes}
        self._scale = float(np.nanstd(self.X))

    def sample_class(self, label: int, n: int,
                     rng: int | np.random.Generator | None = None
                     ) -> np.ndarray:
        """Draw *n* mixed series of class *label*: ``(n, C, T)``."""
        rng = ensure_rng(rng)
        own = self._by_class[int(label)]
        out = np.empty((n, self.n_channels, self.length))
        for i in range(n):
            picks = rng.choice(own, size=min(self.k, len(own)), replace=False)
            weights = rng.dirichlet(np.ones(len(picks)))
            mixed = np.einsum("k,kct->ct",
                              weights, np.nan_to_num(self.X[picks], nan=0.0))
            if self.partner_weight > 0.0:
                partner_label = int(
                    (label + self.partner_shift) % self.n_classes)
                partner = self._by_class[int(self.classes[partner_label])]
                other = np.nan_to_num(
                    self.X[int(rng.choice(partner))], nan=0.0)
                mixed = (1.0 - self.partner_weight) * mixed \
                    + self.partner_weight * other
            if self.jitter > 0.0:
                mixed = mixed + self.jitter * self._scale \
                    * rng.standard_normal(mixed.shape)
            out[i] = mixed
        return out


class DBASampler:
    """Jittered DTW-barycentric prototypes of a stored panel.

    Precomputes one DBA barycenter per class (Petitjean averaging, via
    :func:`repro.augmentation.dba_average`) and serves noisy copies of
    it — class-faithful semi-synthetic smoothing.  A model trained on
    the raw panel should classify these *more* confidently than real
    data, which makes this sampler the benign-blend world: any drift
    flag on it is a false flag.

    Parameters
    ----------
    X, y:
        Source panel and labels.
    max_series:
        Series per class entering the barycenter (caps the DTW cost).
    iterations:
        DBA refinement passes.
    jitter:
        White-noise scale per draw, in units of the panel's std.
    """

    def __init__(self, X: np.ndarray, y: np.ndarray, *, max_series: int = 8,
                 iterations: int = 3, jitter: float = 0.08):
        from ..augmentation import dba_average  # heavy import, local

        self.X = np.asarray(X, dtype=np.float64)
        self.y = np.asarray(y, dtype=np.int64)
        self.classes = np.unique(self.y)
        self.n_channels = self.X.shape[1]
        self.length = self.X.shape[2]
        self.jitter = float(jitter)
        self._scale = float(np.nanstd(self.X))
        self._barycenters: dict[int, np.ndarray] = {}
        for c in self.classes:
            members = np.flatnonzero(self.y == c)[:max_series]
            self._barycenters[int(c)] = dba_average(
                self.X[members], iterations=iterations)

    def sample_class(self, label: int, n: int,
                     rng: int | np.random.Generator | None = None
                     ) -> np.ndarray:
        """Draw *n* jittered copies of the class barycenter: ``(n, C, T)``."""
        rng = ensure_rng(rng)
        base = self._barycenters[int(label)]
        noise = rng.standard_normal((n,) + base.shape)
        return base[None] + self.jitter * self._scale * noise


# --------------------------------------------------------------------- #
# morphing stream source (abrupt / gradual / recurring drift)
# --------------------------------------------------------------------- #


class MorphSource:
    """Stream whose generating process morphs from concept A to concept B.

    Series are drawn label-uniform from two *concept samplers* (anything
    with ``sample_class(label, n, rng)`` — :class:`MTSGenerator`,
    :class:`KernelSynthGenerator`, :class:`MixupSampler`,
    :class:`DBASampler`) and mixed per series as ``(1 - w) * A + w * B``
    where the weight *w* follows the drift schedule:

    * ``ramp=(start, end)`` — *w* climbs linearly from 0 to 1 between
      those sample indices: **gradual drift** (equal indices = abrupt);
    * ``cycle=k`` — *w* alternates 0 and 1 every *k* series:
      **recurring regimes**;
    * neither — *w* stays 0: a stationary world (sampler B unused).

    The nominal labels keep flowing throughout — only the generating
    process changes, which is precisely the concept-drift shape the
    monitor exists to catch.  Iterating twice yields bit-identical
    streams (the RNG is rebuilt from *seed* per iteration).
    """

    def __init__(self, sampler_a, sampler_b=None, *, n_channels: int,
                 length: int, n_classes: int, n_series: int = 50,
                 seed: int = 0, ramp: tuple[int, int] | None = None,
                 cycle: int | None = None):
        if n_series < 1:
            raise ValueError(f"n_series must be >= 1; got {n_series}")
        if ramp is not None and cycle is not None:
            raise ValueError("ramp and cycle are mutually exclusive")
        if ramp is not None:
            start, end = (int(ramp[0]), int(ramp[1]))
            if start < 0 or end < start:
                raise ValueError(
                    f"ramp must be (start >= 0, end >= start); got {ramp}")
            ramp = (start, end)
        if cycle is not None and cycle < 1:
            raise ValueError(f"cycle must be >= 1 series; got {cycle}")
        if sampler_b is None and (ramp is not None or cycle is not None):
            raise ValueError("a drift schedule needs sampler_b")
        self.sampler_a = sampler_a
        self.sampler_b = sampler_b
        self.n_channels = int(n_channels)
        self.length = int(length)
        self.n_classes = int(n_classes)
        self.n_series = int(n_series)
        self.seed = int(seed)
        self.ramp = ramp
        self.cycle = int(cycle) if cycle is not None else None

    def __len__(self) -> int:
        """Total samples the stream will emit."""
        return self.n_series * self.length

    def _weight(self, series_index: int, t: int) -> float:
        """Concept-B weight of the series starting at sample *t*."""
        if self.cycle is not None:
            return float((series_index // self.cycle) % 2)
        if self.ramp is None:
            return 0.0
        start, end = self.ramp
        if t < start:
            return 0.0
        if t >= end:
            return 1.0
        return (t - start) / float(end - start)

    def __iter__(self) -> Iterator["StreamSample"]:
        from ..streaming.sources import StreamSample

        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 5]))
        t = 0
        for index in range(self.n_series):
            label = int(rng.integers(0, self.n_classes))
            weight = self._weight(index, t)
            series = self.sampler_a.sample_class(label, 1, rng)[0]
            if weight > 0.0:
                other = self.sampler_b.sample_class(label, 1, rng)[0]
                series = (1.0 - weight) * series + weight * other
            for step in range(series.shape[1]):
                yield StreamSample(t, series[:, step], label)
                t += 1


class SeasonalModulation:
    """Benign seasonal gain riding on a wrapped stream.

    Scales every sample by ``1 + depth * sin(2π t / period)`` — a slow
    seasonal amplitude swell (daily load, temperature).  With a period
    much longer than one series the gain is nearly constant within each
    window, and the serving protocol's per-series z-normalisation
    removes constant gains — so the *concept* is stable and a monitor
    that flags this world is false-flagging on seasonality.
    """

    def __init__(self, source: StreamSource, *, period: int,
                 depth: float = 0.25):
        check_positive(period, name="period")
        if not 0.0 <= depth < 1.0:
            raise ValueError(f"depth must be in [0, 1); got {depth}")
        self.source = source
        self.period = int(period)
        self.depth = float(depth)
        self.n_channels = source.n_channels

    def __iter__(self) -> Iterator["StreamSample"]:
        from ..streaming.sources import StreamSample

        for sample in self.source:
            gain = 1.0 + self.depth * np.sin(
                2 * np.pi * sample.t / self.period)
            yield StreamSample(sample.t, sample.values * gain, sample.label)


# --------------------------------------------------------------------- #
# scenario worlds: budgets, registry
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ScenarioBudget:
    """The acceptance bar one world holds the adaptation loop to.

    ``max_detection_delay`` is in windows, measured from the first
    window whose data contains post-drift samples to the first drift
    flag; ``None`` means the world is drift-free and no flag is
    expected.  ``max_false_flags`` bounds flags raised while the
    concept is still the training concept (before any true drift
    point; for a drift-free world, every flag).
    ``min_final_accuracy`` is scored over the stream's final quarter —
    after adaptation had its chance — against the world's own truth.
    """

    max_detection_delay: int | None = None
    max_false_flags: int = 0
    min_final_accuracy: float | None = None


@dataclass(frozen=True)
class Scenario:
    """One replayable world: training panel + stream + truth + budget.

    Instances come from :func:`make_world`; two constructions with the
    same arguments produce bit-identical panels and streams.  The
    callables are private plumbing — use :meth:`training_panel` and
    :meth:`source`.
    """

    name: str
    kind: str  # "synthetic" | "blend" | "pathology"
    description: str
    window: int
    hop: int
    n_channels: int
    n_classes: int
    n_series: int
    feed_labels: bool
    label_delay: int  # windows; > 0 delivers truth late (adaptation hook)
    drift_points: tuple[int, ...]  # sample indices of true concept changes
    budget: ScenarioBudget
    _train: Callable[[], tuple[np.ndarray, np.ndarray]] = field(repr=False)
    _source: Callable[[], StreamSource] = field(repr=False)

    def training_panel(self) -> tuple[np.ndarray, np.ndarray]:
        """The pre-drift concept's labelled panel ``(X, y)`` — what the
        served model trains on before the stream begins."""
        return self._train()

    def source(self) -> StreamSource:
        """A fresh deterministic sample stream over this world."""
        return self._source()


def _world(name: str, kind: str, description: str):
    """Register one world builder under *name* (decorator)."""

    def register(builder):
        _WORLDS[name] = (kind, description, builder)
        return builder

    return register


_WORLDS: dict[str, tuple[str, str, Callable]] = {}


def available_worlds() -> list[str]:
    """Registered scenario world names, sorted — the harness's universe."""
    return sorted(_WORLDS)


def make_world(name: str, *, seed: int = 0,
               n_series: int | None = None) -> Scenario:
    """Build one scenario world by registry name.

    Parameters
    ----------
    name:
        One of :func:`available_worlds`.
    seed:
        Master seed: prototypes, stream order and pathology draws all
        derive from it.  Same seed ⇒ bit-identical world.
    n_series:
        Stream length override in series (each ``length`` samples
        long); defaults to the world's own size, chosen so drift
        points leave room for detection *and* adaptation.  Drift
        points scale with the default proportions when overridden.
    """
    try:
        kind, description, builder = _WORLDS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario world {name!r}; see available_worlds()"
        ) from None
    return builder(kind=kind, description=description, seed=int(seed),
                   n_series=n_series)


def _seeds(seed: int, *salts: int) -> list[int]:
    """Derive independent child seeds from a master seed."""
    sequence = np.random.SeedSequence([seed, *salts])
    return [int(s) for s in sequence.generate_state(4)]


def _balanced_panel(sampler, n_classes: int, per_class: int,
                    seed: int) -> tuple[np.ndarray, np.ndarray]:
    """A balanced, shuffled training panel drawn from a concept sampler."""
    rng = ensure_rng(seed)
    panels = [sampler.sample_class(c, per_class, rng)
              for c in range(n_classes)]
    X = np.concatenate(panels, axis=0)
    y = np.repeat(np.arange(n_classes), per_class)
    order = rng.permutation(len(y))
    return X[order], y[order]


# ------------------------- synthetic worlds -------------------------- #

_KS_SHAPE = {"n_channels": 2, "length": 32, "n_classes": 3}


@_world("stationary-kernelsynth", "synthetic",
        "stationary kernel compositions; any flag is false")
def _build_stationary(*, kind, description, seed, n_series):
    """Drift-free pure-synthetic world: the false-flag baseline."""
    n_series = n_series or 220
    train_seed, stream_seed, _, _ = _seeds(seed, 11)

    def train():
        generator = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        return _balanced_panel(generator, _KS_SHAPE["n_classes"], 30,
                               train_seed + 1)

    def source():
        generator = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        return MorphSource(generator, n_series=n_series, seed=stream_seed,
                           **_KS_SHAPE)

    return Scenario(
        name="stationary-kernelsynth", kind=kind, description=description,
        window=32, hop=32, n_channels=2, n_classes=3, n_series=n_series,
        feed_labels=True, label_delay=0, drift_points=(),
        budget=ScenarioBudget(max_detection_delay=None, max_false_flags=0,
                              min_final_accuracy=0.75),
        _train=train, _source=source,
    )


@_world("seasonal-stable", "synthetic",
        "stable concept under a benign seasonal gain swell")
def _build_seasonal(*, kind, description, seed, n_series):
    """Seasonal-but-stable world: amplitude seasonality is not drift."""
    n_series = n_series or 220
    train_seed, stream_seed, _, _ = _seeds(seed, 12)

    def train():
        generator = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        return _balanced_panel(generator, _KS_SHAPE["n_classes"], 30,
                               train_seed + 1)

    def source():
        generator = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        inner = MorphSource(generator, n_series=n_series, seed=stream_seed,
                            **_KS_SHAPE)
        return SeasonalModulation(inner, period=20 * _KS_SHAPE["length"],
                                  depth=0.25)

    return Scenario(
        name="seasonal-stable", kind=kind, description=description,
        window=32, hop=32, n_channels=2, n_classes=3, n_series=n_series,
        feed_labels=True, label_delay=0, drift_points=(),
        budget=ScenarioBudget(max_detection_delay=None, max_false_flags=0,
                              min_final_accuracy=0.75),
        _train=train, _source=source,
    )


@_world("abrupt-prototype-swap", "synthetic",
        "classic mid-stream prototype permutation (labels keep flowing)")
def _build_abrupt(*, kind, description, seed, n_series):
    """The canonical abrupt shift: class prototypes permute at one point."""
    n_series = n_series or 170
    shift_series = max(2, int(n_series * 0.30))
    train_seed, stream_seed, _, _ = _seeds(seed, 13)
    length = 32

    def train():
        generator = MTSGenerator(n_channels=2, length=length, n_classes=2,
                                 difficulty=0.2, seed=train_seed)
        return generator.sample(np.array([32, 32]), ensure_rng(train_seed + 1))

    def source():
        from ..streaming.sources import SyntheticSource

        generator = MTSGenerator(n_channels=2, length=length, n_classes=2,
                                 difficulty=0.2, seed=train_seed)
        return SyntheticSource(generator=generator, n_series=n_series,
                               seed=stream_seed,
                               shift_at=shift_series * length)

    return Scenario(
        name="abrupt-prototype-swap", kind=kind, description=description,
        window=length, hop=length, n_channels=2, n_classes=2,
        n_series=n_series, feed_labels=True, label_delay=0,
        drift_points=(shift_series * length,),
        budget=ScenarioBudget(max_detection_delay=12, max_false_flags=0,
                              min_final_accuracy=0.55),
        _train=train, _source=source,
    )


@_world("gradual-morph", "synthetic",
        "kernel universe A morphs into universe B over a long ramp")
def _build_gradual(*, kind, description, seed, n_series):
    """Gradual drift: per-series concept blends shift 0 → 1 over a ramp."""
    n_series = n_series or 220
    length = _KS_SHAPE["length"]
    ramp_start = max(2, int(n_series * 0.25)) * length
    ramp_end = max(3, int(n_series * 0.45)) * length
    train_seed, stream_seed, b_seed, _ = _seeds(seed, 14)

    def train():
        generator = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        return _balanced_panel(generator, _KS_SHAPE["n_classes"], 30,
                               train_seed + 1)

    def source():
        concept_a = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        concept_b = KernelSynthGenerator(seed=b_seed, **_KS_SHAPE)
        return MorphSource(concept_a, concept_b, n_series=n_series,
                           seed=stream_seed, ramp=(ramp_start, ramp_end),
                           **_KS_SHAPE)

    return Scenario(
        name="gradual-morph", kind=kind, description=description,
        window=length, hop=length, n_channels=2,
        n_classes=_KS_SHAPE["n_classes"], n_series=n_series,
        feed_labels=True, label_delay=0, drift_points=(ramp_start,),
        budget=ScenarioBudget(
            max_detection_delay=(ramp_end - ramp_start) // length + 25,
            max_false_flags=0, min_final_accuracy=0.55),
        _train=train, _source=source,
    )


@_world("recurring-regimes", "synthetic",
        "two kernel universes alternate in seasonal regime blocks")
def _build_recurring(*, kind, description, seed, n_series):
    """Recurring drift: regimes A and B alternate every ``cycle`` series."""
    n_series = n_series or 220
    length = _KS_SHAPE["length"]
    cycle = max(2, int(n_series * 0.22))
    train_seed, stream_seed, b_seed, _ = _seeds(seed, 15)
    drift_points = tuple(boundary * length
                         for boundary in range(cycle, n_series, cycle))

    def train():
        generator = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        return _balanced_panel(generator, _KS_SHAPE["n_classes"], 30,
                               train_seed + 1)

    def source():
        regime_a = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        regime_b = KernelSynthGenerator(seed=b_seed, **_KS_SHAPE)
        return MorphSource(regime_a, regime_b, n_series=n_series,
                           seed=stream_seed, cycle=cycle, **_KS_SHAPE)

    return Scenario(
        name="recurring-regimes", kind=kind, description=description,
        window=length, hop=length, n_channels=2,
        n_classes=_KS_SHAPE["n_classes"], n_series=n_series,
        feed_labels=True, label_delay=0, drift_points=drift_points,
        budget=ScenarioBudget(max_detection_delay=12, max_false_flags=0,
                              min_final_accuracy=0.45),
        _train=train, _source=source,
    )


# --------------------------- blend worlds ---------------------------- #

_BLEND_DATASET = "RacketSports"


def _blend_panel(seed: int) -> tuple[np.ndarray, np.ndarray]:
    """The UEA panel blend worlds draw from (small scale, NaN-free)."""
    from .archive import load_dataset  # local: archive solve is not free

    train, _ = load_dataset(_BLEND_DATASET, scale="small")
    return np.nan_to_num(train.X, nan=0.0), train.y


@_world("mixup-blend-shift", "blend",
        "TSMixup blends of a UEA panel drift into cross-class mixes")
def _build_mixup(*, kind, description, seed, n_series):
    """Semi-synthetic shift: within-class mixup leans into the next class."""
    n_series = n_series or 180
    shift_series = max(2, int(n_series * 0.30))
    train_seed, stream_seed, _, _ = _seeds(seed, 16)

    def train():
        X, y = _blend_panel(train_seed)
        sampler = MixupSampler(X, y, k=3, jitter=0.02)
        return _balanced_panel(sampler, len(sampler.classes), 16,
                               train_seed + 1)

    def source():
        X, y = _blend_panel(train_seed)
        faithful = MixupSampler(X, y, k=3, jitter=0.02)
        contaminated = MixupSampler(X, y, k=3, jitter=0.02,
                                    partner_weight=0.6)
        length = X.shape[2]
        boundary = shift_series * length
        return MorphSource(faithful, contaminated,
                           n_channels=X.shape[1], length=length,
                           n_classes=len(faithful.classes),
                           n_series=n_series, seed=stream_seed,
                           ramp=(boundary, boundary))

    X, y = _blend_panel(train_seed)
    length = X.shape[2]
    return Scenario(
        name="mixup-blend-shift", kind=kind, description=description,
        window=length, hop=length, n_channels=X.shape[1],
        n_classes=len(np.unique(y)), n_series=n_series,
        feed_labels=True, label_delay=0,
        drift_points=(shift_series * length,),
        budget=ScenarioBudget(max_detection_delay=15, max_false_flags=0,
                              min_final_accuracy=0.40),
        _train=train, _source=source,
    )


@_world("dba-smooth-stable", "blend",
        "jittered DBA barycenters of a UEA panel; class-faithful, no drift")
def _build_dba(*, kind, description, seed, n_series):
    """Benign blend world: barycentric smoothing must not flag."""
    n_series = n_series or 180
    train_seed, stream_seed, _, _ = _seeds(seed, 17)

    def train():
        return _blend_panel(train_seed)

    def source():
        X, y = _blend_panel(train_seed)
        sampler = DBASampler(X, y, max_series=8, iterations=3, jitter=0.08)
        return MorphSource(sampler, n_channels=X.shape[1],
                           length=X.shape[2],
                           n_classes=len(sampler.classes),
                           n_series=n_series, seed=stream_seed)

    X, y = _blend_panel(train_seed)
    return Scenario(
        name="dba-smooth-stable", kind=kind, description=description,
        window=X.shape[2], hop=X.shape[2], n_channels=X.shape[1],
        n_classes=len(np.unique(y)), n_series=n_series,
        feed_labels=True, label_delay=0, drift_points=(),
        budget=ScenarioBudget(max_detection_delay=None, max_false_flags=0,
                              min_final_accuracy=0.70),
        _train=train, _source=source,
    )


# ------------------------- pathology worlds -------------------------- #


@_world("gappy-stream", "pathology",
        "stationary stream with outages and dropouts; windows must not "
        "mix across gaps")
def _build_gappy(*, kind, description, seed, n_series):
    """Gap/missing-sample pathology over a stationary concept."""
    n_series = n_series or 220
    length = _KS_SHAPE["length"]
    train_seed, stream_seed, gap_seed, _ = _seeds(seed, 18)
    total = n_series * length
    outages = (
        (int(total * 0.25), length // 2),
        (int(total * 0.55), 2 * length),
        (int(total * 0.80), 7),
    )

    def train():
        generator = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        return _balanced_panel(generator, _KS_SHAPE["n_classes"], 30,
                               train_seed + 1)

    def source():
        from ..streaming.sources import GapSource

        generator = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        inner = MorphSource(generator, n_series=n_series, seed=stream_seed,
                            **_KS_SHAPE)
        return GapSource(inner, gaps=outages, drop_probability=0.004,
                         seed=gap_seed, series_length=length)

    return Scenario(
        name="gappy-stream", kind=kind, description=description,
        window=length, hop=length, n_channels=2,
        n_classes=_KS_SHAPE["n_classes"], n_series=n_series,
        feed_labels=True, label_delay=0, drift_points=(),
        budget=ScenarioBudget(max_detection_delay=None, max_false_flags=0,
                              min_final_accuracy=0.75),
        _train=train, _source=source,
    )


@_world("ragged-shift", "pathology",
        "variable-length series with an abrupt shift; sub-series windows")
def _build_ragged(*, kind, description, seed, n_series):
    """Ragged variable-length sources, scored with sub-series windows."""
    n_series = n_series or 200
    length = 32
    window = 16
    shift_series = max(2, int(n_series * 0.30))
    train_seed, stream_seed, ragged_seed, _ = _seeds(seed, 19)

    def train():
        generator = MTSGenerator(n_channels=2, length=length, n_classes=2,
                                 difficulty=0.15, seed=train_seed)
        X, y = generator.sample(np.array([36, 36]),
                                ensure_rng(train_seed + 1))
        # The stream is scored in window-sized slices, so the model
        # trains on the same slices: both halves of every series.
        X_sliced = np.concatenate([X[:, :, :window], X[:, :, window:]],
                                  axis=0)
        return X_sliced, np.concatenate([y, y])

    def source():
        from ..streaming.sources import RaggedSource, SyntheticSource

        generator = MTSGenerator(n_channels=2, length=length, n_classes=2,
                                 difficulty=0.15, seed=train_seed)
        inner = SyntheticSource(generator=generator, n_series=n_series,
                                seed=stream_seed,
                                shift_at=shift_series * length)
        return RaggedSource(inner, series_length=length, min_fraction=0.55,
                            seed=ragged_seed)

    return Scenario(
        name="ragged-shift", kind=kind, description=description,
        window=window, hop=window, n_channels=2, n_classes=2,
        n_series=n_series, feed_labels=True, label_delay=0,
        drift_points=(shift_series * length,),
        budget=ScenarioBudget(max_detection_delay=20, max_false_flags=1,
                              min_final_accuracy=0.50),
        _train=train, _source=source,
    )


@_world("label-noise", "pathology",
        "stationary concept under 10% flipped labels; noise is not drift")
def _build_label_noise(*, kind, description, seed, n_series):
    """Annotation-noise pathology: flipped labels must not flag."""
    n_series = n_series or 220
    length = _KS_SHAPE["length"]
    train_seed, stream_seed, noise_seed, _ = _seeds(seed, 20)

    def train():
        generator = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        return _balanced_panel(generator, _KS_SHAPE["n_classes"], 30,
                               train_seed + 1)

    def source():
        generator = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        inner = MorphSource(generator, n_series=n_series, seed=stream_seed,
                            **_KS_SHAPE)
        from ..streaming.sources import LabelNoiseSource

        return LabelNoiseSource(inner, n_classes=_KS_SHAPE["n_classes"],
                                series_length=length, flip_probability=0.10,
                                seed=noise_seed)

    return Scenario(
        name="label-noise", kind=kind, description=description,
        window=length, hop=length, n_channels=2,
        n_classes=_KS_SHAPE["n_classes"], n_series=n_series,
        feed_labels=True, label_delay=0, drift_points=(),
        # Accuracy is measured against the noisy labels the world emits,
        # so the floor discounts the flip rate.
        budget=ScenarioBudget(max_detection_delay=None, max_false_flags=0,
                              min_final_accuracy=0.65),
        _train=train, _source=source,
    )


@_world("late-labels", "pathology",
        "abrupt OOD shift with labels arriving six windows late")
def _build_late_labels(*, kind, description, seed, n_series):
    """Adversarially-late labels: drift must be caught unlabelled (the
    confidence EWMA), while the retrain uses truth delivered late."""
    n_series = n_series or 220
    length = _KS_SHAPE["length"]
    shift_series = max(2, int(n_series * 0.30))
    boundary = shift_series * length
    train_seed, stream_seed, b_seed, _ = _seeds(seed, 21)

    def train():
        generator = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        return _balanced_panel(generator, _KS_SHAPE["n_classes"], 30,
                               train_seed + 1)

    def source():
        concept_a = KernelSynthGenerator(seed=train_seed, **_KS_SHAPE)
        concept_b = KernelSynthGenerator(seed=b_seed, **_KS_SHAPE)
        return MorphSource(concept_a, concept_b, n_series=n_series,
                           seed=stream_seed, ramp=(boundary, boundary),
                           **_KS_SHAPE)

    return Scenario(
        name="late-labels", kind=kind, description=description,
        window=length, hop=length, n_channels=2,
        n_classes=_KS_SHAPE["n_classes"], n_series=n_series,
        feed_labels=False, label_delay=6, drift_points=(boundary,),
        budget=ScenarioBudget(max_detection_delay=40, max_false_flags=1,
                              min_final_accuracy=0.45),
        _train=train, _source=source,
    )
