"""A simulated UCR/UEA archive: the paper's 13 imbalanced MTS datasets.

The real archive cannot be redistributed here, so each dataset is
regenerated synthetically to match the metadata the paper reports in
Table III: number of classes, training-set size, dimension, length,
dataset variance (Eqs. 4-5), imbalance degree (Hellinger ID), train/test
distance and missing-value proportion.  Class counts are solved by a
geometric-decay search so the Hellinger imbalance degree matches the table;
amplitudes are rescaled to hit the variance target; a constant test-set
offset realises the train/test distance; trailing truncation realises the
missing proportion.  Per-dataset ``difficulty`` encodes the paper's observed
baseline accuracy ordering (e.g. EthanolConcentration is near-chance,
PenDigits is near-perfect).

``scale="small"`` shrinks sizes for CPU experiments while preserving class
structure; ``scale="full"`` reproduces Table III's exact shape metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

import numpy as np

from .._rng import ensure_rng
from .characteristics import imbalance_degree
from .dataset import TimeSeriesDataset
from .generators import MTSGenerator

__all__ = ["DatasetSpec", "UEA_IMBALANCED_SPECS", "dataset_generator",
           "load_dataset", "list_datasets", "solve_class_counts"]


@dataclass(frozen=True)
class DatasetSpec:
    """Target metadata for one archive dataset (one row of Table III)."""

    name: str
    n_classes: int
    train_size: int
    test_size: int
    dim: int
    length: int
    var_train: float
    var_test: float
    im_ratio: float
    d_train_test: float
    prop_miss: float
    difficulty: float  # encodes the paper's baseline accuracy ordering
    seed: int


# Table III of the paper, plus the published UEA test-set sizes and a
# difficulty calibrated to the paper's baseline accuracies (Tables IV-V).
# Difficulty values are calibrated so that a CPU-scale ROCKET baseline on the
# small-scale archive tracks the paper's Table IV baseline accuracies (e.g.
# EthanolConcentration near chance, PenDigits near-perfect).
UEA_IMBALANCED_SPECS: tuple[DatasetSpec, ...] = (
    DatasetSpec("CharacterTrajectories", 20, 1422, 1436, 3, 182, 0.15, 0.15, 13.06, 3.35, 0.33, 0.05, 101),
    DatasetSpec("EigenWorms", 5, 128, 131, 6, 17984, 0.18, 0.18, 3.26, 386.95, 0.0, 0.60, 102),
    DatasetSpec("Epilepsy", 4, 137, 138, 3, 206, 0.18, 0.18, 1.05, 6.03, 0.0, 0.35, 103),
    DatasetSpec("EthanolConcentration", 4, 261, 263, 3, 1751, 0.24, 0.23, 2.0, 101616.0, 0.0, 0.95, 104),
    DatasetSpec("FingerMovements", 2, 316, 100, 28, 50, 0.16, 0.18, 0.0, 588.92, 0.0, 0.90, 105),
    DatasetSpec("Handwriting", 26, 150, 850, 3, 152, 0.15, 0.10, 12.23, 4.04, 0.0, 0.50, 106),
    DatasetSpec("Heartbeat", 2, 204, 205, 61, 405, 0.09, 0.09, 0.30, 23.15, 0.0, 0.74, 107),
    DatasetSpec("LSST", 14, 2459, 2466, 6, 36, 0.03, 0.02, 9.49, 2259.42, 0.0, 0.58, 108),
    DatasetSpec("PEMS-SF", 7, 267, 173, 963, 144, 0.17, 0.18, 3.07, 30.79, 0.0, 0.53, 109),
    DatasetSpec("PenDigits", 10, 7494, 3498, 2, 8, 0.30, 0.29, 4.02, 12.53, 0.0, 0.12, 110),
    DatasetSpec("RacketSports", 4, 151, 152, 6, 30, 0.14, 0.14, 1.06, 19.56, 0.0, 0.52, 111),
    DatasetSpec("SelfRegulationSCP1", 2, 268, 293, 6, 896, 0.16, 0.15, 0.0, 3352.33, 0.0, 0.66, 112),
    DatasetSpec("SpokenArabicDigits", 10, 6599, 2199, 13, 93, 0.14, 0.13, 0.0, 38.48, 0.57, 0.05, 113),
)

_SPEC_BY_NAME = {spec.name: spec for spec in UEA_IMBALANCED_SPECS}


def list_datasets() -> list[str]:
    """Names of the 13 imbalanced multivariate datasets, Table III order."""
    return [spec.name for spec in UEA_IMBALANCED_SPECS]


def solve_class_counts(n_classes: int, total: int, target_id: float) -> np.ndarray:
    """Find integer class counts whose Hellinger imbalance degree is closest
    to *target_id*.

    Searches a geometric-decay family ``p_c ~ r^-c`` over the decay rate,
    rounding with the largest-remainder method and a one-sample-per-class
    floor.  Balanced targets (ID = 0) short-circuit to near-uniform counts.
    """
    if total < n_classes:
        raise ValueError(f"cannot place {n_classes} classes in {total} samples")
    if target_id <= 0:
        base = np.full(n_classes, total // n_classes, dtype=np.int64)
        base[: total % n_classes] += 1
        return base

    candidates: list[np.ndarray] = []
    for rate in np.geomspace(1.0005, 50.0, 400):
        proportions = rate ** -np.arange(n_classes, dtype=float)
        proportions /= proportions.sum()
        candidates.append(_largest_remainder(proportions, total))
    # One-majority / equal-minorities family: reaches integer ID plateaus
    # (e.g. EthanolConcentration's ID = 2.0) that geometric decay skips.
    for minority in range(1, total // n_classes + 1):
        head = total - (n_classes - 1) * minority
        if head >= minority:
            candidates.append(np.array([head] + [minority] * (n_classes - 1), dtype=np.int64))

    best_counts, best_error = None, np.inf
    for counts in candidates:
        error = abs(imbalance_degree(counts) - target_id)
        if error < best_error:
            best_error, best_counts = error, counts
    return best_counts


def _largest_remainder(proportions: np.ndarray, total: int) -> np.ndarray:
    """Round proportions*total to integers summing to *total*, each >= 1."""
    k = proportions.size
    raw = proportions * (total - k)  # reserve one sample per class
    counts = np.floor(raw).astype(np.int64)
    remainder = total - k - counts.sum()
    order = np.argsort(-(raw - counts))
    counts[order[:remainder]] += 1
    return counts + 1


def _scaled_spec(spec: DatasetSpec, scale: str) -> DatasetSpec:
    if scale == "full":
        return spec
    if scale != "small":
        raise ValueError(f"scale must be 'full' or 'small'; got {scale!r}")
    train = min(spec.train_size, max(3 * spec.n_classes, 48))
    test = min(spec.test_size, max(2 * spec.n_classes, 36))
    if spec.im_ratio == 0.0:
        # Keep balanced targets exactly balanced at reduced size.
        train = max(spec.n_classes, train - train % spec.n_classes)
        test = max(spec.n_classes, test - test % spec.n_classes)
    return dc_replace(
        spec,
        train_size=train,
        test_size=test,
        dim=min(spec.dim, 6),
        length=min(spec.length, 48),
    )


def dataset_generator(name: str, *, scale: str = "small") -> MTSGenerator:
    """The :class:`MTSGenerator` behind one archive dataset.

    Exactly the generator :func:`load_dataset` samples from (same
    prototypes, same difficulty, at the requested *scale*'s shape) —
    which makes it the right template for streaming scenarios that
    should look like a model's training distribution, e.g. a synthetic
    stream with a mid-stream concept shift replayed against a model
    trained on that dataset.
    """
    if name not in _SPEC_BY_NAME:
        raise KeyError(f"unknown dataset {name!r}; see list_datasets()")
    spec = _scaled_spec(_SPEC_BY_NAME[name], scale)
    return MTSGenerator(
        n_channels=spec.dim, length=spec.length, n_classes=spec.n_classes,
        difficulty=spec.difficulty, seed=spec.seed,
    )


def load_dataset(
    name: str,
    *,
    scale: str = "small",
    seed_offset: int = 0,
) -> tuple[TimeSeriesDataset, TimeSeriesDataset]:
    """Generate the (train, test) pair for one archive dataset.

    Parameters
    ----------
    name:
        One of :func:`list_datasets`.
    scale:
        ``"full"`` reproduces Table III's shape metadata exactly (large);
        ``"small"`` (default) shrinks sizes for CPU-scale experiments while
        keeping class structure, imbalance, variance, shift and missingness.
    seed_offset:
        Added to the spec seed — lets multi-run protocols regenerate
        statistically-identical but independent archives.
    """
    if name not in _SPEC_BY_NAME:
        raise KeyError(f"unknown dataset {name!r}; see list_datasets()")
    spec = _scaled_spec(_SPEC_BY_NAME[name], scale)
    rng = ensure_rng(spec.seed + seed_offset)

    generator = MTSGenerator(
        n_channels=spec.dim,
        length=spec.length,
        n_classes=spec.n_classes,
        difficulty=spec.difficulty,
        seed=spec.seed,  # prototypes do NOT move with seed_offset
    )
    train_counts = solve_class_counts(spec.n_classes, spec.train_size, spec.im_ratio)
    test_counts = solve_class_counts(spec.n_classes, spec.test_size, spec.im_ratio)

    X_train, y_train = generator.sample(train_counts, rng)
    X_test, y_test = generator.sample(test_counts, rng)

    if spec.prop_miss > 0:
        X_train = _truncate_tails(X_train, spec.prop_miss, rng)
        X_test = _truncate_tails(X_test, spec.prop_miss, rng)
    X_train, X_test = _match_variance(X_train, X_test, spec.var_train)
    X_test = _match_shift(X_train, X_test, spec.d_train_test)

    meta = {"spec": spec, "scale": scale, "seed_offset": seed_offset}
    train = TimeSeriesDataset(X_train, y_train, name=name, metadata=meta)
    test = TimeSeriesDataset(X_test, y_test, name=name, metadata=meta)
    return train, test


def _match_variance(X_train: np.ndarray, X_test: np.ndarray,
                    target: float) -> tuple[np.ndarray, np.ndarray]:
    """Rescale both splits so the train set hits the Table III variance."""
    current = np.nanvar(X_train, axis=0).mean()
    if current <= 0:
        return X_train, X_test
    factor = np.sqrt(target / current)
    return X_train * factor, X_test * factor


def _match_shift(X_train: np.ndarray, X_test: np.ndarray, target: float) -> np.ndarray:
    """Offset the test set so the train/test mean distance hits *target*.

    The offset is constant over time within each channel — a sensor
    baseline shift.  That is how large mean distances arise in the real
    archive (e.g. EthanolConcentration's raw chromatogram baselines), and
    it is what per-series normalisation removes in real pipelines, so the
    characteristic is reproduced without inventing a shape distortion that
    would cripple every classifier.
    """
    _, m, t = X_test.shape
    residual = np.nanmean(X_test, axis=0) - np.nanmean(X_train, axis=0)
    # Cancel the incidental sampling gap, then add the calibrated offset.
    per_channel = np.full(m, target / np.sqrt(m * t))
    return X_test - residual[None] + per_channel[None, :, None]


def _truncate_tails(X: np.ndarray, prop_miss: float, rng: np.random.Generator) -> np.ndarray:
    """NaN-out trailing steps of random series until *prop_miss* is reached.

    Mimics the variable-length UEA datasets (CharacterTrajectories,
    SpokenArabicDigits) whose missingness comes from padding shorter series.
    """
    X = X.copy()
    n, _, t = X.shape
    # A fifth of the series keep full length (they define the panel length,
    # as in the real variable-length UEA datasets); the rest are truncated
    # with a mean cut calibrated so the overall NaN fraction hits the target.
    n_full = max(2, n // 5)
    n_cut = n - n_full
    if n_cut <= 0:
        return X
    cuts = rng.uniform(0.5, 1.5, size=n_cut)
    cuts *= prop_miss * n / (n_cut * cuts.mean())
    keep = np.maximum(2, np.round((1.0 - np.clip(cuts, 0.0, 0.9)) * t).astype(int))
    cut_indices = rng.permutation(n)[:n_cut]
    for i, keep_len in zip(cut_indices, keep):
        X[i, :, keep_len:] = np.nan
    return X
