"""Synthetic multivariate time-series generators.

These class-conditional processes replace the UCR/UEA recordings (which are
not redistributable inside this offline environment).  Each class is defined
by a small set of latent parameters — harmonic frequencies and phases, a
localised shapelet, a cross-channel mixing matrix and an AR(1) noise level —
drawn deterministically from a seed.  Classes therefore differ in ways that
the study's classifiers exploit: frequency structure (ROCKET's convolutional
kernels), localised shapes (InceptionTime's multi-scale convolutions), and
channel correlations (what TimeGAN / OHIT aim to preserve).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import ensure_rng
from .._validation import check_positive

__all__ = ["ClassPrototype", "MTSGenerator", "make_classification_panel"]


@dataclass(frozen=True)
class ClassPrototype:
    """Latent parameters defining one class of a synthetic MTS problem.

    Every frequency is drawn below the Nyquist limit of the configured
    length, so prototypes stay band-limited for arbitrarily short series
    (PenDigits' length-8 analogue) and arbitrarily many classes.
    """

    frequencies: np.ndarray  # (n_harmonics,) cycles over the window
    phases: np.ndarray  # (n_channels, n_harmonics) per-channel phases
    amplitudes: np.ndarray  # (n_harmonics,)
    shapelet_center: float  # in [0.15, 0.85], fraction of the window
    shapelet_width: float  # fraction of the window
    shapelet_height: float
    mixing: np.ndarray  # (n_channels, n_channels) cross-channel mixer
    ar_coefficient: float  # AR(1) noise memory
    noise_scale: float
    signal_strength: float  # prototype attenuation (difficulty dial)


class MTSGenerator:
    """Generator of labelled multivariate panels with controllable difficulty.

    Parameters
    ----------
    n_channels, length, n_classes:
        Shape of the problem.
    difficulty:
        In ``(0, 1]``; larger values move class prototypes closer together
        and raise noise, lowering attainable accuracy.  The archive maps each
        UEA dataset's observed baseline accuracy to a difficulty.
    seed:
        Determines the class prototypes; two generators built with the same
        seed produce identically-distributed data (train/test coherence).
    """

    def __init__(self, *, n_channels: int, length: int, n_classes: int,
                 difficulty: float = 0.3, n_harmonics: int = 3,
                 seed: int | np.random.Generator | None = None):
        check_positive(n_channels, name="n_channels")
        check_positive(length, name="length")
        check_positive(n_classes, name="n_classes")
        if not 0.0 < difficulty <= 1.0:
            raise ValueError(f"difficulty must be in (0, 1]; got {difficulty}")
        self.n_channels = n_channels
        self.length = length
        self.n_classes = n_classes
        self.difficulty = difficulty
        proto_rng = ensure_rng(seed)
        # A shared background prototype blends into every class as difficulty
        # rises, shrinking between-class separation all the way to chance.
        self.background = self._draw_prototype(proto_rng, -1, n_harmonics)
        self.prototypes = [
            self._draw_prototype(proto_rng, c, n_harmonics) for c in range(n_classes)
        ]
        self.overlap = float(difficulty)
        # Noise characteristics are shared across classes — otherwise the
        # noise colour itself would leak the label at full overlap.
        self.ar_coefficient = self.background.ar_coefficient
        self.noise_scale = self.background.noise_scale

    def _draw_prototype(self, rng: np.random.Generator, label: int,
                        n_harmonics: int) -> ClassPrototype:
        # Each class is an independent random band-limited curve; classes are
        # therefore separable regardless of their count, and the difficulty
        # dial attenuates the curve while raising the noise floor.
        nyquist_cap = max(1.5, 0.35 * self.length)
        frequencies = rng.uniform(0.5, nyquist_cap, size=n_harmonics)
        phases = rng.uniform(0, 2 * np.pi, size=(self.n_channels, n_harmonics))
        amplitudes = rng.uniform(0.5, 1.5, size=n_harmonics) / (1 + np.arange(n_harmonics))
        mixing = np.eye(self.n_channels) + 0.3 * rng.standard_normal((self.n_channels, self.n_channels))
        min_width = min(0.45, 2.0 / self.length)  # >= ~2 samples wide
        return ClassPrototype(
            frequencies=frequencies,
            phases=phases,
            amplitudes=amplitudes,
            shapelet_center=float(rng.uniform(0.2, 0.8)),
            shapelet_width=float(max(min_width, rng.uniform(0.05, 0.15))),
            shapelet_height=float(rng.uniform(1.0, 2.5)),
            mixing=mixing,
            ar_coefficient=float(rng.uniform(0.5, 0.9)),
            noise_scale=float(0.25 + 0.9 * self.difficulty),
            signal_strength=float(1.0 - 0.35 * self.difficulty),
        )

    # ------------------------------------------------------------------ #

    def swap_prototypes(self, mapping: list[int] | tuple[int, ...] | None = None) -> None:
        """Permute the class prototypes in place — a concept-shift dial.

        After the swap, samples labelled *c* are drawn from the prototype
        that previously defined class ``mapping[c]``: the nominal labels
        keep flowing but their generating process changes, which is
        exactly the mid-stream concept shift the streaming drift monitor
        exists to catch.  The default mapping rotates by one
        (``c -> (c + 1) % n_classes``), guaranteed to move every class
        when there are at least two.

        The noise process is shared across classes and is deliberately
        left untouched, so the shift changes *what* each class looks
        like, never how noisy the stream is.
        """
        n = self.n_classes
        if mapping is None:
            mapping = [(c + 1) % n for c in range(n)]
        mapping = [int(c) for c in mapping]
        if sorted(mapping) != list(range(n)):
            raise ValueError(
                f"mapping must be a permutation of 0..{n - 1}; got {mapping}"
            )
        self.prototypes = [self.prototypes[mapping[c]] for c in range(n)]

    def sample_class(self, label: int, n: int,
                     rng: int | np.random.Generator | None = None) -> np.ndarray:
        """Draw *n* series of class *label*, shaped ``(n, n_channels, length)``."""
        if not 0 <= label < self.n_classes:
            raise ValueError(f"label {label} outside [0, {self.n_classes})")
        if n == 0:
            return np.empty((0, self.n_channels, self.length))
        rng = ensure_rng(rng)
        proto = self.prototypes[label]
        class_signal = self._prototype_signal(proto, n, rng)
        if self.overlap > 0:
            shared = self._prototype_signal(self.background, n, rng)
            class_signal = (1.0 - self.overlap) * class_signal + self.overlap * shared
        noise = self._ar1_noise(n, rng)
        return proto.signal_strength * class_signal + noise

    def _prototype_signal(self, proto: ClassPrototype, n: int,
                          rng: np.random.Generator) -> np.ndarray:
        """Draw *n* jittered realisations of one prototype's clean signal.

        The curve is accumulated harmonic by harmonic so full-scale datasets
        (EigenWorms' 18k-step series) stay within memory; per-series
        time-shift and amplitude jitter keep the class varied.
        """
        t = np.linspace(0.0, 1.0, self.length)
        shifts = rng.normal(0.0, 0.02, size=(n, 1, 1))
        signal = np.zeros((n, self.n_channels, self.length))
        for k, frequency in enumerate(proto.frequencies):
            amp = proto.amplitudes[k] * rng.uniform(0.85, 1.15, size=(n, 1, 1))
            angles = (
                2 * np.pi * frequency * (t[None, None, :] + shifts)
                + proto.phases[None, :, k : k + 1]
            )
            signal += amp * np.sin(angles)

        # Prototype shapelet: a localised Gaussian bump with jittered
        # position, shared across channels (pre-mixing).
        centers = proto.shapelet_center + rng.normal(0.0, 0.03, size=(n, 1, 1))
        widths = proto.shapelet_width * rng.uniform(0.8, 1.2, size=(n, 1, 1))
        signal += proto.shapelet_height * np.exp(
            -0.5 * ((t[None, None, :] - centers) / widths) ** 2
        )
        return np.einsum("cd,ndt->nct", proto.mixing, signal)

    def _ar1_noise(self, n: int, rng: np.random.Generator) -> np.ndarray:
        shocks = rng.standard_normal((n, self.n_channels, self.length)) * self.noise_scale
        noise = np.empty_like(shocks)
        noise[:, :, 0] = shocks[:, :, 0]
        phi = self.ar_coefficient
        for step in range(1, self.length):
            noise[:, :, step] = phi * noise[:, :, step - 1] + shocks[:, :, step]
        return noise * np.sqrt(1 - phi**2)  # stationary variance ~ shock variance

    def sample(self, counts: np.ndarray,
               rng: int | np.random.Generator | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``counts[c]`` series of each class; returns shuffled (X, y)."""
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.n_classes,):
            raise ValueError(f"counts must have shape ({self.n_classes},); got {counts.shape}")
        rng = ensure_rng(rng)
        panels = [self.sample_class(c, int(k), rng) for c, k in enumerate(counts)]
        X = np.concatenate(panels, axis=0)
        y = np.repeat(np.arange(self.n_classes), counts)
        order = rng.permutation(len(y))
        return X[order], y[order]


def make_classification_panel(
    *,
    n_series: int = 60,
    n_channels: int = 3,
    length: int = 50,
    n_classes: int = 2,
    difficulty: float = 0.3,
    class_proportions: np.ndarray | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience one-call generator for tests and examples.

    Returns ``(X, y)`` with approximately *class_proportions* (defaults to
    balanced).  The prototype seed and the sampling seed are derived from the
    same master seed.
    """
    rng = ensure_rng(seed)
    generator = MTSGenerator(
        n_channels=n_channels, length=length, n_classes=n_classes,
        difficulty=difficulty, seed=rng,
    )
    if class_proportions is None:
        proportions = np.full(n_classes, 1.0 / n_classes)
    else:
        proportions = np.asarray(class_proportions, dtype=float)
        proportions = proportions / proportions.sum()
    counts = np.maximum(1, np.round(proportions * n_series).astype(int))
    return generator.sample(counts, rng)
