""".ts file I/O (the sktime/UEA text format).

The simulated archive stands in for the real UEA data, but users who *do*
have the archive can load it with :func:`read_ts` and everything downstream
works unchanged.  :func:`write_ts` round-trips datasets for caching.

Supported subset of the format: ``@problemName``, ``@timeStamps false``,
``@univariate``/``@dimensions``, ``@equalLength``, ``@seriesLength``,
``@classLabel`` headers and equal-length numeric data lines where dimensions
are separated by ``:`` and values by ``,``; ``?`` marks a missing value.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .dataset import TimeSeriesDataset

__all__ = ["read_ts", "write_ts"]


def read_ts(path_or_buffer, *, name: str | None = None) -> TimeSeriesDataset:
    """Parse a ``.ts`` file into a :class:`TimeSeriesDataset`.

    Class labels are mapped to contiguous integers in sorted label order,
    matching the usual sktime behaviour.
    """
    if isinstance(path_or_buffer, (str, Path)):
        text = Path(path_or_buffer).read_text()
        inferred = Path(path_or_buffer).stem
    else:
        text = path_or_buffer.read()
        inferred = "from_buffer"
    header: dict[str, str] = {}
    rows: list[list[list[float]]] = []
    labels: list[str] = []
    in_data = False

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.lower() == "@data":
            in_data = True
            continue
        if line.startswith("@"):
            key, _, value = line[1:].partition(" ")
            header[key.lower()] = value.strip()
            continue
        if not in_data:
            raise ValueError(f"data line before @data: {line[:50]!r}")
        *dim_parts, label = line.split(":")
        if not dim_parts:
            raise ValueError(f"malformed data line (no ':' separator): {line[:50]!r}")
        dims = [
            [np.nan if token.strip() == "?" else float(token) for token in part.split(",")]
            for part in dim_parts
        ]
        rows.append(dims)
        labels.append(label.strip())

    if not rows:
        raise ValueError("no data lines found in .ts input")
    n_dims = len(rows[0])
    max_len = max(len(channel) for dims in rows for channel in dims)
    X = np.full((len(rows), n_dims, max_len), np.nan)
    for i, dims in enumerate(rows):
        if len(dims) != n_dims:
            raise ValueError(f"series {i} has {len(dims)} dimensions, expected {n_dims}")
        for d, channel in enumerate(dims):
            X[i, d, : len(channel)] = channel

    unique = sorted(set(labels))
    label_to_int = {label: i for i, label in enumerate(unique)}
    y = np.array([label_to_int[label] for label in labels], dtype=np.int64)
    dataset_name = name or header.get("problemname", inferred)
    return TimeSeriesDataset(X, y, name=dataset_name, metadata={"ts_header": header, "class_labels": unique})


def write_ts(dataset: TimeSeriesDataset, path_or_buffer) -> None:
    """Serialise a dataset to the ``.ts`` format (NaN written as ``?``)."""
    buffer = io.StringIO()
    buffer.write(f"@problemName {dataset.name}\n")
    buffer.write("@timeStamps false\n")
    buffer.write(f"@univariate {'true' if dataset.n_channels == 1 else 'false'}\n")
    if dataset.n_channels > 1:
        buffer.write(f"@dimensions {dataset.n_channels}\n")
    buffer.write("@equalLength true\n")
    buffer.write(f"@seriesLength {dataset.length}\n")
    class_labels = dataset.metadata.get("class_labels") or [str(c) for c in range(dataset.n_classes)]
    buffer.write("@classLabel true " + " ".join(class_labels) + "\n")
    buffer.write("@data\n")
    for i in range(dataset.n_series):
        dims = []
        for d in range(dataset.n_channels):
            values = [
                "?" if np.isnan(v) else format(v, ".6g") for v in dataset.X[i, d]
            ]
            dims.append(",".join(values))
        buffer.write(":".join(dims) + f":{class_labels[dataset.y[i]]}\n")
    content = buffer.getvalue()
    if isinstance(path_or_buffer, (str, Path)):
        Path(path_or_buffer).write_text(content)
    else:
        path_or_buffer.write(content)
