"""The multivariate-time-series dataset container used across the library.

A :class:`TimeSeriesDataset` bundles a panel ``X`` of shape
``(n_series, n_channels, length)`` with integer labels ``y``.  Missing
values (the paper's ``prop miss`` characteristic) are represented as NaN and
can be imputed before classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .._validation import check_panel_labels

__all__ = ["TimeSeriesDataset"]


@dataclass(frozen=True)
class TimeSeriesDataset:
    """An immutable labelled panel of multivariate time series.

    Attributes
    ----------
    X:
        Panel of shape ``(n_series, n_channels, length)``; NaN marks missing
        observations.
    y:
        Integer class labels of shape ``(n_series,)``.
    name:
        Human-readable dataset name (e.g. ``"Epilepsy"``).
    metadata:
        Free-form provenance dictionary (generator parameters, scale, ...).
    """

    X: np.ndarray
    y: np.ndarray
    name: str = "unnamed"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        X, y = check_panel_labels(self.X, self.y)
        y = y.astype(np.int64)
        if (y < 0).any():
            raise ValueError("labels must be non-negative integers")
        object.__setattr__(self, "X", X)
        object.__setattr__(self, "y", y)

    # ------------------------------------------------------------------ #
    # basic shape accessors
    # ------------------------------------------------------------------ #

    @property
    def n_series(self) -> int:
        return self.X.shape[0]

    @property
    def n_channels(self) -> int:
        return self.X.shape[1]

    @property
    def length(self) -> int:
        return self.X.shape[2]

    @property
    def n_classes(self) -> int:
        return int(self.y.max()) + 1 if self.n_series else 0

    def __len__(self) -> int:
        return self.n_series

    def __repr__(self) -> str:
        return (
            f"TimeSeriesDataset(name={self.name!r}, n_series={self.n_series}, "
            f"n_channels={self.n_channels}, length={self.length}, "
            f"n_classes={self.n_classes})"
        )

    # ------------------------------------------------------------------ #
    # class structure
    # ------------------------------------------------------------------ #

    def class_counts(self) -> np.ndarray:
        """Series count per class label, indexed ``0..n_classes-1``."""
        return np.bincount(self.y, minlength=self.n_classes)

    def class_proportions(self) -> np.ndarray:
        """Empirical class distribution (sums to 1)."""
        counts = self.class_counts()
        return counts / counts.sum()

    def series_of_class(self, label: int) -> np.ndarray:
        """Return the sub-panel of all series with class *label*."""
        return self.X[self.y == label]

    def is_balanced(self) -> bool:
        """True when every class has the same number of series."""
        counts = self.class_counts()
        return bool((counts == counts[0]).all())

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #

    def subset(self, indices) -> "TimeSeriesDataset":
        """Dataset restricted to *indices* (any numpy fancy index)."""
        indices = np.asarray(indices)
        return replace(self, X=self.X[indices], y=self.y[indices])

    def with_samples(self, X_new: np.ndarray, y_new: np.ndarray) -> "TimeSeriesDataset":
        """Append synthetic samples, e.g. output of an augmenter."""
        X_new = np.asarray(X_new, dtype=np.float64)
        if X_new.ndim == 2:
            X_new = X_new[:, None, :]
        if X_new.shape[1:] != self.X.shape[1:]:
            raise ValueError(
                f"new samples have shape {X_new.shape[1:]}, dataset expects {self.X.shape[1:]}"
            )
        return replace(
            self,
            X=np.concatenate([self.X, X_new], axis=0),
            y=np.concatenate([self.y, np.asarray(y_new, dtype=np.int64)]),
        )

    def impute(self, strategy: str = "forward") -> "TimeSeriesDataset":
        """Replace NaN observations.

        ``"forward"`` carries the last valid value forward (then backward for
        leading NaNs); ``"zero"`` substitutes zeros; ``"mean"`` substitutes
        the per-channel series mean.
        """
        if not np.isnan(self.X).any():
            return self
        X = self.X.copy()
        if strategy == "zero":
            X[np.isnan(X)] = 0.0
        elif strategy == "mean":
            means = np.nanmean(X, axis=2, keepdims=True)
            means = np.nan_to_num(means)
            mask = np.isnan(X)
            X[mask] = np.broadcast_to(means, X.shape)[mask]
        elif strategy == "forward":
            n, m, t = X.shape
            flat = X.reshape(n * m, t)
            mask = np.isnan(flat)
            idx = np.where(~mask, np.arange(t), 0)
            np.maximum.accumulate(idx, axis=1, out=idx)
            flat = flat[np.arange(n * m)[:, None], idx]
            # Leading NaNs (no prior value): fill backward from the first valid.
            still = np.isnan(flat)
            if still.any():
                rev = flat[:, ::-1]
                rmask = np.isnan(rev)
                ridx = np.where(~rmask, np.arange(t), 0)
                np.maximum.accumulate(ridx, axis=1, out=ridx)
                rev = rev[np.arange(n * m)[:, None], ridx]
                flat[still] = rev[:, ::-1][still]
            flat[np.isnan(flat)] = 0.0  # all-NaN rows
            X = flat.reshape(n, m, t)
        else:
            raise ValueError(f"unknown imputation strategy: {strategy!r}")
        return replace(self, X=X)

    def znormalize(self) -> "TimeSeriesDataset":
        """Z-normalise each channel of each series (NaN-aware)."""
        mean = np.nanmean(self.X, axis=2, keepdims=True)
        std = np.nanstd(self.X, axis=2, keepdims=True)
        std[std == 0] = 1.0
        return replace(self, X=(self.X - mean) / std)

    def missing_proportion(self) -> float:
        """Fraction of NaN observations — the paper's ``prop miss``."""
        return float(np.isnan(self.X).mean())

    def downsample(self, fraction: float, *, rng=None, stratified: bool = True
                   ) -> "TimeSeriesDataset":
        """Random subset with *fraction* of the series (the paper's
        'downsampled training set' variant of the protocol).

        Stratified by default so every class survives; each class keeps at
        least one series.
        """
        from .._rng import ensure_rng  # local import avoids a cycle

        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1]; got {fraction}")
        rng = ensure_rng(rng)
        if not stratified:
            size = max(1, int(round(fraction * self.n_series)))
            return self.subset(rng.choice(self.n_series, size=size, replace=False))
        keep: list[np.ndarray] = []
        for label in range(self.n_classes):
            members = np.flatnonzero(self.y == label)
            if len(members) == 0:
                continue
            size = max(1, int(round(fraction * len(members))))
            keep.append(rng.choice(members, size=size, replace=False))
        return self.subset(np.concatenate(keep))

    def resample(self, length: int) -> "TimeSeriesDataset":
        """Linearly resample every series to a new *length* (NaN-aware).

        Used to bring variable-resolution data to a common grid; NaN tails
        stay NaN so missingness is preserved proportionally.
        """
        if length < 2:
            raise ValueError(f"length must be >= 2; got {length}")
        if length == self.length:
            return self
        old_grid = np.arange(self.length)
        new_grid = np.linspace(0, self.length - 1, length)
        X = np.empty((self.n_series, self.n_channels, length))
        for i in range(self.n_series):
            for channel in range(self.n_channels):
                series = self.X[i, channel]
                valid = ~np.isnan(series)
                if valid.sum() < 2:
                    X[i, channel] = np.nan
                    continue
                X[i, channel] = np.interp(new_grid, old_grid[valid], series[valid])
                # Preserve the trailing-NaN structure proportionally.
                last_valid = np.flatnonzero(valid)[-1]
                cut = int(np.ceil((last_valid + 1) / self.length * length))
                X[i, channel, cut:] = np.nan
        return replace(self, X=X)
