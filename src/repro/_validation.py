"""Input-validation helpers shared across the library.

The public API accepts multivariate time-series panels as numpy arrays of
shape ``(n_series, n_channels, length)``.  These helpers normalise and check
that contract in one place so every module raises consistent errors.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_panel", "check_panel_labels", "check_labels", "check_positive", "check_probability"]


def check_panel(X, *, name: str = "X", allow_empty: bool = False) -> np.ndarray:
    """Validate a panel of multivariate series of shape ``(N, M, T)``.

    Accepts 2-D input ``(N, T)`` (univariate) and promotes it to a single
    channel.  Returns a float64 C-contiguous array; raises ``ValueError`` on
    wrong dimensionality or non-finite checks are left to callers that care.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 2:
        X = X[:, None, :]
    if X.ndim != 3:
        raise ValueError(
            f"{name} must have shape (n_series, n_channels, length); got ndim={X.ndim}"
        )
    if not allow_empty and X.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one series")
    if X.shape[1] == 0 or X.shape[2] == 0:
        raise ValueError(f"{name} has a zero-sized channel/length axis: {X.shape}")
    return np.ascontiguousarray(X)


def check_labels(y, *, n: int | None = None, name: str = "y") -> np.ndarray:
    """Validate a 1-D label vector, optionally of known length *n*."""
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"{name} must be 1-D; got ndim={y.ndim}")
    if n is not None and y.shape[0] != n:
        raise ValueError(f"{name} has {y.shape[0]} entries but {n} series were given")
    return y


def check_panel_labels(X, y, *, allow_empty: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Validate a panel and its label vector together."""
    X = check_panel(X, allow_empty=allow_empty)
    y = check_labels(y, n=X.shape[0])
    return X, y


def check_positive(value, *, name: str, strict: bool = True) -> None:
    """Raise ``ValueError`` unless *value* is positive (or non-negative)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0; got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0; got {value}")


def check_probability(value, *, name: str) -> None:
    """Raise ``ValueError`` unless *value* lies in the closed unit interval."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1]; got {value}")
