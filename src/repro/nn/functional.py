"""Hand-written neural-network kernels with custom backward passes.

The autodiff engine in :mod:`repro.nn.tensor` composes elementwise primitives;
the kernels here (1-D convolution via im2col, pooling, batch normalisation,
softmax) are written with explicit gradients both for speed and numerical
stability.  All of them operate on panels shaped ``(batch, channels, length)``
— the same convention used throughout the library.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "conv1d",
    "max_pool1d",
    "global_avg_pool1d",
    "batch_norm",
    "softmax",
    "log_softmax",
    "dropout",
    "pad1d",
]


def _im2col(x: np.ndarray, kernel: int, stride: int, dilation: int) -> np.ndarray:
    """Unfold ``(N, C, T)`` into ``(N, C * kernel, out_len)`` patches."""
    n, c, t = x.shape
    span = (kernel - 1) * dilation + 1
    out_len = (t - span) // stride + 1
    s_n, s_c, s_t = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, out_len),
        strides=(s_n, s_c, s_t * dilation, s_t * stride),
        writeable=False,
    )
    return patches.reshape(n, c * kernel, out_len), out_len


def pad1d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the time axis of a ``(N, C, T)`` tensor on both sides."""
    if padding == 0:
        return x
    out_data = np.pad(x.data, ((0, 0), (0, 0), (padding, padding)))

    def backward(grad):
        if x.requires_grad:
            x._accumulate(np.asarray(grad)[:, :, padding:-padding])

    return Tensor.from_op(out_data, (x,), backward)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    *,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> Tensor:
    """1-D cross-correlation of ``(N, C_in, T)`` with ``(C_out, C_in, K)``.

    Implemented as im2col + one matmul; the backward pass re-uses the cached
    patch matrix for the weight gradient and scatters columns back for the
    input gradient.
    """
    if padding:
        x = pad1d(x, padding)
    xd, wd = x.data, weight.data
    c_out, c_in, kernel = wd.shape
    if xd.shape[1] != c_in:
        raise ValueError(f"input has {xd.shape[1]} channels, weight expects {c_in}")
    cols, out_len = _im2col(xd, kernel, stride, dilation)
    w_flat = wd.reshape(c_out, c_in * kernel)
    out_data = np.einsum("ok,nkl->nol", w_flat, cols, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad = np.asarray(grad)  # (N, C_out, out_len)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if weight.requires_grad:
            gw = np.einsum("nol,nkl->ok", grad, cols, optimize=True)
            weight._accumulate(gw.reshape(c_out, c_in, kernel))
        if x.requires_grad:
            gcols = np.einsum("ok,nol->nkl", w_flat, grad, optimize=True)
            gcols = gcols.reshape(xd.shape[0], c_in, kernel, out_len)
            gx = np.zeros_like(xd)
            for k in range(kernel):
                t0 = k * dilation
                gx[:, :, t0 : t0 + out_len * stride : stride] += gcols[:, :, k, :]
            x._accumulate(gx)

    return Tensor.from_op(out_data, parents, backward)


def max_pool1d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Max pooling over the time axis of a ``(N, C, T)`` tensor."""
    stride = stride or kernel
    if padding:
        out_pad = np.pad(x.data, ((0, 0), (0, 0), (padding, padding)), constant_values=-np.inf)
    else:
        out_pad = x.data
    n, c, t = out_pad.shape
    out_len = (t - kernel) // stride + 1
    s_n, s_c, s_t = out_pad.strides
    windows = np.lib.stride_tricks.as_strided(
        out_pad, shape=(n, c, out_len, kernel), strides=(s_n, s_c, s_t * stride, s_t), writeable=False
    )
    argmaxes = windows.argmax(axis=3)
    out_data = np.take_along_axis(windows, argmaxes[..., None], axis=3)[..., 0]

    def backward(grad):
        if not x.requires_grad:
            return
        grad = np.asarray(grad)
        gx = np.zeros((n, c, t))
        starts = np.arange(out_len) * stride
        flat_t = starts[None, None, :] + argmaxes
        ni, ci = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
        np.add.at(gx, (ni[..., None], ci[..., None], flat_t), grad)
        if padding:
            gx = gx[:, :, padding:-padding]
        x._accumulate(gx)

    return Tensor.from_op(out_data, (x,), backward)


def global_avg_pool1d(x: Tensor) -> Tensor:
    """Average a ``(N, C, T)`` tensor over its time axis, yielding ``(N, C)``."""
    return x.mean(axis=2)


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    *,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over the channel axis of ``(N, C, T)`` or ``(N, C)``.

    Updates *running_mean*/*running_var* in place when *training* is true.
    """
    xd = x.data
    axes = (0,) if xd.ndim == 2 else (0, 2)
    view = (1, -1) if xd.ndim == 2 else (1, -1, 1)

    if training:
        mean = xd.mean(axis=axes)
        var = xd.var(axis=axes)
        count = xd.shape[0] if xd.ndim == 2 else xd.shape[0] * xd.shape[2]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean, var = running_mean, running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (xd - mean.reshape(view)) * inv_std.reshape(view)
    out_data = gamma.data.reshape(view) * x_hat + beta.data.reshape(view)

    def backward(grad):
        grad = np.asarray(grad)
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=axes))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=axes))
        if x.requires_grad:
            g = gamma.data.reshape(view)
            if training:
                count = xd.shape[0] if xd.ndim == 2 else xd.shape[0] * xd.shape[2]
                dxhat = grad * g
                term1 = dxhat
                term2 = dxhat.mean(axis=axes).reshape(view)
                term3 = x_hat * (dxhat * x_hat).mean(axis=axes).reshape(view)
                x._accumulate(inv_std.reshape(view) * (term1 - term2 - term3))
            else:
                x._accumulate(grad * g * inv_std.reshape(view))

    return Tensor.from_op(out_data, (x, gamma, beta), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along *axis*."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        if x.requires_grad:
            grad = np.asarray(grad)
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

    return Tensor.from_op(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along *axis*."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    probs = np.exp(out_data)

    def backward(grad):
        if x.requires_grad:
            grad = np.asarray(grad)
            x._accumulate(grad - probs * grad.sum(axis=axis, keepdims=True))

    return Tensor.from_op(out_data, (x,), backward)


def dropout(x: Tensor, p: float, *, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero activations with probability *p* during training."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError(f"dropout probability must be < 1; got {p}")
    mask = (rng.random(x.data.shape) >= p) / (1.0 - p)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(np.asarray(grad) * mask)

    return Tensor.from_op(x.data * mask, (x,), backward)
