"""Weight-initialisation schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_uniform", "orthogonal", "zeros"]


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (tanh/sigmoid-friendly)."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialisation (ReLU-friendly)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialisation for recurrent weight matrices."""
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    return q[:rows, :cols] if rows >= cols else q.T[:rows, :cols]


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Convolution weights (C_out, C_in, K): receptive field multiplies fans.
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
