"""LSTM layers, completing the recurrent substrate.

Used by the LSTM autoencoder augmenter (the taxonomy's LSTM-AE leaf, Tu et
al. 2018) and available for custom sequence models.  Gate layout follows
the standard formulation with forget-gate bias initialised to 1 (Greff et
al., 2017 — the paper's reference [28] — found this the single most
important LSTM detail).
"""

from __future__ import annotations

import numpy as np

from . import init
from .layers import Module
from .tensor import Tensor

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM cell.

    ::

        i = sigmoid(x W_i + h U_i + b_i)    (input gate)
        f = sigmoid(x W_f + h U_f + b_f)    (forget gate)
        g = tanh   (x W_g + h U_g + b_g)    (candidate)
        o = sigmoid(x W_o + h U_o + b_o)    (output gate)
        c' = f * c + i * g
        h' = o * tanh(c')
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Tensor(init.glorot_uniform((input_size, 4 * hidden_size), rng), requires_grad=True)
        self.w_hh = Tensor(
            np.concatenate([init.orthogonal((hidden_size, hidden_size), rng) for _ in range(4)], axis=1),
            requires_grad=True,
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Tensor(bias, requires_grad=True)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        hs = self.hidden_size
        gates = x @ self.w_ih + h @ self.w_hh + self.bias
        i = gates[:, 0:hs].sigmoid()
        f = gates[:, hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """A (possibly stacked) LSTM over ``(N, T, F)`` sequences.

    Returns the top layer's full hidden sequence ``(N, T, H)``.
    """

    def __init__(self, input_size: int, hidden_size: int, *, num_layers: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1; got {num_layers}")
        self.hidden_size = hidden_size
        self.cells = [
            LSTMCell(input_size if i == 0 else hidden_size, hidden_size, rng=rng)
            for i in range(num_layers)
        ]

    def forward(self, x: Tensor) -> Tensor:
        n, t, _ = x.shape
        layer_input = [x[:, step, :] for step in range(t)]
        for cell in self.cells:
            h = Tensor(np.zeros((n, cell.hidden_size)))
            c = Tensor(np.zeros((n, cell.hidden_size)))
            outputs = []
            for step_input in layer_input:
                h, c = cell(step_input, (h, c))
                outputs.append(h)
            layer_input = outputs
        return Tensor.stack(layer_input, axis=1)
