"""Loss functions for :mod:`repro.nn` models."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = ["cross_entropy", "mse_loss", "bce_with_logits", "mae_loss"]


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``(N, C)`` logits and integer targets."""
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError(f"targets must be 1-D integer class indices; got ndim={targets.ndim}")
    n = logits.shape[0]
    log_probs = F.log_softmax(logits, axis=1)
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error; *target* may be a tensor or array."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target) -> Tensor:
    """Mean absolute error; *target* may be a tensor or array."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (pred - target).abs().mean()


def bce_with_logits(logits: Tensor, targets) -> Tensor:
    """Numerically-stable binary cross-entropy on raw logits.

    Uses the identity ``BCE = max(x, 0) - x*y + log(1 + exp(-|x|))`` which
    avoids overflow for large-magnitude logits.
    """
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    zeros = Tensor(np.zeros_like(logits.data))
    positive_part = Tensor.stack([logits, zeros], axis=0).max(axis=0)
    softplus = (Tensor(np.ones_like(logits.data)) + (-logits.abs()).exp()).log()
    return (positive_part - logits * targets + softplus).mean()
