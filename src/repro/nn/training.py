"""Training loop with early stopping, matching the paper's protocol.

Section IV-D of the paper trains InceptionTime for up to 200 epochs with an
early-stopping patience of 30 epochs, restoring the model that achieved the
best validation accuracy.  :class:`Trainer` implements exactly that loop for
any classifier-shaped :class:`~repro.nn.layers.Module` (input ``(N, C, T)``
panel, output ``(N, n_classes)`` logits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rng import ensure_rng
from .layers import Module
from .losses import cross_entropy
from .optim import Adam, clip_grad_norm
from .tensor import Tensor, no_grad

__all__ = ["Trainer", "TrainingHistory", "iterate_minibatches"]


def iterate_minibatches(n: int, batch_size: int, rng: np.random.Generator):
    """Yield shuffled index batches covering ``range(n)``."""
    order = rng.permutation(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


@dataclass
class TrainingHistory:
    """Per-epoch curves recorded by :class:`Trainer`."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_epoch: int = -1

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")


class Trainer:
    """Early-stopping trainer for logit-producing modules.

    Parameters mirror the paper's setup: *max_epochs* = 200 and *patience* =
    30 by default (both can be scaled down for CPU-sized experiments).
    """

    def __init__(
        self,
        model: Module,
        *,
        lr: float = 1e-3,
        max_epochs: int = 200,
        patience: int = 30,
        batch_size: int = 64,
        weight_decay: float = 0.0,
        grad_clip: float = 10.0,
        seed: int | np.random.Generator | None = None,
    ):
        if max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1; got {max_epochs}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1; got {patience}")
        self.model = model
        self.optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
        self.max_epochs = max_epochs
        self.patience = patience
        self.batch_size = batch_size
        self.grad_clip = grad_clip
        self.rng = ensure_rng(seed)

    def fit(self, X_train: np.ndarray, y_train: np.ndarray,
            X_val: np.ndarray, y_val: np.ndarray) -> TrainingHistory:
        """Train until convergence or patience exhaustion; restore best model."""
        history = TrainingHistory()
        best_state: dict[str, np.ndarray] | None = None
        # Early stopping counts epochs without *accuracy* improvement (the
        # paper's criterion); the saved state additionally uses validation
        # loss as a tie-break so a saturated small validation set does not
        # freeze model selection at the first perfect epoch.
        best_key = (-np.inf, -np.inf)
        best_acc = -np.inf
        epochs_without_improvement = 0

        for epoch in range(self.max_epochs):
            self.model.train()
            epoch_losses = []
            for batch in iterate_minibatches(len(X_train), self.batch_size, self.rng):
                loss = self._step(X_train[batch], y_train[batch])
                epoch_losses.append(loss)
            history.train_loss.append(float(np.mean(epoch_losses)))

            val_loss, val_acc = self.evaluate(X_val, y_val)
            history.val_loss.append(val_loss)
            history.val_accuracy.append(val_acc)

            if (val_acc, -val_loss) > best_key:
                best_key = (val_acc, -val_loss)
                best_state = self.model.state_dict()
                history.best_epoch = epoch
            if val_acc > best_acc:
                best_acc = val_acc
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= self.patience:
                    history.stopped_epoch = epoch
                    break

        history.stopped_epoch = history.stopped_epoch if history.stopped_epoch >= 0 else self.max_epochs - 1
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return history

    def _step(self, X_batch: np.ndarray, y_batch: np.ndarray) -> float:
        self.optimizer.zero_grad()
        logits = self.model(Tensor(X_batch))
        loss = cross_entropy(logits, y_batch)
        loss.backward()
        if self.grad_clip:
            clip_grad_norm(self.optimizer.params, self.grad_clip)
        self.optimizer.step()
        return loss.item()

    def evaluate(self, X: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """Return (mean loss, accuracy) on a held-out set, without gradients."""
        self.model.eval()
        losses, correct, total = [], 0, 0
        with no_grad():
            for start in range(0, len(X), self.batch_size):
                stop = start + self.batch_size
                logits = self.model(Tensor(X[start:stop]))
                losses.append(cross_entropy(logits, y[start:stop]).item() * (min(stop, len(X)) - start))
                correct += int((logits.data.argmax(axis=1) == y[start:stop]).sum())
                total += min(stop, len(X)) - start
        return float(np.sum(losses) / total), correct / total
