"""A minimal numpy deep-learning framework.

This subpackage is the substrate replacing TensorFlow/fastai in the paper's
stack: reverse-mode autodiff (:mod:`~repro.nn.tensor`), layers
(:mod:`~repro.nn.layers`, :mod:`~repro.nn.recurrent`), optimisers
(:mod:`~repro.nn.optim`), losses, LR schedules including the cyclical LR
range test the paper uses, and an early-stopping :class:`~repro.nn.training.Trainer`.
"""

from . import functional
from .layers import (
    BatchNorm1d,
    Conv1d,
    Dropout,
    Flatten,
    GlobalAvgPool1d,
    Linear,
    MaxPool1d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .losses import bce_with_logits, cross_entropy, mae_loss, mse_loss
from .lstm import LSTM, LSTMCell
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .recurrent import GRU, GRUCell
from .schedulers import CosineAnnealing, StepDecay, lr_range_test, suggest_valley_lr
from .tensor import Tensor, no_grad
from .training import Trainer, TrainingHistory, iterate_minibatches

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "Module",
    "Linear",
    "Conv1d",
    "BatchNorm1d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "MaxPool1d",
    "GlobalAvgPool1d",
    "Flatten",
    "Sequential",
    "GRU",
    "GRUCell",
    "LSTM",
    "LSTMCell",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "cross_entropy",
    "mse_loss",
    "mae_loss",
    "bce_with_logits",
    "StepDecay",
    "CosineAnnealing",
    "lr_range_test",
    "suggest_valley_lr",
    "Trainer",
    "TrainingHistory",
    "iterate_minibatches",
]
