"""Learning-rate schedules and the cyclical LR range test.

The paper (Sec. IV-D) runs a cyclical learning-rate analysis (Smith, 2017)
per dataset before training InceptionTime and picks the "valley" point.
:func:`lr_range_test` reproduces that procedure: it sweeps the learning rate
geometrically over mini-batches, records the loss, and
:func:`suggest_valley_lr` picks the steepest-descent point of the smoothed
curve.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .optim import Optimizer

__all__ = ["StepDecay", "CosineAnnealing", "lr_range_test", "suggest_valley_lr"]


class StepDecay:
    """Multiply the optimiser's learning rate by *gamma* every *step_size* epochs."""

    def __init__(self, optimizer: Optimizer, *, step_size: int, gamma: float = 0.5):
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1; got {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch += 1
        self.optimizer.lr = self._base_lr * self.gamma ** (self._epoch // self.step_size)


class CosineAnnealing:
    """Cosine-anneal the learning rate from its initial value to *eta_min*."""

    def __init__(self, optimizer: Optimizer, *, t_max: int, eta_min: float = 0.0):
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1; got {t_max}")
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.t_max)
        cos = (1 + np.cos(np.pi * self._epoch / self.t_max)) / 2
        self.optimizer.lr = self.eta_min + (self._base_lr - self.eta_min) * cos


def lr_range_test(
    loss_at_lr: Callable[[float], float],
    *,
    min_lr: float = 1e-5,
    max_lr: float = 1.0,
    num_steps: int = 30,
) -> tuple[np.ndarray, np.ndarray]:
    """Sweep learning rates geometrically and record the training loss.

    *loss_at_lr* performs one optimisation step at the given learning rate
    and returns the batch loss.  Returns ``(lrs, losses)``; the sweep stops
    early if the loss diverges (> 10x the best seen), matching the usual
    LR-finder behaviour.
    """
    if min_lr <= 0 or max_lr <= min_lr:
        raise ValueError(f"need 0 < min_lr < max_lr; got {min_lr}, {max_lr}")
    lrs = np.geomspace(min_lr, max_lr, num_steps)
    losses: list[float] = []
    best = np.inf
    used: list[float] = []
    for lr in lrs:
        loss = float(loss_at_lr(float(lr)))
        used.append(float(lr))
        losses.append(loss)
        if np.isfinite(loss):
            best = min(best, loss)
        if not np.isfinite(loss) or loss > 10 * best:
            break
    return np.asarray(used), np.asarray(losses)


def suggest_valley_lr(lrs: np.ndarray, losses: np.ndarray, *, smooth: int = 3) -> float:
    """Pick the valley learning rate from an LR-range-test curve.

    Smooths the curve with a moving average and returns the learning rate
    with the steepest negative slope (the point Smith's method recommends,
    slightly before the minimum).  Falls back to the minimum-loss point for
    degenerate curves.
    """
    lrs = np.asarray(lrs, dtype=float)
    losses = np.asarray(losses, dtype=float)
    if lrs.shape != losses.shape or lrs.size == 0:
        raise ValueError("lrs and losses must be equal-length non-empty arrays")
    finite = np.isfinite(losses)
    lrs, losses = lrs[finite], losses[finite]
    if lrs.size == 0:
        raise ValueError("no finite losses recorded in LR range test")
    if lrs.size < 3:
        return float(lrs[np.argmin(losses)])
    if smooth > 1:
        width = min(smooth, losses.size)
        kernel = np.ones(width) / width
        padded = np.concatenate([
            np.full(width // 2, losses[0]), losses, np.full(width - 1 - width // 2, losses[-1])
        ])
        losses = np.convolve(padded, kernel, mode="valid")[: losses.size]
    slopes = np.gradient(losses, np.log(lrs))
    return float(lrs[np.argmin(slopes)])
