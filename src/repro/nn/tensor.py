"""A small reverse-mode automatic-differentiation engine on numpy.

This module provides the :class:`Tensor` class used by every neural model in
the library (InceptionTime, TimeGAN, autoencoders, the diffusion sampler).
It implements the standard define-by-run tape: each operation records a
closure that propagates gradients to its inputs, and :meth:`Tensor.backward`
walks the tape in reverse topological order.

The design goal is correctness and clarity rather than raw speed; the
heavyweight kernels (1-D convolution, batch norm) live in
:mod:`repro.nn.functional` with hand-written backward passes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient recording (for inference)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum *grad* down to *shape*, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy-backed array that records operations for backpropagation.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _wrap(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    @classmethod
    def from_op(cls, data, parents, backward) -> "Tensor":
        """Create a tensor produced by an op with custom *backward* closure."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # gradient accumulation and backward pass
    # ------------------------------------------------------------------ #

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float64))

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
            # Release the tape as we go so large graphs free memory early.
            node._backward = None
            node._parents = ()

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #

    def __add__(self, other):
        other = self._wrap(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor.from_op(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor.from_op(-self.data, (self,), backward)

    def __sub__(self, other):
        other = self._wrap(other)
        out_data = self.data - other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor.from_op(out_data, (self, other), backward)

    def __rsub__(self, other):
        return self._wrap(other) - self

    def __mul__(self, other):
        other = self._wrap(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor.from_op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._wrap(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return Tensor.from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._wrap(other) / self

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor.from_op(out_data, (self,), backward)

    def __matmul__(self, other):
        other = self._wrap(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim == 1 else grad[..., None] * other.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(g)

        return Tensor.from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # elementwise non-linearities
    # ------------------------------------------------------------------ #

    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor.from_op(out_data, (self,), backward)

    def log(self):
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor.from_op(out_data, (self,), backward)

    def sqrt(self):
        return self**0.5

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor.from_op(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor.from_op(out_data, (self,), backward)

    def relu(self):
        mask = self.data > 0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor.from_op(self.data * mask, (self,), backward)

    def abs(self):
        sign = np.sign(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor.from_op(np.abs(self.data), (self,), backward)

    def clip(self, lo: float, hi: float):
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor.from_op(np.clip(self.data, lo, hi), (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #

    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor.from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = self.data == expanded
            # Split gradient evenly between ties, matching subgradient choice.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / counts)

        return Tensor.from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(original))

        return Tensor.from_op(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.transpose(np.asarray(grad), inverse))

        return Tensor.from_op(np.transpose(self.data, axes), (self,), backward)

    def __getitem__(self, index):
        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor.from_op(self.data[index], (self,), backward)

    @staticmethod
    def concatenate(tensors: "list[Tensor]", axis: int = 0) -> "Tensor":
        """Concatenate tensors along *axis* with gradient support."""
        tensors = [Tensor._wrap(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            grad = np.asarray(grad)
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    t._accumulate(grad[tuple(slicer)])

        return Tensor.from_op(out_data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: "list[Tensor]", axis: int = 0) -> "Tensor":
        """Stack tensors along a new *axis* with gradient support."""
        tensors = [Tensor._wrap(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad):
            grad = np.asarray(grad)
            for i, t in enumerate(tensors):
                if t.requires_grad:
                    t._accumulate(np.take(grad, i, axis=axis))

        return Tensor.from_op(out_data, tuple(tensors), backward)
