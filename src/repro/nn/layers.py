"""Neural-network layers built on the :mod:`repro.nn` autodiff engine.

Layers follow a torch-like protocol: a :class:`Module` owns named
:class:`~repro.nn.tensor.Tensor` parameters, exposes ``forward`` /
``__call__``, ``parameters()``, ``train()`` / ``eval()``, and
``state_dict()`` / ``load_state_dict()`` for checkpointing (used by the
Trainer's best-model restore).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Module",
    "Linear",
    "Conv1d",
    "BatchNorm1d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "MaxPool1d",
    "GlobalAvgPool1d",
    "Sequential",
    "Flatten",
]


class Module:
    """Base class for layers and models."""

    def __init__(self):
        self.training = True

    # -- forward ------------------------------------------------------- #

    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    # -- parameter / submodule discovery -------------------------------- #

    def parameters(self) -> list[Tensor]:
        """Return all trainable tensors in this module tree."""
        params: list[Tensor] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            for p in _collect_parameters(value):
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        return params

    def modules(self) -> "list[Module]":
        """Return this module and every descendant module."""
        found: list[Module] = [self]
        for value in self.__dict__.values():
            for m in _collect_modules(value):
                found.extend(m.modules())
        return found

    # -- mode switching -------------------------------------------------- #

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- checkpointing ----------------------------------------------------- #

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy all parameters and buffers into a flat dict."""
        state: dict[str, np.ndarray] = {}
        self._fill_state("", state)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters and buffers from :meth:`state_dict` output."""
        self._load_state("", state)

    def _fill_state(self, prefix: str, state: dict[str, np.ndarray]) -> None:
        for name, value in self.__dict__.items():
            key = f"{prefix}{name}"
            if isinstance(value, Tensor):
                state[key] = value.data.copy()
            elif isinstance(value, np.ndarray):
                state[key] = value.copy()
            elif isinstance(value, Module):
                value._fill_state(f"{key}.", state)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._fill_state(f"{key}.{i}.", state)
                    elif isinstance(item, Tensor):
                        state[f"{key}.{i}"] = item.data.copy()

    def _load_state(self, prefix: str, state: dict[str, np.ndarray]) -> None:
        for name, value in self.__dict__.items():
            key = f"{prefix}{name}"
            if isinstance(value, Tensor) and key in state:
                value.data[...] = state[key]
            elif isinstance(value, np.ndarray) and key in state:
                value[...] = state[key]
            elif isinstance(value, Module):
                value._load_state(f"{key}.", state)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._load_state(f"{key}.{i}.", state)
                    elif isinstance(item, Tensor) and f"{key}.{i}" in state:
                        item.data[...] = state[f"{key}.{i}"]


def _collect_parameters(value) -> list[Tensor]:
    if isinstance(value, Tensor) and value.requires_grad:
        return [value]
    if isinstance(value, Module):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        out: list[Tensor] = []
        for item in value:
            out.extend(_collect_parameters(item))
        return out
    return []


def _collect_modules(value) -> "list[Module]":
    if isinstance(value, Module):
        return [value]
    if isinstance(value, (list, tuple)):
        out: list[Module] = []
        for item in value:
            out.extend(_collect_modules(item))
        return out
    return []


class Linear(Module):
    """Affine map ``y = x W^T + b`` over the last axis."""

    def __init__(self, in_features: int, out_features: int, *, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init.glorot_uniform((out_features, in_features), rng), requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv1d(Module):
    """1-D convolution over ``(N, C, T)`` panels."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, *,
                 stride: int = 1, padding: int = 0, dilation: int = 1, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.stride, self.padding, self.dilation = stride, padding, dilation
        self.weight = Tensor(
            init.he_uniform((out_channels, in_channels, kernel_size), rng), requires_grad=True
        )
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding, dilation=self.dilation)


class BatchNorm1d(Module):
    """Batch normalisation for ``(N, C)`` or ``(N, C, T)`` inputs."""

    def __init__(self, num_features: int, *, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.momentum, self.eps = momentum, eps
        self.gamma = Tensor(np.ones(num_features), requires_grad=True)
        self.beta = Tensor(np.zeros(num_features), requires_grad=True)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(x, self.gamma, self.beta, self.running_mean, self.running_var,
                            training=self.training, momentum=self.momentum, eps=self.eps)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Dropout(Module):
    """Inverted dropout with its own generator for reproducibility."""

    def __init__(self, p: float = 0.5, *, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1); got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self.rng)


class MaxPool1d(Module):
    def __init__(self, kernel_size: int, *, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool1d(x, self.kernel_size, self.stride, self.padding)


class GlobalAvgPool1d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool1d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Sequential(Module):
    """Run submodules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
