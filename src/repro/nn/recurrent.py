"""Recurrent layers (GRU) for sequence models such as TimeGAN.

TimeGAN's embedder, recovery, generator, supervisor and discriminator are all
stacked GRUs (Yoon et al., 2019).  The cells here compose autodiff primitives
from :mod:`repro.nn.tensor`; sequences are short in this library's workloads
(tens of steps) so the per-step Python loop is acceptable.
"""

from __future__ import annotations

import numpy as np

from . import init
from .layers import Module
from .tensor import Tensor

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single gated-recurrent-unit cell.

    Gate layout follows the standard formulation::

        z = sigmoid(x W_z + h U_z + b_z)      (update gate)
        r = sigmoid(x W_r + h U_r + b_r)      (reset gate)
        n = tanh(x W_n + (r * h) U_n + b_n)   (candidate state)
        h' = (1 - z) * n + z * h
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Tensor(init.glorot_uniform((input_size, 3 * hidden_size), rng), requires_grad=True)
        self.w_hh = Tensor(
            np.concatenate([init.orthogonal((hidden_size, hidden_size), rng) for _ in range(3)], axis=1),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(3 * hidden_size), requires_grad=True)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        hs = self.hidden_size
        gates_x = x @ self.w_ih + self.bias
        gates_h = h @ self.w_hh
        z = (gates_x[:, 0:hs] + gates_h[:, 0:hs]).sigmoid()
        r = (gates_x[:, hs : 2 * hs] + gates_h[:, hs : 2 * hs]).sigmoid()
        n = (gates_x[:, 2 * hs : 3 * hs] + r * gates_h[:, 2 * hs : 3 * hs]).tanh()
        one = Tensor(np.ones_like(z.data))
        return (one - z) * n + z * h


class GRU(Module):
    """A (possibly stacked) GRU over ``(N, T, F)`` sequences.

    Returns the full hidden sequence ``(N, T, H)`` of the top layer; the last
    step can be sliced off by the caller when only a summary is needed.
    """

    def __init__(self, input_size: int, hidden_size: int, *, num_layers: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1; got {num_layers}")
        self.hidden_size = hidden_size
        self.cells = [
            GRUCell(input_size if i == 0 else hidden_size, hidden_size, rng=rng)
            for i in range(num_layers)
        ]

    def forward(self, x: Tensor) -> Tensor:
        n, t, _ = x.shape
        layer_input = [x[:, step, :] for step in range(t)]
        for cell in self.cells:
            h = Tensor(np.zeros((n, cell.hidden_size)))
            outputs = []
            for step_input in layer_input:
                h = cell(step_input, h)
                outputs.append(h)
            layer_input = outputs
        return Tensor.stack(layer_input, axis=1)
