"""Process-local, content-keyed artifact cache for expensive computations.

The experiment grid recomputes the same expensive artefacts many times:
the prepared (z-normalised, imputed) panel of a dataset is identical for
every technique, and because the execution engine gives every
``(dataset, run)`` pair one model seed shared across techniques, the
ROCKET kernels and the feature matrices of the *real* train and test
panels are identical across the baseline and all augmented cells.  This
module provides the cache those layers share.

Keys are content-derived (array digests, RNG state digests, hyper-
parameters), so a hit is guaranteed to hold exactly the value the
computation would produce — results are bit-identical whatever the
hit/miss pattern, which is what lets the parallel engine promise
``--jobs N`` equals ``--jobs 1``.

Caching is **off by default** and scoped with :func:`caching`: a cache
hit on a fitted transform legitimately skips the RNG draws that sampling
would have consumed, so the cache must only be enabled where every
transform owns a dedicated generator (as the execution engine arranges).
Each process has its own cache; pool workers enable theirs at startup.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "digest_array",
    "digest_file",
    "digest_rng",
    "feature_cache",
    "caching",
    "caching_enabled",
    "set_caching",
]

#: digest width shared by every artifact key in the library (cache entries,
#: registry object names) — 128 bits keeps collisions out of reach while
#: the hex form stays filename-friendly
_DIGEST_SIZE = 16


def digest_array(X: np.ndarray) -> str:
    """Content digest of an array: dtype, shape and bytes."""
    X = np.ascontiguousarray(X)
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(str(X.dtype).encode())
    h.update(str(X.shape).encode())
    h.update(X.view(np.uint8).data)
    return h.hexdigest()


def digest_file(path, chunk_size: int = 1 << 20) -> str:
    """Content digest of a file, streamed — used by the model registry to
    content-address published artifacts without loading them whole."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    with open(path, "rb") as handle:
        while chunk := handle.read(chunk_size):
            h.update(chunk)
    return h.hexdigest()


def digest_rng(rng: np.random.Generator) -> str:
    """Digest of a generator's exact state (stream position included)."""
    h = hashlib.blake2b(repr(rng.bit_generator.state).encode(),
                        digest_size=_DIGEST_SIZE)
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, exposed for benchmarks and tests."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    current_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _nbytes(value) -> int:
    """Approximate in-memory size of a cached value (arrays dominate)."""
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, (tuple, list)):
        return sum(_nbytes(v) for v in value) + 64
    if hasattr(value, "X") and isinstance(getattr(value, "X"), np.ndarray):
        return value.X.nbytes + 64
    if hasattr(value, "weights") and hasattr(value, "biases"):  # _KernelGroup
        return value.weights.nbytes + value.biases.nbytes + 64
    return 256


class ArtifactCache:
    """Thread-safe LRU cache bounded by approximate payload bytes.

    Values are returned as stored (no copies); numpy arrays are marked
    read-only on insertion so a consumer cannot corrupt a shared entry.
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0; got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[tuple, tuple[object, int]] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: tuple):
        """Return the cached value for *key*, or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def put(self, key: tuple, value) -> None:
        """Insert *value* under *key*, evicting LRU entries over budget."""
        _freeze(value)
        size = _nbytes(value)
        with self._lock:
            if key in self._entries:
                self.stats.current_bytes -= self._entries.pop(key)[1]
            self._entries[key] = (value, size)
            self.stats.current_bytes += size
            while self.stats.current_bytes > self.max_bytes and len(self._entries) > 1:
                _, (_, evicted) = self._entries.popitem(last=False)
                self.stats.current_bytes -= evicted
                self.stats.evictions += 1

    def get_or_create(self, key: tuple, create: Callable[[], object]):
        """Return the cached value, computing and storing it on a miss."""
        value = self.get(key)
        if value is None:
            value = create()
            self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)


def _freeze(value) -> None:
    """Mark arrays inside a cached value read-only (best effort)."""
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _freeze(item)
    elif hasattr(value, "weights") and hasattr(value, "biases"):  # _KernelGroup
        _freeze(value.weights)
        _freeze(value.biases)


_FEATURE_CACHE = ArtifactCache()
_ENABLED = False


def feature_cache() -> ArtifactCache:
    """The process-global cache shared by transforms and the protocol."""
    return _FEATURE_CACHE


def caching_enabled() -> bool:
    """Whether cache-aware components should consult :func:`feature_cache`."""
    return _ENABLED


def set_caching(enabled: bool) -> bool:
    """Set the global caching flag; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def caching(enabled: bool = True):
    """Scope the global caching flag: ``with caching(): run_grid(...)``."""
    previous = set_caching(enabled)
    try:
        yield _FEATURE_CACHE
    finally:
        set_caching(previous)
