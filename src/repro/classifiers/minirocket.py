"""MiniRocket-style deterministic convolutional transform.

A lighter sibling of ROCKET (Dempster et al., 2021) included as an
extension: fixed two-valued kernels of length 9 (weights in {-1, 2} with
exactly three 2s — the 84 canonical kernels), dilations spread
exponentially, and PPV features computed against bias quantiles drawn from
the training data's convolution output.  Deterministic given the seed used
to assign channels, and several times faster than ROCKET at equal feature
counts — used by the ablation benchmarks.
"""

from __future__ import annotations

import hashlib
from itertools import combinations

import numpy as np

from .._rng import ensure_rng
from .._validation import check_panel
from ..backend import ComputePolicy, MiniRocketBank
from ..cache import caching_enabled, digest_array, digest_rng, feature_cache
from .base import RidgeFeatureClassifier
from .ridge import RidgeClassifierCV

__all__ = ["MiniRocketTransform", "MiniRocketClassifier"]

_KERNEL_LENGTH = 9
_N_POSITIONS = 3  # number of +2 weights per kernel -> C(9, 3) = 84 kernels


def _canonical_kernels() -> np.ndarray:
    """The 84 two-valued MiniRocket kernels, shape (84, 9)."""
    rows = []
    for positions in combinations(range(_KERNEL_LENGTH), _N_POSITIONS):
        row = np.full(_KERNEL_LENGTH, -1.0)
        row[list(positions)] = 2.0
        rows.append(row)
    return np.asarray(rows)


class MiniRocketTransform:
    """Deterministic PPV features from the 84 canonical kernels."""

    #: the bias quantiles read panel values, so fit depends on the data —
    #: the protocol must fit on exactly the panel it will train on
    fits_on_shape_only = False

    def __init__(self, num_features: int = 2_000,
                 seed: int | np.random.Generator | None = None):
        if num_features < 84:
            raise ValueError(f"num_features must be >= 84; got {num_features}")
        self.num_features = int(num_features)
        self.seed = seed
        self._policy: ComputePolicy | None = None
        self._bank: MiniRocketBank | None = None

    def fit(self, X: np.ndarray) -> "MiniRocketTransform":
        X = check_panel(X)
        X = np.nan_to_num(X, nan=0.0)
        _, n_channels, length = X.shape
        self._bank = None  # refitting invalidates any policy-built bank
        rng = ensure_rng(self.seed)
        # Unlike ROCKET, the bias quantiles depend on the panel's values, so
        # the fit key must include the data digest.  A hit leaves the
        # generator unadvanced (see RocketTransform.fit).
        fit_key = ("minirocket-fit", self.num_features, digest_rng(rng), digest_array(X))
        self._fit_digest = hashlib.blake2b(repr(fit_key).encode(), digest_size=16).hexdigest()
        cache = feature_cache() if caching_enabled() else None
        if cache is not None:
            cached = cache.get(fit_key)
            if cached is not None:
                self._plan, self._fit_shape = cached
                return self
        kernels = _canonical_kernels()

        max_exponent = max(np.log2((length - 1) / (_KERNEL_LENGTH - 1)), 0.0)
        n_dilations = max(1, min(8, int(max_exponent) + 1))
        dilations = np.unique(
            (2 ** np.linspace(0, max_exponent, n_dilations)).astype(int)
        )
        features_per_combo = max(1, self.num_features // (len(kernels) * len(dilations)))

        self._plan = []
        sample = X[rng.choice(len(X), size=min(len(X), 64), replace=False)]
        for dilation in dilations:
            span = (_KERNEL_LENGTH - 1) * int(dilation)
            if span >= length + 2 * (span // 2):
                continue
            padding = span // 2
            channel_choice = rng.integers(0, n_channels, size=len(kernels))
            responses = self._convolve(sample, kernels, int(dilation), padding, channel_choice)
            quantile_levels = rng.uniform(0.1, 0.9, size=(len(kernels), features_per_combo))
            biases = np.stack([
                np.quantile(responses[:, k, :].ravel(), quantile_levels[k])
                for k in range(len(kernels))
            ])  # (k, features_per_combo)
            self._plan.append((int(dilation), padding, channel_choice, biases))
        self._fit_shape = (n_channels, length)
        if cache is not None:
            cache.put(fit_key, (self._plan, self._fit_shape))
        return self

    def set_inference_policy(self, policy: ComputePolicy | None) -> "MiniRocketTransform":
        """Switch the transform's execution to *policy* (``None`` restores
        the historical float64 path).

        Under a float32 policy the fused one-GEMM bank
        (:class:`~repro.backend.MiniRocketBank`) is built eagerly;
        ``None`` (model too large to unroll, or irregular plan) falls
        back to the grouped op at the policy dtype.
        """
        self._policy = policy
        self._bank = None
        if (policy is not None and hasattr(self, "_plan")
                and policy.np_dtype == np.float32):
            self._bank = MiniRocketBank.build(self._plan, _canonical_kernels(),
                                              self._fit_shape,
                                              dtype=policy.np_dtype)
        return self

    @property
    def compute_policy(self) -> ComputePolicy | None:
        """The active inference policy (``None`` = historical float64)."""
        return getattr(self, "_policy", None)

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "_plan"):
            raise RuntimeError("MiniRocketTransform.transform called before fit")
        X = check_panel(X)
        if X.shape[1:] != self._fit_shape:
            raise ValueError(f"panel shape {X.shape[1:]} differs from fit shape {self._fit_shape}")
        X = np.nan_to_num(X, nan=0.0)

        policy = getattr(self, "_policy", None)
        if policy is not None and (policy.np_dtype != np.float64
                                   or policy.resolved_engine() != "numpy"):
            compute = lambda: self._transform_under(X, policy)  # noqa: E731
            cache_tag = ("minirocket-features", policy.dtype,
                         policy.resolved_engine())
        else:
            def compute() -> np.ndarray:
                kernels = _canonical_kernels()
                parts = []
                for dilation, padding, channel_choice, biases in self._plan:
                    responses = self._convolve(X, kernels, dilation, padding, channel_choice)
                    # PPV against each bias quantile: (n, k, features_per_combo)
                    ppv = (responses[:, :, None, :] > biases[None, :, :, None]).mean(axis=3)
                    parts.append(ppv.reshape(len(X), -1))
                return np.concatenate(parts, axis=1)
            cache_tag = ("minirocket-features",)

        fit_digest = getattr(self, "_fit_digest", None)
        if not caching_enabled() or fit_digest is None:
            return compute()
        key = (*cache_tag, fit_digest, digest_array(X))
        return feature_cache().get_or_create(key, compute)

    def _transform_under(self, X: np.ndarray, policy: ComputePolicy) -> np.ndarray:
        """Policy-dtype transform: numba engine, fused bank, or grouped
        fallback — plan-order feature layout in every case."""
        dtype = policy.np_dtype
        if policy.resolved_engine() == "numba":
            from ..backend.numba_engine import minirocket_entry_ppv

            kernels = _canonical_kernels()
            parts = []
            for dilation, padding, channel_choice, biases in self._plan:
                ppv = minirocket_entry_ppv(X, kernels, channel_choice, biases,
                                           dilation, padding, dtype=dtype)
                parts.append(ppv.reshape(len(X), -1))
            return np.concatenate(parts, axis=1)
        bank = getattr(self, "_bank", None)
        if bank is not None and bank.dtype == dtype:
            return bank.transform(np.asarray(X, dtype=dtype))
        kernels = np.asarray(_canonical_kernels(), dtype=dtype)
        X = np.asarray(X, dtype=dtype)
        parts = []
        for dilation, padding, channel_choice, biases in self._plan:
            responses = self._convolve(X, kernels, dilation, padding, channel_choice)
            thresholds = np.asarray(biases, dtype=dtype)
            ppv = (responses[:, :, None, :]
                   > thresholds[None, :, :, None]).mean(axis=3, dtype=dtype)
            parts.append(ppv.reshape(len(X), -1))
        return np.concatenate(parts, axis=1)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def input_shape(self) -> tuple[int, int] | None:
        """``(n_channels, length)`` the transform was fitted on, or ``None``
        before fit — the shape every future panel must match."""
        shape = getattr(self, "_fit_shape", None)
        return tuple(shape) if shape is not None else None

    @staticmethod
    def _convolve(X: np.ndarray, kernels: np.ndarray, dilation: int, padding: int,
                  channel_choice: np.ndarray) -> np.ndarray:
        n, _, t = X.shape
        if padding:
            X = np.pad(X, ((0, 0), (0, 0), (padding, padding)))
            t = X.shape[2]
        span = (_KERNEL_LENGTH - 1) * dilation + 1
        out_len = t - span + 1
        s_n, s_c, s_t = X.strides
        windows = np.lib.stride_tricks.as_strided(
            X, shape=(n, X.shape[1], _KERNEL_LENGTH, out_len),
            strides=(s_n, s_c, s_t * dilation, s_t), writeable=False,
        )
        picked = windows[:, channel_choice, :, :]  # (n, k, L, out)
        # Contract the kernel-length axis with one batched matmul (kernels
        # as (k, 1, L) row vectors) instead of einsum; see RocketTransform.
        responses = np.matmul(kernels[None, :, None, :], np.ascontiguousarray(picked))
        return responses[:, :, 0, :]


class MiniRocketClassifier(RidgeFeatureClassifier):
    """MiniRocket transform + ridge classifier.

    The scoring surface (``predict`` / ``decision_function`` /
    ``predict_proba``) comes from :class:`RidgeFeatureClassifier`.
    """

    def __init__(self, num_features: int = 2_000, *,
                 alphas: np.ndarray | None = None,
                 seed: int | np.random.Generator | None = None):
        self.transformer = MiniRocketTransform(num_features, seed=seed)
        self.ridge = RidgeClassifierCV(alphas)

    def fit(self, X, y):
        """Fit the PPV feature plan and the ridge head on a labelled panel."""
        X = self._clean(X)
        self._remember_shape(X)
        self.ridge.fit(self.transformer.fit_transform(X), np.asarray(y))
        return self

    def _features(self, X):
        X = self._clean(X)
        return self.transformer.transform(X)
