"""Model persistence: save and load trained classifiers as ``.npz`` files.

Only numpy containers are used (no pickle of arbitrary code), so archives
are portable and safe to load.  Supported models: ROCKET (kernel groups +
ridge solution), MiniRocket (PPV plan + ridge solution), the ridge
classifier alone, and InceptionTime (ensemble state dicts + architecture
hyper-parameters).

Archives are written **uncompressed** (``np.savez``) so that
:func:`load_model` can hand the kernel banks back as memory-mapped views
straight into the file (:func:`repro.backend.open_npz`) — an LRU-evicted
model reloads in microseconds with zero copying, the bytes faulting in
lazily from the page cache.  Older compressed archives still load, just
eagerly.  Every archive records its kernel-bank dtype
(``__repro_bank_dtype__``); loading a float32 bank into a path that
demands float64 fails loudly rather than silently serving upcast
arithmetic that matches neither precision.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..backend import open_npz
from .inception_time import InceptionTimeClassifier
from .minirocket import MiniRocketClassifier
from .ridge import RidgeClassifierCV
from .rocket import RocketClassifier, _KernelGroup

__all__ = ["save_model", "load_model"]

_KIND_KEY = "__repro_kind__"
_BANK_DTYPE_KEY = "__repro_bank_dtype__"


def _npz_path(path) -> Path:
    """*path* with the ``.npz`` suffix ``np.savez_compressed`` writes.

    ``savez`` silently appends ``.npz`` when the suffix is missing, so
    without normalisation ``save_model("m"); load_model("m")`` would save
    to ``m.npz`` yet try to load ``m``.  Both directions go through this.
    """
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def _cast_payload(payload: dict[str, np.ndarray], dtype: np.dtype) -> dict[str, np.ndarray]:
    """Cast every floating-point array in *payload* to *dtype*; integer,
    boolean and string members (group metadata, class labels, the kind
    marker) keep their types."""
    out = {}
    for key, value in payload.items():
        value = np.asarray(value)
        if np.issubdtype(value.dtype, np.floating) and value.dtype != dtype:
            value = value.astype(dtype)
        out[key] = value
    return out


def save_model(model, path, *, dtype: str | None = None) -> Path:
    """Serialise a supported classifier; returns the path actually written
    (``.npz`` is appended when *path* lacks it, matching ``np.savez``).

    *dtype* (``"float32"`` or ``"float64"``) casts the kernel banks and
    ridge solution before writing — a float32 archive halves registry
    bytes and loads straight into the float32 inference path.  The bank
    dtype is always recorded in the archive, so :func:`load_model` can
    refuse a precision mismatch loudly.
    """
    # MiniRocket before ROCKET: both are transform+ridge pairs but are not
    # related by inheritance, so isinstance order is only cosmetic here.
    if isinstance(model, RocketClassifier):
        payload = _rocket_payload(model)
        payload[_KIND_KEY] = np.array("rocket")
    elif isinstance(model, MiniRocketClassifier):
        payload = _minirocket_payload(model)
        payload[_KIND_KEY] = np.array("minirocket")
    elif isinstance(model, RidgeClassifierCV):
        payload = _ridge_payload(model, prefix="")
        payload[_KIND_KEY] = np.array("ridge")
    elif isinstance(model, InceptionTimeClassifier):
        payload = _inception_payload(model)
        payload[_KIND_KEY] = np.array("inceptiontime")
    else:
        raise TypeError(f"unsupported model type: {type(model).__name__}")
    if dtype is not None:
        bank_dtype = np.dtype(dtype)
        if bank_dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"unsupported bank dtype {dtype!r}; "
                             f"expected 'float32' or 'float64'")
        payload = _cast_payload(payload, bank_dtype)
    else:
        bank_dtype = np.dtype(np.float64)
    payload[_BANK_DTYPE_KEY] = np.array(bank_dtype.name)
    target = _npz_path(path)
    # Uncompressed on purpose: stored (not deflated) zip members are what
    # lets load_model hand back zero-copy memory-mapped views.
    np.savez(target, **payload)
    return target


def load_model(path, *, mmap: bool = True, require_dtype: str | None = None):
    """Load a classifier previously stored with :func:`save_model`.

    Accepts the path with or without the ``.npz`` suffix; a file saved as
    ``save_model(model, "m")`` loads back as ``load_model("m")``.

    With *mmap* (the default) array members come back as read-only
    memory-mapped views into the archive — no copy at load time; pass
    ``mmap=False`` to materialise private arrays (e.g. before deleting
    the file).  *require_dtype* pins the precision the caller's compute
    path expects: loading a ``float32`` bank while requiring ``float64``
    raises ``ValueError`` instead of silently upcasting — upcast float32
    arithmetic matches *neither* the float64 reference nor the float32
    parity contract, so it must never serve unnoticed.
    """
    raw = Path(path)
    source = raw if raw.exists() else _npz_path(raw)
    data = open_npz(source, mmap=mmap)
    kind = str(data.pop(_KIND_KEY))
    bank_dtype = str(data.pop(_BANK_DTYPE_KEY, "float64"))
    if require_dtype is not None and np.dtype(require_dtype) != np.dtype(bank_dtype):
        raise ValueError(
            f"model archive {source} stores a {bank_dtype} kernel bank but "
            f"the caller requires {np.dtype(require_dtype).name}; re-save "
            f"the model at the required dtype (save_model(..., "
            f"dtype={np.dtype(require_dtype).name!r})) or run it under a "
            f"matching ComputePolicy"
        )
    if kind == "rocket":
        model = _rocket_restore(data)
    elif kind == "minirocket":
        model = _minirocket_restore(data)
    elif kind == "ridge":
        model = _ridge_restore(data, prefix="")
    elif kind == "inceptiontime":
        model = _inception_restore(data)
    else:
        raise ValueError(f"unknown model kind in archive: {kind!r}")
    model.bank_dtype_ = bank_dtype
    return model


# --------------------------------------------------------------------------- #
# ridge
# --------------------------------------------------------------------------- #


def _ridge_payload(ridge: RidgeClassifierCV, *, prefix: str) -> dict[str, np.ndarray]:
    if not hasattr(ridge, "coef_"):
        raise ValueError("cannot save an unfitted ridge classifier")
    return {
        f"{prefix}alphas": ridge.alphas,
        f"{prefix}normalize": np.array(ridge.normalize),
        f"{prefix}classes": ridge.classes_,
        f"{prefix}mean": ridge._mean,
        f"{prefix}std": ridge._std,
        f"{prefix}target_mean": ridge._target_mean,
        f"{prefix}coef": ridge.coef_,
        f"{prefix}alpha": np.array(ridge.alpha_),
    }


def _ridge_restore(data: dict[str, np.ndarray], *, prefix: str) -> RidgeClassifierCV:
    ridge = RidgeClassifierCV(alphas=data[f"{prefix}alphas"],
                              normalize=bool(data[f"{prefix}normalize"]))
    ridge.classes_ = data[f"{prefix}classes"]
    ridge._mean = data[f"{prefix}mean"]
    ridge._std = data[f"{prefix}std"]
    ridge._target_mean = data[f"{prefix}target_mean"]
    ridge.coef_ = data[f"{prefix}coef"]
    ridge.alpha_ = float(data[f"{prefix}alpha"])
    ridge.best_loo_error_ = float("nan")
    return ridge


# --------------------------------------------------------------------------- #
# rocket
# --------------------------------------------------------------------------- #


def _rocket_payload(model: RocketClassifier) -> dict[str, np.ndarray]:
    transform = model.transformer
    if transform._groups is None:
        raise ValueError("cannot save an unfitted ROCKET model")
    payload = _ridge_payload(model.ridge, prefix="ridge_")
    payload["num_kernels"] = np.array(transform.num_kernels)
    payload["fit_shape"] = np.array(transform._fit_shape)
    payload["n_groups"] = np.array(len(transform._groups))
    for index, group in enumerate(transform._groups):
        payload[f"group{index}_meta"] = np.array([group.length, group.dilation, group.padding])
        payload[f"group{index}_weights"] = group.weights
        payload[f"group{index}_biases"] = group.biases
    return payload


def _rocket_restore(data: dict[str, np.ndarray]) -> RocketClassifier:
    model = RocketClassifier(num_kernels=int(data["num_kernels"]))
    transform = model.transformer
    groups = []
    for index in range(int(data["n_groups"])):
        length, dilation, padding = (int(v) for v in data[f"group{index}_meta"])
        groups.append(_KernelGroup(
            length, dilation, padding,
            data[f"group{index}_weights"], data[f"group{index}_biases"],
        ))
    transform._groups = groups
    transform._fit_shape = tuple(int(v) for v in data["fit_shape"])
    model.ridge = _ridge_restore(data, prefix="ridge_")
    return model


# --------------------------------------------------------------------------- #
# minirocket
# --------------------------------------------------------------------------- #


def _minirocket_payload(model: MiniRocketClassifier) -> dict[str, np.ndarray]:
    transform = model.transformer
    if not hasattr(transform, "_plan"):
        raise ValueError("cannot save an unfitted MiniRocket model")
    payload = _ridge_payload(model.ridge, prefix="ridge_")
    payload["num_features"] = np.array(transform.num_features)
    payload["fit_shape"] = np.array(transform._fit_shape)
    payload["n_plan"] = np.array(len(transform._plan))
    for index, (dilation, padding, channel_choice, biases) in enumerate(transform._plan):
        payload[f"plan{index}_meta"] = np.array([dilation, padding])
        payload[f"plan{index}_channels"] = channel_choice
        payload[f"plan{index}_biases"] = biases
    return payload


def _minirocket_restore(data: dict[str, np.ndarray]) -> MiniRocketClassifier:
    model = MiniRocketClassifier(num_features=int(data["num_features"]))
    transform = model.transformer
    plan = []
    for index in range(int(data["n_plan"])):
        dilation, padding = (int(v) for v in data[f"plan{index}_meta"])
        plan.append((dilation, padding,
                     data[f"plan{index}_channels"], data[f"plan{index}_biases"]))
    transform._plan = plan
    transform._fit_shape = tuple(int(v) for v in data["fit_shape"])
    model.ridge = _ridge_restore(data, prefix="ridge_")
    return model


# --------------------------------------------------------------------------- #
# inceptiontime
# --------------------------------------------------------------------------- #


def _inception_payload(model: InceptionTimeClassifier) -> dict[str, np.ndarray]:
    if not hasattr(model, "networks_"):
        raise ValueError("cannot save an unfitted InceptionTime model")
    config = {
        "n_filters": model.n_filters,
        "depth": model.depth,
        "kernel_sizes": list(model.kernel_sizes),
        "bottleneck": model.bottleneck,
        "ensemble_size": len(model.networks_),
        "batch_size": model.batch_size,
        "in_channels": model.networks_[0].modules_list[0].pool_conv.weight.shape[1],
        "n_classes": model.networks_[0].head.out_features,
        # The network emits dense class indices; classes_ maps them back to
        # the training label values.
        "classes": [int(c) for c in model.classes_],
    }
    payload: dict[str, np.ndarray] = {
        "config_json": np.frombuffer(json.dumps(config).encode(), dtype=np.uint8)
    }
    for index, network in enumerate(model.networks_):
        for key, value in network.state_dict().items():
            payload[f"net{index}::{key}"] = value
    return payload


def _inception_restore(data: dict[str, np.ndarray]) -> InceptionTimeClassifier:
    config = json.loads(bytes(data["config_json"]).decode())
    model = InceptionTimeClassifier(
        n_filters=config["n_filters"], depth=config["depth"],
        kernel_sizes=tuple(config["kernel_sizes"]), bottleneck=config["bottleneck"],
        ensemble_size=config["ensemble_size"], batch_size=config["batch_size"],
        seed=0,
    )
    # Archives written before classes_ was recorded carry dense labels.
    model.classes_ = np.asarray(
        config.get("classes", list(range(config["n_classes"]))), dtype=np.int64)
    model.networks_ = []
    for index in range(config["ensemble_size"]):
        network = model._build(config["in_channels"], config["n_classes"],
                               np.random.default_rng(0))
        state = {
            key.split("::", 1)[1]: value
            for key, value in data.items()
            if key.startswith(f"net{index}::")
        }
        network.load_state_dict(state)
        network.eval()
        model.networks_.append(network)
    return model
