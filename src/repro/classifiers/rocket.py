"""ROCKET: RandOm Convolutional KErnel Transform (Dempster et al., 2020).

The paper's non-deep baseline, used "in the default configuration,
utilizing 10,000 kernels" and coupled with a ridge classifier (Table II).
Kernels follow the original recipe: lengths {7, 9, 11}, N(0, 1) weights
(mean-centred), U(-1, 1) bias, exponential dilations, random padding; each
kernel yields two features, PPV (proportion of positive values) and max.
For multivariate input each kernel carries weights for every channel —
the natural multivariate extension used when the channel count is modest.

The transform groups kernels that share (length, dilation, padding) and
convolves each group through the backend compute core
(:func:`repro.backend.grouped_conv`), which is what makes 10k kernels
tractable in pure numpy.  Under an inference :class:`~repro.backend.ComputePolicy`
(float32 serving) the whole transform instead runs through the fused
one-GEMM :class:`~repro.backend.RocketBank` when the model is small
enough to unroll, falling back to the grouped op at the policy dtype.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from .._rng import ensure_rng
from .._validation import check_panel
from ..backend import ComputePolicy, RocketBank, grouped_conv
from ..cache import caching_enabled, digest_array, digest_rng, feature_cache
from .base import RidgeFeatureClassifier
from .ridge import RidgeClassifierCV

__all__ = ["RocketTransform", "RocketClassifier"]

_KERNEL_LENGTHS = (7, 9, 11)


@dataclass
class _KernelGroup:
    """Kernels sharing (length, dilation, padding), convolved together."""

    length: int
    dilation: int
    padding: int
    weights: np.ndarray  # (n_kernels, n_channels, length)
    biases: np.ndarray  # (n_kernels,)


class RocketTransform:
    """Random convolutional feature extractor.

    Parameters
    ----------
    num_kernels:
        Number of random kernels (the paper uses 10 000; experiments at
        reduced scale may lower this).
    seed:
        Kernel-sampling seed.
    """

    #: fit() reads only the panel's shape, never its values — fitting on
    #: the real training panel equals fitting on an augmented one, which
    #: the protocol's split path relies on
    fits_on_shape_only = True

    def __init__(self, num_kernels: int = 10_000,
                 seed: int | np.random.Generator | None = None):
        if num_kernels < 1:
            raise ValueError(f"num_kernels must be >= 1; got {num_kernels}")
        self.num_kernels = int(num_kernels)
        self.seed = seed
        self._groups: list[_KernelGroup] | None = None
        self._policy: ComputePolicy | None = None
        self._bank: RocketBank | None = None

    @property
    def n_features(self) -> int:
        """Two features (PPV, max) per kernel."""
        return 2 * self.num_kernels

    def fit(self, X: np.ndarray) -> "RocketTransform":
        """Sample kernels for the panel's channel count and length.

        Kernel sampling depends only on the generator state and the panel
        shape, never on the panel's values, so with caching enabled
        (:func:`repro.cache.caching`) a repeat fit restores the previous
        kernels without redrawing them.  A hit leaves the generator
        unadvanced — enable caching only where the transform owns its
        generator, as the experiment engine does.
        """
        X = check_panel(X)
        _, n_channels, length = X.shape
        self._bank = None  # refitting invalidates any policy-built bank
        rng = ensure_rng(self.seed)
        fit_key = ("rocket-fit", self.num_kernels, n_channels, length, digest_rng(rng))
        self._fit_digest = hashlib.blake2b(repr(fit_key).encode(), digest_size=16).hexdigest()
        cache = feature_cache() if caching_enabled() else None
        if cache is not None:
            cached = cache.get(fit_key)
            if cached is not None:
                self._groups = cached
                self._fit_shape = (n_channels, length)
                return self

        lengths = rng.choice(_KERNEL_LENGTHS, size=self.num_kernels)
        raw: dict[tuple[int, int, int], list[tuple[np.ndarray, float]]] = {}
        for kernel_length in lengths:
            kernel_length = int(min(kernel_length, max(2, length)))
            weights = rng.standard_normal((n_channels, kernel_length))
            weights -= weights.mean(axis=1, keepdims=True)
            bias = float(rng.uniform(-1.0, 1.0))
            max_exponent = np.log2((length - 1) / max(kernel_length - 1, 1))
            max_exponent = max(max_exponent, 0.0)
            dilation = int(2 ** rng.uniform(0.0, max_exponent))
            span = (kernel_length - 1) * dilation
            padding = ((span) // 2) if rng.random() < 0.5 else 0
            if length + 2 * padding - span < 1:
                padding = max(padding, (span - length + 1 + 1) // 2)
            raw.setdefault((kernel_length, dilation, padding), []).append((weights, bias))

        self._groups = []
        for (kernel_length, dilation, padding), members in sorted(raw.items()):
            weights = np.stack([w for w, _ in members])
            biases = np.array([b for _, b in members])
            self._groups.append(_KernelGroup(kernel_length, dilation, padding, weights, biases))
        self._fit_shape = (n_channels, length)
        if cache is not None:
            cache.put(fit_key, self._groups)
        return self

    def set_inference_policy(self, policy: ComputePolicy | None) -> "RocketTransform":
        """Switch the transform's execution to *policy* (``None`` restores
        the historical float64 path).

        Under a float32 policy the fused one-GEMM bank
        (:class:`~repro.backend.RocketBank`) is built eagerly — once per
        (model, policy), costing milliseconds at serving sizes; when the
        model is too large to unroll profitably the bank is ``None`` and
        transform falls back to the grouped op at the policy dtype.
        """
        self._policy = policy
        self._bank = None
        if (policy is not None and self._groups is not None
                and policy.np_dtype == np.float32):
            self._bank = RocketBank.build(self._groups, self._fit_shape,
                                          dtype=policy.np_dtype)
        return self

    @property
    def compute_policy(self) -> ComputePolicy | None:
        """The active inference policy (``None`` = historical float64)."""
        return getattr(self, "_policy", None)

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Extract ``(n_series, 2 * num_kernels)`` features (PPV then max)."""
        if self._groups is None:
            raise RuntimeError("RocketTransform.transform called before fit")
        X = check_panel(X)
        if X.shape[1:] != self._fit_shape:
            raise ValueError(f"panel shape {X.shape[1:]} differs from fit shape {self._fit_shape}")
        X = np.nan_to_num(X, nan=0.0)

        policy = getattr(self, "_policy", None)
        if policy is not None and (policy.np_dtype != np.float64
                                   or policy.resolved_engine() != "numpy"):
            compute = lambda: self._transform_under(X, policy)  # noqa: E731
            cache_tag = ("rocket-features", policy.dtype, policy.resolved_engine())
        else:
            def compute() -> np.ndarray:
                ppv_parts, max_parts = [], []
                for group in self._groups:
                    responses = self._convolve_group(X, group)  # (n, k, out_len)
                    ppv_parts.append((responses > 0).mean(axis=2))
                    max_parts.append(responses.max(axis=2))
                return np.concatenate(ppv_parts + max_parts, axis=1)
            cache_tag = ("rocket-features",)

        # Transforms restored by serialization predate the fit digest; they
        # simply bypass the cache.
        fit_digest = getattr(self, "_fit_digest", None)
        if not caching_enabled() or fit_digest is None:
            return compute()
        key = (*cache_tag, fit_digest, digest_array(X))
        return feature_cache().get_or_create(key, compute)

    def _transform_under(self, X: np.ndarray, policy: ComputePolicy) -> np.ndarray:
        """Policy-dtype transform: numba engine, fused bank, or grouped
        fallback — same feature layout (all PPV, then all max) as the
        historical path in every case."""
        dtype = policy.np_dtype
        if policy.resolved_engine() == "numba":
            from ..backend.numba_engine import rocket_group_ppv_max

            ppv_parts, max_parts = [], []
            for group in self._groups:
                ppv, maxima = rocket_group_ppv_max(
                    X, group.weights, group.biases, group.dilation,
                    group.padding, dtype=dtype)
                ppv_parts.append(ppv)
                max_parts.append(maxima)
            return np.concatenate(ppv_parts + max_parts, axis=1)
        bank = getattr(self, "_bank", None)
        if bank is not None and bank.dtype == dtype:
            return bank.transform(np.asarray(X, dtype=dtype))
        ppv_parts, max_parts = [], []
        for group in self._groups:
            responses = grouped_conv(X, group.weights, group.biases,
                                     group.dilation, group.padding, dtype=dtype)
            ppv_parts.append((responses > 0).mean(axis=2, dtype=dtype))
            max_parts.append(responses.max(axis=2))
        return np.concatenate(ppv_parts + max_parts, axis=1)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def input_shape(self) -> tuple[int, int] | None:
        """``(n_channels, length)`` the transform was fitted on, or ``None``
        before fit — the shape every future panel must match."""
        shape = getattr(self, "_fit_shape", None)
        return tuple(shape) if shape is not None else None

    @staticmethod
    def _convolve_group(X: np.ndarray, group: _KernelGroup) -> np.ndarray:
        """Historical float64 group convolution — now a thin delegate to
        the backend op, which reproduces it bit for bit."""
        return grouped_conv(X, group.weights, group.biases, group.dilation,
                            group.padding, dtype=np.float64)


class RocketClassifier(RidgeFeatureClassifier):
    """ROCKET features + ridge classifier: the paper's 'ROCKET + RR' baseline.

    The scoring surface (``predict`` / ``decision_function`` /
    ``predict_proba``) comes from :class:`RidgeFeatureClassifier`.
    """

    def __init__(self, num_kernels: int = 10_000, *,
                 alphas: np.ndarray | None = None,
                 seed: int | np.random.Generator | None = None):
        self.transformer = RocketTransform(num_kernels, seed=seed)
        self.ridge = RidgeClassifierCV(alphas)

    def fit(self, X, y):
        """Fit the random kernels and the ridge head on a labelled panel."""
        X = self._clean(X)
        self._remember_shape(X)
        features = self.transformer.fit_transform(X)
        self.ridge.fit(features, np.asarray(y))
        return self

    def _features(self, X):
        X = self._clean(X)
        return self.transformer.transform(X)
