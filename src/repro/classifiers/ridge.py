"""Ridge classification with efficient leave-one-out cross-validation.

Replaces sklearn's ``RidgeClassifierCV``, which the paper couples with
ROCKET ("motivated by its robustness to high-dimensional data and its
regularization capabilities").  One-vs-rest ridge regression on +/-1
targets; the regularisation strength is selected by generalised (leave-one-
out) cross-validation computed in closed form from one SVD, so trying ten
alphas costs barely more than one fit.
"""

from __future__ import annotations

import numpy as np

from ..backend import (
    ComputePolicy,
    apply_folded_ridge,
    fold_ridge,
    ridge_margins,
)
from .base import softmax

__all__ = ["RidgeClassifierCV"]


class RidgeClassifierCV:
    """One-vs-rest ridge classifier with LOO-CV alpha selection.

    Parameters
    ----------
    alphas:
        Candidate regularisation strengths; the sklearn/ROCKET convention
        ``np.logspace(-3, 3, 10)`` is the default.
    normalize:
        Standardise features before fitting (ROCKET feature vectors are on
        heterogeneous scales, so this is on by default).
    """

    def __init__(self, alphas: np.ndarray | None = None, *, normalize: bool = True):
        self.alphas = np.asarray(alphas if alphas is not None else np.logspace(-3, 3, 10), dtype=float)
        if self.alphas.ndim != 1 or (self.alphas <= 0).any():
            raise ValueError("alphas must be a 1-D array of positive values")
        self.normalize = normalize

    # ------------------------------------------------------------------ #

    def fit(self, features: np.ndarray, y: np.ndarray) -> "RidgeClassifierCV":
        """Fit on a feature matrix ``(n_samples, n_features)``."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D; got ndim={features.ndim}")
        y = np.asarray(y)
        if len(y) != len(features):
            raise ValueError("features and labels disagree in length")
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("need at least two classes")

        if self.normalize:
            self._mean = features.mean(axis=0)
            self._std = features.std(axis=0)
            self._std[self._std == 0] = 1.0
            features = (features - self._mean) / self._std
        else:
            self._mean = np.zeros(features.shape[1])
            self._std = np.ones(features.shape[1])

        targets = np.where(y[:, None] == self.classes_[None, :], 1.0, -1.0)
        self._target_mean = targets.mean(axis=0)
        centered_targets = targets - self._target_mean

        # One spectral decomposition; every alpha's coefficients and LOO
        # errors follow cheaply.  ROCKET feature matrices are wide (n <<
        # n_features), so the left singular basis comes from an eigh of the
        # n x n Gram matrix — two BLAS matmuls plus a small symmetric
        # eigensolve, several times faster than a full SVD of (n, f).  The
        # tall case keeps the SVD.
        n, n_features = features.shape
        if n <= n_features:
            eigvals, U = np.linalg.eigh(features @ features.T)
            s2 = np.clip(eigvals, 0.0, None)
            Vt = None
        else:
            U, s, Vt = np.linalg.svd(features, full_matrices=False)
            s2 = s**2
        UtY = U.T @ centered_targets  # (r, n_classes)

        best_alpha, best_error = None, np.inf
        for alpha in self.alphas:
            # Hat-matrix diagonal: h_ii = sum_j U_ij^2 * s_j^2/(s_j^2+alpha).
            weights = s2 / (s2 + alpha)
            hat_diag = (U**2 * weights[None, :]).sum(axis=1)
            predictions = U @ (weights[:, None] * UtY)
            residuals = centered_targets - predictions
            loo = residuals / np.maximum(1.0 - hat_diag[:, None], 1e-10)
            error = float((loo**2).sum() / n)
            if error < best_error:
                best_error, best_alpha = error, float(alpha)
        self.alpha_ = best_alpha
        self.best_loo_error_ = best_error

        if Vt is None:
            # coef = V diag(s/(s^2+a)) UtY and X^T U = V diag(s), so the
            # coefficients need only X^T and the eigenbasis: the 1/s factors
            # cancel and zero modes contribute nothing.
            self.coef_ = features.T @ (U @ (UtY / (s2 + self.alpha_)[:, None]))
        else:
            shrink = s / (s2 + self.alpha_)
            self.coef_ = (Vt.T * shrink[None, :]) @ UtY  # (n_features, n_classes)
        self._folded = None  # refitting invalidates any policy-folded head
        return self

    def set_inference_policy(self, policy: ComputePolicy | None) -> "RidgeClassifierCV":
        """Switch scoring to *policy* (``None`` restores float64).

        Under a float32 policy the normalisation is folded into the
        coefficients once (:func:`repro.backend.fold_ridge`), so every
        subsequent :meth:`decision_function` is one GEMM and one add in
        single precision.  The fold changes floating-point association —
        margins move within the backend's documented tolerance, labels
        do not (the parity suite pins this).
        """
        self._policy = policy
        self._folded = None
        if (policy is not None and policy.np_dtype == np.float32
                and hasattr(self, "coef_")):
            self._folded = fold_ridge(self._mean, self._std, self.coef_,
                                      self._target_mean, dtype=policy.np_dtype)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Per-class scores ``(n_samples, n_classes)``.

        The float64 path applies normalisation then the coefficients,
        operation-for-operation the historical order; under a float32
        policy (:meth:`set_inference_policy`) the folded head runs
        instead.
        """
        folded = getattr(self, "_folded", None)
        if folded is not None:
            return apply_folded_ridge(features, *folded)
        return ridge_margins(features, self._mean, self._std, self.coef_,
                             self._target_mean)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most-confident class per sample."""
        scores = self.decision_function(features)
        return self.classes_[scores.argmax(axis=1)]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Softmax of the per-class scores: ``(n_samples, n_classes)``.

        A documented shim, not a calibrated posterior: the softmax is
        monotone in the margins, so the row-wise argmax agrees with
        :meth:`predict` exactly, but the magnitudes are a confidence
        ordering rather than empirical frequencies.  Columns follow
        ``classes_`` order.
        """
        return softmax(self.decision_function(features))

    def score(self, features: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled feature matrix."""
        return float((self.predict(features) == np.asarray(y)).mean())
