"""Shapelet-based classification (the bake-off's third family).

Completes the "intervals, shapelets, or word dictionaries" triad of
Sec. IV-A's bake-off reference: a random shapelet transform (Ye & Keogh,
2009; randomised as in Karlsson et al.) — *n_shapelets* subsequences are
sampled from the training series, each series is described by its minimal
z-normalised Euclidean distance to every shapelet, and a ridge classifier
separates the distance profiles.
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from .base import RidgeFeatureClassifier
from .ridge import RidgeClassifierCV

__all__ = ["ShapeletTransformClassifier", "min_shapelet_distance"]


def _znorm(segment: np.ndarray) -> np.ndarray:
    std = segment.std()
    if std < 1e-12:
        return np.zeros_like(segment)
    return (segment - segment.mean()) / std


def min_shapelet_distance(series: np.ndarray, shapelet: np.ndarray) -> float:
    """Minimal z-normalised Euclidean distance over all alignments.

    *series* is 1-D; *shapelet* is 1-D and no longer than the series.
    Distances are length-normalised so shapelets of different lengths are
    comparable features.
    """
    series = np.asarray(series, dtype=float)
    shapelet = np.asarray(shapelet, dtype=float)
    window = shapelet.size
    if window > series.size:
        raise ValueError(f"shapelet ({window}) longer than series ({series.size})")
    target = _znorm(shapelet)
    best = np.inf
    for start in range(series.size - window + 1):
        segment = _znorm(series[start : start + window])
        distance = float(((segment - target) ** 2).sum())
        if distance < best:
            best = distance
    return np.sqrt(best / window)


class ShapeletTransformClassifier(RidgeFeatureClassifier):
    """Random shapelet transform + ridge."""

    def __init__(self, n_shapelets: int = 60, *,
                 length_range: tuple[float, float] = (0.1, 0.4),
                 seed: int | np.random.Generator | None = None):
        if n_shapelets < 1:
            raise ValueError(f"n_shapelets must be >= 1; got {n_shapelets}")
        lo, hi = length_range
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError(f"length_range must satisfy 0 < lo <= hi <= 1; got {length_range}")
        self.n_shapelets = int(n_shapelets)
        self.length_range = (float(lo), float(hi))
        self.seed = seed
        self.ridge = RidgeClassifierCV()

    def _sample_shapelets(self, X: np.ndarray, rng: np.random.Generator) -> None:
        n, m, t = X.shape
        lo = max(2, int(round(self.length_range[0] * t)))
        hi = max(lo, int(round(self.length_range[1] * t)))
        self._shapelets: list[tuple[int, np.ndarray]] = []
        for _ in range(self.n_shapelets):
            series_index = int(rng.integers(0, n))
            channel = int(rng.integers(0, m))
            length = int(rng.integers(lo, hi + 1))
            start = int(rng.integers(0, t - length + 1))
            self._shapelets.append(
                (channel, X[series_index, channel, start : start + length].copy())
            )

    def _transform(self, X: np.ndarray) -> np.ndarray:
        features = np.empty((len(X), len(self._shapelets)))
        for j, (channel, shapelet) in enumerate(self._shapelets):
            for i in range(len(X)):
                features[i, j] = min_shapelet_distance(X[i, channel], shapelet)
        return features

    def fit(self, X, y):
        X = self._clean(X)
        self._remember_shape(X)
        rng = ensure_rng(self.seed)
        self._sample_shapelets(X, rng)
        self.ridge.fit(self._transform(X), np.asarray(y))
        return self

    def _features(self, X):
        if not hasattr(self, "_shapelets"):
            raise RuntimeError("predict called before fit")
        X = self._clean(X)
        self._check_shape(X)
        return self._transform(X)
