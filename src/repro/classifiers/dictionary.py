"""Dictionary-based classification: SAX bag-of-words (BOSS-family-lite).

The paper's related work (Sec. IV-A) surveys the bake-off families —
"intervals, shapelets, or word dictionaries".  This module provides the
dictionary family: series are discretised with SAX (piecewise aggregate
approximation + Gaussian breakpoints, Lin et al. 2007), sliding windows
become words, per-channel word histograms are concatenated, and a ridge
classifier separates the histograms — the same pipeline shape as BOSS with
SAX in place of SFA.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from .base import RidgeFeatureClassifier
from .ridge import RidgeClassifierCV

__all__ = ["paa", "sax_words", "SAXDictionaryClassifier"]


def paa(series: np.ndarray, n_segments: int) -> np.ndarray:
    """Piecewise aggregate approximation of a 1-D series."""
    series = np.asarray(series, dtype=float)
    t = series.size
    n_segments = max(1, min(n_segments, t))
    edges = np.linspace(0, t, n_segments + 1).astype(int)
    return np.array([series[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])


def _breakpoints(alphabet_size: int) -> np.ndarray:
    """Gaussian equi-probable breakpoints for the SAX alphabet."""
    return norm.ppf(np.linspace(0, 1, alphabet_size + 1)[1:-1])


def sax_words(series: np.ndarray, *, window: int, word_length: int,
              alphabet_size: int) -> list[tuple[int, ...]]:
    """Sliding-window SAX words of a 1-D series.

    Each window is z-normalised, PAA-reduced to *word_length* segments and
    quantised against Gaussian breakpoints; the word is the tuple of symbol
    indices.  Flat windows (zero variance) map to the all-middle word.
    """
    series = np.asarray(series, dtype=float)
    if window > series.size:
        window = series.size
    breakpoints = _breakpoints(alphabet_size)
    words = []
    for start in range(series.size - window + 1):
        segment = series[start : start + window]
        std = segment.std()
        normalized = (segment - segment.mean()) / std if std > 1e-12 else np.zeros(window)
        reduced = paa(normalized, word_length)
        words.append(tuple(int(np.searchsorted(breakpoints, v)) for v in reduced))
    return words


class SAXDictionaryClassifier(RidgeFeatureClassifier):
    """Bag-of-SAX-words + ridge, per channel.

    Parameters follow the usual BOSS-ish ranges: *window* defaults to a
    quarter of the series, *word_length* 4 symbols, *alphabet_size* 4.
    Numerosity reduction (collapsing runs of identical words) is applied as
    in BOSS to avoid over-counting stable regions.
    """

    def __init__(self, *, window: int | None = None, word_length: int = 4,
                 alphabet_size: int = 4, numerosity_reduction: bool = True,
                 seed: int | np.random.Generator | None = None):
        if word_length < 1 or alphabet_size < 2:
            raise ValueError("need word_length >= 1 and alphabet_size >= 2")
        self.window = window
        self.word_length = int(word_length)
        self.alphabet_size = int(alphabet_size)
        self.numerosity_reduction = numerosity_reduction
        self.seed = seed
        self.ridge = RidgeClassifierCV()

    def _series_words(self, channel_series: np.ndarray, window: int):
        words = sax_words(channel_series, window=window,
                          word_length=self.word_length,
                          alphabet_size=self.alphabet_size)
        if self.numerosity_reduction:
            words = [w for i, w in enumerate(words) if i == 0 or w != words[i - 1]]
        return words

    def _histograms(self, X: np.ndarray) -> np.ndarray:
        n, m, t = X.shape
        window = self.window or max(3, t // 4)
        rows = []
        for i in range(n):
            features = np.zeros(m * len(self._vocabulary))
            for channel in range(m):
                offset = channel * len(self._vocabulary)
                for word in self._series_words(X[i, channel], window):
                    index = self._vocabulary.get(word)
                    if index is not None:
                        features[offset + index] += 1.0
            total = features.sum()
            rows.append(features / total if total else features)
        return np.asarray(rows)

    def fit(self, X, y):
        X = self._clean(X)
        self._remember_shape(X)
        y = np.asarray(y)
        window = self.window or max(3, X.shape[2] // 4)
        # Build the vocabulary from the training data only.
        seen: dict[tuple[int, ...], int] = {}
        for i in range(X.shape[0]):
            for channel in range(X.shape[1]):
                for word in self._series_words(X[i, channel], window):
                    if word not in seen:
                        seen[word] = len(seen)
        if not seen:
            raise ValueError("no SAX words extracted; series too short?")
        self._vocabulary = seen
        self.ridge.fit(self._histograms(X), y)
        return self

    def _features(self, X):
        if not hasattr(self, "_vocabulary"):
            raise RuntimeError("predict called before fit")
        X = self._clean(X)
        self._check_shape(X)
        return self._histograms(X)
