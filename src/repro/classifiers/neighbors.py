"""Nearest-neighbour baselines with Euclidean and DTW distances.

1-NN with DTW is the historical reference baseline in time-series
classification (Bagnall et al., 2017's "bake off"); it is used here by
tests, by the range technique's margin estimates, and as a sanity baseline
in the ablation benchmarks.  The DTW implementation supports a Sakoe-Chiba
band and multivariate (dependent-warping) alignment.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_panel, check_panel_labels
from .base import Classifier

__all__ = ["dtw_distance", "KNeighborsTimeSeriesClassifier"]


def dtw_distance(a: np.ndarray, b: np.ndarray, *, window: int | None = None) -> float:
    """Dependent multivariate DTW distance between two ``(M, T)`` series.

    Uses squared Euclidean local costs over the channel axis and an optional
    Sakoe-Chiba *window* (in steps).  Returns the square root of the optimal
    alignment cost, so ``window=0`` coincides with the Euclidean distance on
    equal-length series.
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if a.shape[0] != b.shape[0]:
        raise ValueError(f"channel counts differ: {a.shape[0]} vs {b.shape[0]}")
    ta, tb = a.shape[1], b.shape[1]
    if window is None:
        window = max(ta, tb)
    window = max(window, abs(ta - tb))
    cost = np.full((ta + 1, tb + 1), np.inf)
    cost[0, 0] = 0.0
    for i in range(1, ta + 1):
        lo = max(1, i - window)
        hi = min(tb, i + window)
        diffs = b[:, lo - 1 : hi] - a[:, i - 1 : i]
        local = (diffs**2).sum(axis=0)
        for offset, j in enumerate(range(lo, hi + 1)):
            cost[i, j] = local[offset] + min(
                cost[i - 1, j], cost[i, j - 1], cost[i - 1, j - 1]
            )
    return float(np.sqrt(cost[ta, tb]))


class KNeighborsTimeSeriesClassifier(Classifier):
    """k-NN over panels with Euclidean or DTW distance."""

    def __init__(self, n_neighbors: int = 1, *, metric: str = "euclidean",
                 window: int | None = None):
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1; got {n_neighbors}")
        if metric not in ("euclidean", "dtw"):
            raise ValueError(f"metric must be 'euclidean' or 'dtw'; got {metric!r}")
        self.n_neighbors = int(n_neighbors)
        self.metric = metric
        self.window = window

    def fit(self, X, y):
        """Memorise the labelled training panel (lazy learner)."""
        X, y = check_panel_labels(self._clean(X), y)
        self._remember_shape(X)
        self._X = X
        self._y = y
        self.classes_ = np.unique(y)
        #: dense class indices aligned with classes_, for vote counting
        self._y_index = np.searchsorted(self.classes_, y)
        return self

    def _votes(self, X) -> np.ndarray:
        """Neighbour vote counts ``(n_series, n_classes)`` in ``classes_``
        order.

        Ties between classes resolve to the lowest class value, both here
        (argmax returns the first maximum) and in the pre-proba
        ``np.bincount(...).argmax()`` implementation, so ``predict`` is
        bit-compatible with the historical behaviour.
        """
        if not hasattr(self, "_X"):
            raise RuntimeError("predict called before fit")
        X = self._clean(X)
        # DTW aligns series of any length; Euclidean needs the fit length.
        self._check_shape(X, variable_length=self.metric == "dtw")
        k = min(self.n_neighbors, len(self._X))
        if self.metric == "euclidean":
            train_flat = self._X.reshape(len(self._X), -1)
            test_flat = X.reshape(len(X), -1)
            d2 = (
                (test_flat**2).sum(axis=1)[:, None]
                - 2.0 * test_flat @ train_flat.T
                + (train_flat**2).sum(axis=1)[None, :]
            )
            nearest = np.argsort(d2, axis=1)[:, :k]
        else:
            rows = []
            for series in X:
                distances = np.array([
                    dtw_distance(series, train, window=self.window) for train in self._X
                ])
                rows.append(np.argsort(distances)[:k])
            nearest = np.stack(rows)
        votes = np.zeros((len(X), len(self.classes_)))
        for i, row in enumerate(nearest):
            votes[i] = np.bincount(self._y_index[row],
                                   minlength=len(self.classes_))
        return votes

    def predict(self, X):
        """Majority label among the k nearest training series."""
        votes = self._votes(X)  # first: raises RuntimeError before fit
        return self.classes_[votes.argmax(axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        """Neighbour vote fractions ``(n_series, n_classes)``.

        Columns follow ``classes_`` order and each row sums to one (the k
        votes are split among the classes).  The row-wise argmax agrees
        with :meth:`predict` exactly, including tie-breaking.  With the
        default ``n_neighbors=1`` the rows are one-hot — coarse but
        honest: 1-NN has no graded confidence to report.
        """
        votes = self._votes(X)
        return votes / votes.sum(axis=1, keepdims=True)
