"""InceptionTime (Ismail Fawaz et al., 2020) on the numpy NN substrate.

The paper's deep baseline.  Architecture per the original: a stack of
Inception modules — bottleneck 1x1 convolution, three parallel convolutions
with geometrically-spaced kernel sizes, a maxpool+1x1 branch, concatenation,
batch norm, ReLU — with residual shortcuts every ``residual_every`` modules,
global average pooling and a linear head; the published model ensembles
five networks with different initialisations and averages their softmax
outputs.

Training follows Sec. IV-D: stratified 2:1 train/validation split where the
validation part contains only original samples, up to *max_epochs* epochs
with early stopping (*patience*), best-validation-accuracy model restore,
and a cyclical learning-rate range test (Smith, 2017) whose valley point
sets the learning rate.  Augmented samples are added to the training part
only, via ``fit(..., X_extra=, y_extra=)``.

Paper-scale defaults (depth 6, 32 filters, kernels 39/19/9, ensemble 5,
200 epochs) are CPU-expensive; experiments pass reduced sizes.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .._rng import ensure_rng
from .._validation import check_panel_labels
from ..data.splits import train_val_split
from .base import Classifier

__all__ = ["InceptionModule", "InceptionNetwork", "InceptionTimeClassifier"]


class InceptionModule(nn.Module):
    """One Inception module: bottleneck, multi-scale convs, maxpool branch."""

    def __init__(self, in_channels: int, n_filters: int,
                 kernel_sizes: tuple[int, ...], bottleneck: int,
                 rng: np.random.Generator):
        super().__init__()
        self.use_bottleneck = in_channels > 1 and bottleneck > 0
        conv_in = bottleneck if self.use_bottleneck else in_channels
        if self.use_bottleneck:
            self.bottleneck = nn.Conv1d(in_channels, bottleneck, 1, bias=False, rng=rng)
        self.convs = [
            nn.Conv1d(conv_in, n_filters, k, padding=k // 2, bias=False, rng=rng)
            for k in kernel_sizes
        ]
        self.pool = nn.MaxPool1d(3, stride=1, padding=1)
        self.pool_conv = nn.Conv1d(in_channels, n_filters, 1, bias=False, rng=rng)
        out_channels = n_filters * (len(kernel_sizes) + 1)
        self.bn = nn.BatchNorm1d(out_channels)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        trunk = self.bottleneck(x) if self.use_bottleneck else x
        branches = [conv(trunk) for conv in self.convs]
        branches.append(self.pool_conv(self.pool(x)))
        length = min(branch.shape[2] for branch in branches)
        branches = [b if b.shape[2] == length else b[:, :, :length] for b in branches]
        return self.bn(nn.Tensor.concatenate(branches, axis=1)).relu()


class _Shortcut(nn.Module):
    """Residual projection (1x1 conv + BN) between inception blocks."""

    def __init__(self, in_channels: int, out_channels: int, rng: np.random.Generator):
        super().__init__()
        self.conv = nn.Conv1d(in_channels, out_channels, 1, bias=False, rng=rng)
        self.bn = nn.BatchNorm1d(out_channels)

    def forward(self, residual: nn.Tensor, x: nn.Tensor) -> nn.Tensor:
        projected = self.bn(self.conv(residual))
        length = min(projected.shape[2], x.shape[2])
        return (projected[:, :, :length] + x[:, :, :length]).relu()


class InceptionNetwork(nn.Module):
    """A single InceptionTime network (one ensemble member)."""

    def __init__(self, in_channels: int, n_classes: int, *,
                 n_filters: int = 32, depth: int = 6,
                 kernel_sizes: tuple[int, ...] = (39, 19, 9),
                 bottleneck: int = 32, residual_every: int = 3,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if depth < 1:
            raise ValueError(f"depth must be >= 1; got {depth}")
        rng = rng or np.random.default_rng()
        self.residual_every = residual_every
        width = n_filters * (len(kernel_sizes) + 1)
        self.modules_list = []
        self.shortcuts = []
        channels = in_channels
        shortcut_in = in_channels
        for index in range(depth):
            self.modules_list.append(
                InceptionModule(channels, n_filters, kernel_sizes, bottleneck, rng)
            )
            channels = width
            if residual_every and (index + 1) % residual_every == 0:
                self.shortcuts.append(_Shortcut(shortcut_in, width, rng))
                shortcut_in = width
        self.head = nn.Linear(width, n_classes, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        residual = x
        shortcut_index = 0
        for index, module in enumerate(self.modules_list):
            x = module(x)
            if self.residual_every and (index + 1) % self.residual_every == 0:
                x = self.shortcuts[shortcut_index](residual, x)
                residual = x
                shortcut_index += 1
        pooled = nn.functional.global_avg_pool1d(x)
        return self.head(pooled)


class InceptionTimeClassifier(Classifier):
    """Ensemble of InceptionNetworks trained with the paper's protocol."""

    def __init__(self, *, n_filters: int = 32, depth: int = 6,
                 kernel_sizes: tuple[int, ...] = (39, 19, 9),
                 bottleneck: int = 32, ensemble_size: int = 5,
                 max_epochs: int = 200, patience: int = 30,
                 batch_size: int = 64, lr: float | None = None,
                 use_lr_finder: bool = True,
                 seed: int | np.random.Generator | None = None):
        self.n_filters = n_filters
        self.depth = depth
        self.kernel_sizes = tuple(kernel_sizes)
        self.bottleneck = bottleneck
        self.ensemble_size = ensemble_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.batch_size = batch_size
        self.lr = lr
        self.use_lr_finder = use_lr_finder and lr is None
        self.seed = seed

    # ------------------------------------------------------------------ #

    def fit(self, X, y, *, X_extra=None, y_extra=None):
        """Train the ensemble.

        *X_extra*/*y_extra* are augmented samples, injected into the
        training part only — the validation set stays original and
        stratified, per Sec. IV-D.
        """
        X, y = check_panel_labels(self._clean(X), y)
        self._remember_shape(X)
        rng = ensure_rng(self.seed)
        # The ensemble is trained on dense class indices; arbitrary label
        # values map through classes_ (consumers like the model registry
        # read the label map the same way as for the ridge-backed
        # families).  For dense 0..C-1 labels this is the identity.
        self.classes_ = np.unique(y)
        y = np.searchsorted(self.classes_, y)
        n_classes = len(self.classes_)

        X_tr, y_tr, X_val, y_val = train_val_split(X, y, val_fraction=1.0 / 3.0, seed=rng)
        if X_extra is not None and len(X_extra):
            X_extra = self._clean(X_extra)
            X_tr = np.concatenate([X_tr, X_extra], axis=0)
            y_extra = np.searchsorted(self.classes_, np.asarray(y_extra))
            y_tr = np.concatenate([y_tr, y_extra.astype(np.int64)])
        if len(X_val) == 0:  # tiny datasets: validate on train
            X_val, y_val = X_tr, y_tr

        lr = self.lr or 1e-3
        if self.use_lr_finder:
            lr = self._find_lr(X_tr, y_tr, n_classes, rng)

        self.networks_ = []
        self.histories_ = []
        for _ in range(self.ensemble_size):
            network = self._build(X.shape[1], n_classes, rng)
            trainer = nn.Trainer(
                network, lr=lr, max_epochs=self.max_epochs, patience=self.patience,
                batch_size=self.batch_size, seed=rng,
            )
            history = trainer.fit(X_tr, y_tr, X_val, y_val)
            self.networks_.append(network)
            self.histories_.append(history)
        return self

    def _build(self, in_channels: int, n_classes: int,
               rng: np.random.Generator) -> InceptionNetwork:
        return InceptionNetwork(
            in_channels, n_classes, n_filters=self.n_filters, depth=self.depth,
            kernel_sizes=self.kernel_sizes, bottleneck=self.bottleneck, rng=rng,
        )

    def _find_lr(self, X: np.ndarray, y: np.ndarray, n_classes: int,
                 rng: np.random.Generator) -> float:
        """Cyclical LR range test on a throwaway network (Sec. IV-D)."""
        probe = self._build(X.shape[1], n_classes, rng)
        optimizer = nn.Adam(probe.parameters(), lr=1e-5)

        def loss_at_lr(lr: float) -> float:
            optimizer.lr = lr
            batch = rng.integers(0, len(X), size=min(self.batch_size, len(X)))
            optimizer.zero_grad()
            loss = nn.cross_entropy(probe(nn.Tensor(X[batch])), y[batch])
            loss.backward()
            nn.clip_grad_norm(optimizer.params, 10.0)
            optimizer.step()
            return loss.item()

        lrs, losses = nn.lr_range_test(loss_at_lr, min_lr=1e-4, max_lr=0.3, num_steps=15)
        try:
            return float(np.clip(nn.suggest_valley_lr(lrs, losses), 1e-4, 0.05))
        except ValueError:
            return 1e-3

    # ------------------------------------------------------------------ #

    def predict_proba(self, X) -> np.ndarray:
        """Ensemble-averaged softmax probabilities, columns in ``classes_``
        order."""
        if not hasattr(self, "networks_"):
            raise RuntimeError("predict called before fit")
        X = self._clean(X)
        self._check_shape(X)
        total = None
        with nn.no_grad():
            for network in self.networks_:
                network.eval()
                logits_parts = []
                for start in range(0, len(X), self.batch_size):
                    batch = nn.Tensor(X[start : start + self.batch_size])
                    logits_parts.append(nn.functional.softmax(network(batch), axis=1).data)
                probs = np.concatenate(logits_parts, axis=0)
                total = probs if total is None else total + probs
        return total / len(self.networks_)

    def predict(self, X) -> np.ndarray:
        probs = self.predict_proba(X)  # first: raises cleanly before fit
        return self.classes_[probs.argmax(axis=1)]
