"""Classifier protocol shared by ROCKET, InceptionTime and the baselines.

Every family honours one input contract, enforced here so the
registry-wide sweep (``tests/test_cls_contract.py``) can assert it
uniformly:

* panels are validated with :func:`~repro._validation.check_panel`
  (shape ``(N, M, T)``, 2-D univariate promoted) — wrong-rank input is a
  ``ValueError``;
* non-finite values (NaN/Inf) are **rejected**, never silently
  zero-filled — the protocol imputes before fitting, and a silently
  patched panel would hide a broken upstream pipeline;
* the fit-time panel shape is remembered, and predict refuses a panel
  whose channel count (or, for fixed-length families, length) disagrees
  with it — mismatches fail with a clear ``ValueError`` instead of an
  index error or, worse, silently wrong features.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._validation import check_panel, check_panel_labels

__all__ = ["Classifier", "accuracy_score"]


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot score empty label arrays")
    return float((y_true == y_pred).mean())


class Classifier(ABC):
    """fit/predict interface over ``(N, M, T)`` panels with integer labels."""

    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on a labelled panel; returns self."""

    @abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict integer labels for a panel."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled panel."""
        X, y = check_panel_labels(X, y)
        return accuracy_score(y, self.predict(X))

    @staticmethod
    def _clean(X: np.ndarray, *, name: str = "X") -> np.ndarray:
        """Validate a panel and reject non-finite values.

        Classifiers need dense, finite input; a NaN/Inf panel means an
        upstream step (imputation, augmentation) was skipped or broke,
        so it is refused rather than silently zero-filled.
        """
        X = check_panel(X, name=name)
        if not np.isfinite(X).all():
            raise ValueError(
                f"{name} contains non-finite values (NaN/Inf); impute or "
                f"clean the panel before fit/predict"
            )
        return X

    @property
    def input_shape(self) -> tuple[int, int] | None:
        """``(n_channels, length)`` seen at fit, or ``None`` before fit."""
        shape = getattr(self, "_input_shape_", None)
        return tuple(shape) if shape is not None else None

    def _remember_shape(self, X: np.ndarray) -> None:
        """Record the fit panel's per-series shape for predict-time checks."""
        self._input_shape_ = tuple(X.shape[1:])

    def _check_shape(self, X: np.ndarray, *, variable_length: bool = False) -> None:
        """Refuse a predict panel that disagrees with the fit shape.

        *variable_length* families (elastic distances like DTW) accept any
        series length but still require the fit-time channel count.
        """
        expected = self.input_shape
        if expected is None:
            return
        if X.shape[1] != expected[0]:
            raise ValueError(
                f"panel has {X.shape[1]} channels but the model was fitted "
                f"on {expected[0]}"
            )
        if not variable_length and X.shape[2] != expected[1]:
            raise ValueError(
                f"panel length {X.shape[2]} differs from the fitted length "
                f"{expected[1]}"
            )
