"""Classifier protocol shared by ROCKET, InceptionTime and the baselines."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._validation import check_panel, check_panel_labels

__all__ = ["Classifier", "accuracy_score"]


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot score empty label arrays")
    return float((y_true == y_pred).mean())


class Classifier(ABC):
    """fit/predict interface over ``(N, M, T)`` panels with integer labels."""

    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on a labelled panel; returns self."""

    @abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict integer labels for a panel."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled panel."""
        X, y = check_panel_labels(X, y)
        return accuracy_score(y, self.predict(X))

    @staticmethod
    def _clean(X: np.ndarray) -> np.ndarray:
        """Validate and zero-fill NaNs (classifiers need dense input)."""
        X = check_panel(X)
        if np.isnan(X).any():
            X = np.nan_to_num(X, nan=0.0)
        return X
