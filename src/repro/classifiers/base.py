"""Classifier protocol shared by ROCKET, InceptionTime and the baselines.

Every family honours one input contract, enforced here so the
registry-wide sweep (``tests/test_cls_contract.py``) can assert it
uniformly:

* panels are validated with :func:`~repro._validation.check_panel`
  (shape ``(N, M, T)``, 2-D univariate promoted) — wrong-rank input is a
  ``ValueError``;
* non-finite values (NaN/Inf) are **rejected**, never silently
  zero-filled — the protocol imputes before fitting, and a silently
  patched panel would hide a broken upstream pipeline;
* the fit-time panel shape is remembered, and predict refuses a panel
  whose channel count (or, for fixed-length families, length) disagrees
  with it — mismatches fail with a clear ``ValueError`` instead of an
  index error or, worse, silently wrong features;
* every family serves **probabilities**: ``predict_proba`` returns a
  ``(n_series, n_classes)`` row-stochastic matrix whose columns follow
  ``classes_`` (the sorted training label values) and whose row-wise
  argmax agrees with ``predict`` exactly — the serving layer derives
  labels from coalesced probability batches relying on that agreement.
  Families without a native probabilistic output use a documented
  softmax shim over their margin scores (:class:`RidgeFeatureClassifier`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._validation import check_panel, check_panel_labels
from ..backend import ComputePolicy
from ..backend import softmax as _backend_softmax

__all__ = ["Classifier", "RidgeFeatureClassifier", "accuracy_score", "softmax"]


def softmax(scores: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a ``(n_samples, n_classes)`` score matrix.

    Numerically stable (the row maximum is subtracted before
    exponentiation), and strictly order-preserving per row — the argmax
    of the output equals the argmax of the input, which is what lets
    ``predict`` and ``predict_proba`` agree bit-for-bit.  Delegates to
    the backend op (:func:`repro.backend.softmax`) at float64, the
    historical behaviour.
    """
    return _backend_softmax(scores)


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot score empty label arrays")
    return float((y_true == y_pred).mean())


class Classifier(ABC):
    """fit/predict interface over ``(N, M, T)`` panels with integer labels."""

    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on a labelled panel; returns self."""

    @abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict integer labels for a panel."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled panel."""
        X, y = check_panel_labels(X, y)
        return accuracy_score(y, self.predict(X))

    @staticmethod
    def _clean(X: np.ndarray, *, name: str = "X") -> np.ndarray:
        """Validate a panel and reject non-finite values.

        Classifiers need dense, finite input; a NaN/Inf panel means an
        upstream step (imputation, augmentation) was skipped or broke,
        so it is refused rather than silently zero-filled.
        """
        X = check_panel(X, name=name)
        if not np.isfinite(X).all():
            raise ValueError(
                f"{name} contains non-finite values (NaN/Inf); impute or "
                f"clean the panel before fit/predict"
            )
        return X

    def set_inference_policy(self, policy: "ComputePolicy | None") -> "Classifier":
        """Record the compute policy this model should serve under.

        The base implementation only records it — a family that has not
        opted into policy-aware math keeps computing exactly as before,
        so applying a policy can never change its answers.  Families with
        a fast path (the ridge-backed ones) override this to actually
        switch execution.
        """
        self._compute_policy = policy
        return self

    @property
    def compute_policy(self) -> "ComputePolicy | None":
        """The recorded inference policy (``None`` = fit-time default)."""
        return getattr(self, "_compute_policy", None)

    @property
    def input_shape(self) -> tuple[int, int] | None:
        """``(n_channels, length)`` seen at fit, or ``None`` before fit."""
        shape = getattr(self, "_input_shape_", None)
        return tuple(shape) if shape is not None else None

    def _remember_shape(self, X: np.ndarray) -> None:
        """Record the fit panel's per-series shape for predict-time checks."""
        self._input_shape_ = tuple(X.shape[1:])

    def _check_shape(self, X: np.ndarray, *, variable_length: bool = False) -> None:
        """Refuse a predict panel that disagrees with the fit shape.

        *variable_length* families (elastic distances like DTW) accept any
        series length but still require the fit-time channel count.
        """
        expected = self.input_shape
        if expected is None:
            return
        if X.shape[1] != expected[0]:
            raise ValueError(
                f"panel has {X.shape[1]} channels but the model was fitted "
                f"on {expected[0]}"
            )
        if not variable_length and X.shape[2] != expected[1]:
            raise ValueError(
                f"panel length {X.shape[2]} differs from the fitted length "
                f"{expected[1]}"
            )


class RidgeFeatureClassifier(Classifier):
    """Shared scoring head for feature-matrix + ridge classifier families.

    ROCKET, MiniRocket, the SAX dictionary, the interval and the shapelet
    families all reduce a panel to a feature matrix and hand it to a
    :class:`~repro.classifiers.ridge.RidgeClassifierCV`.  Subclasses
    implement only :meth:`_features` (validation + feature extraction);
    ``predict``, ``decision_function`` and ``predict_proba`` are derived
    here so every ridge-backed family exposes one identical confidence
    surface.

    The probabilities are a **softmax shim over the ridge margins** —
    monotone in the per-class scores, so ``predict_proba(...).argmax``
    always agrees with ``predict``, but not calibrated by a held-out set;
    treat them as confidence ordering, not frequencies.
    """

    #: set by every subclass __init__; annotated for introspection
    ridge: "object"

    def set_inference_policy(self, policy: "ComputePolicy | None") -> "RidgeFeatureClassifier":
        """Switch the whole scoring pipeline to *policy*.

        Propagates to the feature transformer (fused float32 banks where
        supported) and to the ridge head (folded single-precision
        coefficients), so transform and scoring run under one policy —
        mixed-dtype pipelines would pay cast overhead for no accuracy.
        """
        self._compute_policy = policy
        transformer = getattr(self, "transformer", None)
        if transformer is not None and hasattr(transformer, "set_inference_policy"):
            transformer.set_inference_policy(policy)
        if hasattr(self.ridge, "set_inference_policy"):
            self.ridge.set_inference_policy(policy)
        return self

    def _features(self, X: np.ndarray) -> np.ndarray:
        """Validate *X* and return its ``(n_series, n_features)`` matrix.

        Raises
        ------
        RuntimeError
            When called before ``fit``.
        ValueError
            For non-finite values or a panel shape that disagrees with
            the fit-time shape.
        """
        raise NotImplementedError

    @property
    def classes_(self) -> np.ndarray | None:
        """Sorted training label values, or ``None`` before fit."""
        return getattr(self.ridge, "classes_", None)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most-confident class per series (argmax of the ridge margins)."""
        return self.ridge.predict(self._features(X))

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Per-class ridge margin scores ``(n_series, n_classes)``.

        Columns follow ``classes_`` order; higher means more confident.
        """
        return self.ridge.decision_function(self._features(X))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax of the ridge margins: ``(n_series, n_classes)``.

        Row-stochastic, columns in ``classes_`` order, and row-wise
        argmax identical to :meth:`predict` (see the class docstring for
        the calibration caveat).
        """
        return softmax(self.decision_function(X))
