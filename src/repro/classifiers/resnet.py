"""ResNet and FCN baselines (Wang, Yan & Oates, 2017).

Section IV-A cites Wang et al.'s residual networks as the best deep models
of the pre-InceptionTime era ("models with residual connections ... Resnet
became a basis for InceptionTime").  Both reference architectures are
provided as additional baselines for the ablation benchmarks:

* **FCN** — three Conv-BN-ReLU blocks (kernel sizes 8/5/3, filters
  128/256/128 at paper scale) followed by global average pooling;
* **ResNet** — three FCN-style residual blocks with identity/projection
  shortcuts, the direct ancestor of InceptionTime's residual structure.

Training uses the same protocol object as InceptionTime (early stopping on
a stratified validation split).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .._rng import ensure_rng
from .._validation import check_panel_labels
from ..data.splits import train_val_split
from .base import Classifier, softmax

__all__ = ["FCNNetwork", "ResNetNetwork", "ConvBlock", "ResNetClassifier", "FCNClassifier"]


class ConvBlock(nn.Module):
    """Conv1d -> BatchNorm -> ReLU, the FCN building block."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, *, activate: bool = True):
        super().__init__()
        self.conv = nn.Conv1d(in_channels, out_channels, kernel_size,
                              padding=kernel_size // 2, bias=False, rng=rng)
        self.bn = nn.BatchNorm1d(out_channels)
        self.activate = activate

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.bn(self.conv(x))
        return out.relu() if self.activate else out


class FCNNetwork(nn.Module):
    """Fully convolutional network: three blocks + GAP + linear head."""

    def __init__(self, in_channels: int, n_classes: int, *,
                 filters: tuple[int, int, int] = (128, 256, 128),
                 kernel_sizes: tuple[int, int, int] = (8, 5, 3),
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        channels = (in_channels,) + tuple(filters)
        self.blocks = [
            ConvBlock(channels[i], channels[i + 1], kernel_sizes[i], rng)
            for i in range(3)
        ]
        self.head = nn.Linear(filters[-1], n_classes, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        for block in self.blocks:
            x = block(x)
        return self.head(nn.functional.global_avg_pool1d(x))


class _ResidualBlock(nn.Module):
    """Three conv blocks with a shortcut connection."""

    def __init__(self, in_channels: int, filters: int,
                 kernel_sizes: tuple[int, int, int], rng: np.random.Generator):
        super().__init__()
        self.block1 = ConvBlock(in_channels, filters, kernel_sizes[0], rng)
        self.block2 = ConvBlock(filters, filters, kernel_sizes[1], rng)
        self.block3 = ConvBlock(filters, filters, kernel_sizes[2], rng, activate=False)
        self.project = in_channels != filters
        if self.project:
            self.shortcut = ConvBlock(in_channels, filters, 1, rng, activate=False)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.block3(self.block2(self.block1(x)))
        residual = self.shortcut(x) if self.project else x
        length = min(out.shape[2], residual.shape[2])
        return (out[:, :, :length] + residual[:, :, :length]).relu()


class ResNetNetwork(nn.Module):
    """Wang et al.'s 3-residual-block time-series ResNet."""

    def __init__(self, in_channels: int, n_classes: int, *,
                 filters: tuple[int, int, int] = (64, 128, 128),
                 kernel_sizes: tuple[int, int, int] = (8, 5, 3),
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        channels = (in_channels,) + tuple(filters)
        self.blocks = [
            _ResidualBlock(channels[i], channels[i + 1], kernel_sizes, rng)
            for i in range(3)
        ]
        self.head = nn.Linear(filters[-1], n_classes, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        for block in self.blocks:
            x = block(x)
        return self.head(nn.functional.global_avg_pool1d(x))


class _ProtocolClassifier(Classifier):
    """Shared fit/predict for the deep baselines (Sec. IV-D protocol)."""

    def __init__(self, *, max_epochs: int, patience: int, batch_size: int,
                 lr: float, seed):
        self.max_epochs = max_epochs
        self.patience = patience
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed

    def _build(self, in_channels: int, n_classes: int,
               rng: np.random.Generator) -> nn.Module:
        raise NotImplementedError

    def fit(self, X, y, *, X_extra=None, y_extra=None):
        X, y = check_panel_labels(self._clean(X), y)
        self._remember_shape(X)
        rng = ensure_rng(self.seed)
        # The network is trained on dense class indices; arbitrary label
        # values map through classes_ so predictions always come from the
        # training label set (for dense 0..C-1 labels this is the identity).
        self.classes_ = np.unique(y)
        y = np.searchsorted(self.classes_, y)
        n_classes = len(self.classes_)
        X_tr, y_tr, X_val, y_val = train_val_split(X, y, seed=rng)
        if X_extra is not None and len(X_extra):
            X_tr = np.concatenate([X_tr, self._clean(X_extra)], axis=0)
            y_extra = np.searchsorted(self.classes_, np.asarray(y_extra))
            y_tr = np.concatenate([y_tr, y_extra.astype(np.int64)])
        if len(X_val) == 0:
            X_val, y_val = X_tr, y_tr
        self.network_ = self._build(X.shape[1], n_classes, rng)
        trainer = nn.Trainer(
            self.network_, lr=self.lr, max_epochs=self.max_epochs,
            patience=self.patience, batch_size=self.batch_size, seed=rng,
        )
        self.history_ = trainer.fit(X_tr, y_tr, X_val, y_val)
        return self

    def _logits(self, X) -> np.ndarray:
        """Batched forward pass: raw class scores ``(n_series, n_classes)``."""
        if not hasattr(self, "network_"):
            raise RuntimeError("predict called before fit")
        X = self._clean(X)
        self._check_shape(X)
        self.network_.eval()
        parts = []
        with nn.no_grad():
            for start in range(0, len(X), self.batch_size):
                logits = self.network_(nn.Tensor(X[start : start + self.batch_size]))
                parts.append(logits.data)
        return np.concatenate(parts, axis=0)

    def decision_function(self, X) -> np.ndarray:
        """Raw network logits ``(n_series, n_classes)``, columns in
        ``classes_`` order — the deep families' margin surface."""
        return self._logits(X)

    def predict_proba(self, X) -> np.ndarray:
        """Softmax of the network logits ``(n_series, n_classes)``.

        Columns follow ``classes_`` order; the softmax is monotone, so
        the row-wise argmax agrees with :meth:`predict` exactly.
        """
        return softmax(self._logits(X))

    def predict(self, X):
        """Most-likely class per series (argmax of the logits)."""
        logits = self._logits(X)  # first: raises RuntimeError before fit
        return self.classes_[logits.argmax(axis=1)]


class FCNClassifier(_ProtocolClassifier):
    """FCN baseline with CPU-scale defaults (paper scale: 128/256/128)."""

    def __init__(self, *, filters: tuple[int, int, int] = (16, 32, 16),
                 kernel_sizes: tuple[int, int, int] = (8, 5, 3),
                 max_epochs: int = 60, patience: int = 20, batch_size: int = 16,
                 lr: float = 1e-3, seed: int | np.random.Generator | None = None):
        super().__init__(max_epochs=max_epochs, patience=patience,
                         batch_size=batch_size, lr=lr, seed=seed)
        self.filters = tuple(filters)
        self.kernel_sizes = tuple(kernel_sizes)

    def _build(self, in_channels, n_classes, rng):
        return FCNNetwork(in_channels, n_classes, filters=self.filters,
                          kernel_sizes=self.kernel_sizes, rng=rng)


class ResNetClassifier(_ProtocolClassifier):
    """ResNet baseline with CPU-scale defaults (paper scale: 64/128/128)."""

    def __init__(self, *, filters: tuple[int, int, int] = (16, 32, 32),
                 kernel_sizes: tuple[int, int, int] = (8, 5, 3),
                 max_epochs: int = 60, patience: int = 20, batch_size: int = 16,
                 lr: float = 1e-3, seed: int | np.random.Generator | None = None):
        super().__init__(max_epochs=max_epochs, patience=patience,
                         batch_size=batch_size, lr=lr, seed=seed)
        self.filters = tuple(filters)
        self.kernel_sizes = tuple(kernel_sizes)

    def _build(self, in_channels, n_classes, rng):
        return ResNetNetwork(in_channels, n_classes, filters=self.filters,
                             kernel_sizes=self.kernel_sizes, rng=rng)
