"""Classifiers: ROCKET + ridge (the paper's kernel baseline), InceptionTime
(the deep baseline), MiniRocket (extension) and nearest-neighbour utilities.

Like the augmentation package, the classifier families are exposed through
a small registry — :func:`available_classifiers` names every family and
:func:`make_classifier` builds one — so sweeps (the registry-wide contract
tests, the model-family ablation) enumerate the live list instead of a
hardcoded subset.
"""

from .base import Classifier, RidgeFeatureClassifier, accuracy_score, softmax
from .dictionary import SAXDictionaryClassifier, paa, sax_words
from .inception_time import InceptionModule, InceptionNetwork, InceptionTimeClassifier
from .interval import IntervalFeatureClassifier, interval_features
from .minirocket import MiniRocketClassifier, MiniRocketTransform
from .neighbors import KNeighborsTimeSeriesClassifier, dtw_distance
from .resnet import FCNClassifier, FCNNetwork, ResNetClassifier, ResNetNetwork
from .ridge import RidgeClassifierCV
from .rocket import RocketClassifier, RocketTransform
from .serialization import load_model, save_model
from .shapelet import ShapeletTransformClassifier, min_shapelet_distance

#: one factory per classifier family; keyword overrides pass through to the
#: constructor, so callers can shrink budgets without leaving the registry
_CLASSIFIER_FACTORIES = {
    "rocket": RocketClassifier,
    "minirocket": MiniRocketClassifier,
    "inceptiontime": InceptionTimeClassifier,
    "fcn": FCNClassifier,
    "resnet": ResNetClassifier,
    "knn_euclidean": lambda **kw: KNeighborsTimeSeriesClassifier(
        metric="euclidean", **kw),
    "knn_dtw": lambda **kw: KNeighborsTimeSeriesClassifier(metric="dtw", **kw),
    "sax_dictionary": SAXDictionaryClassifier,
    "interval": IntervalFeatureClassifier,
    "shapelet": ShapeletTransformClassifier,
}


def available_classifiers() -> tuple[str, ...]:
    """Registered classifier-family names, alphabetical."""
    return tuple(sorted(_CLASSIFIER_FACTORIES))


def make_classifier(name: str, **overrides) -> Classifier:
    """Build one registered classifier family by name.

    *overrides* are constructor keyword arguments (budgets, seeds); the
    family's defaults apply otherwise.
    """
    try:
        factory = _CLASSIFIER_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown classifier {name!r}; see available_classifiers()"
        ) from None
    return factory(**overrides)


__all__ = [
    "Classifier",
    "RidgeFeatureClassifier",
    "accuracy_score",
    "softmax",
    "available_classifiers",
    "make_classifier",
    "RocketTransform",
    "RocketClassifier",
    "MiniRocketTransform",
    "MiniRocketClassifier",
    "RidgeClassifierCV",
    "InceptionModule",
    "InceptionNetwork",
    "InceptionTimeClassifier",
    "FCNNetwork",
    "FCNClassifier",
    "ResNetNetwork",
    "ResNetClassifier",
    "KNeighborsTimeSeriesClassifier",
    "dtw_distance",
    "SAXDictionaryClassifier",
    "paa",
    "sax_words",
    "IntervalFeatureClassifier",
    "interval_features",
    "ShapeletTransformClassifier",
    "min_shapelet_distance",
    "save_model",
    "load_model",
]
