"""Classifiers: ROCKET + ridge (the paper's kernel baseline), InceptionTime
(the deep baseline), MiniRocket (extension) and nearest-neighbour utilities."""

from .base import Classifier, accuracy_score
from .dictionary import SAXDictionaryClassifier, paa, sax_words
from .inception_time import InceptionModule, InceptionNetwork, InceptionTimeClassifier
from .interval import IntervalFeatureClassifier, interval_features
from .minirocket import MiniRocketClassifier, MiniRocketTransform
from .neighbors import KNeighborsTimeSeriesClassifier, dtw_distance
from .resnet import FCNClassifier, FCNNetwork, ResNetClassifier, ResNetNetwork
from .ridge import RidgeClassifierCV
from .rocket import RocketClassifier, RocketTransform
from .serialization import load_model, save_model
from .shapelet import ShapeletTransformClassifier, min_shapelet_distance

__all__ = [
    "Classifier",
    "accuracy_score",
    "RocketTransform",
    "RocketClassifier",
    "MiniRocketTransform",
    "MiniRocketClassifier",
    "RidgeClassifierCV",
    "InceptionModule",
    "InceptionNetwork",
    "InceptionTimeClassifier",
    "FCNNetwork",
    "FCNClassifier",
    "ResNetNetwork",
    "ResNetClassifier",
    "KNeighborsTimeSeriesClassifier",
    "dtw_distance",
    "SAXDictionaryClassifier",
    "paa",
    "sax_words",
    "IntervalFeatureClassifier",
    "interval_features",
    "ShapeletTransformClassifier",
    "min_shapelet_distance",
    "save_model",
    "load_model",
]
