"""Interval-based classification (the bake-off's interval family).

Random-interval feature extraction in the spirit of the Time Series Forest
(Deng et al., 2013): for each of *n_intervals* random (channel, start, end)
triples, extract summary statistics — mean, standard deviation, slope,
min, max — and classify the concatenated feature vector with ridge.  Fast,
strong on phase-locked signals, and a distinct failure profile from
ROCKET's convolutional features, which makes it a useful extra baseline in
the model-family ablation.
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from .._validation import check_panel
from .base import RidgeFeatureClassifier
from .ridge import RidgeClassifierCV

__all__ = ["IntervalFeatureClassifier", "interval_features"]

_STATS_PER_INTERVAL = 5


def interval_features(X: np.ndarray, intervals: np.ndarray) -> np.ndarray:
    """Extract (mean, std, slope, min, max) for every interval.

    *intervals* is ``(k, 3)`` of (channel, start, stop) with stop exclusive.
    Returns ``(n_series, 5 * k)``.
    """
    X = check_panel(X)
    n = X.shape[0]
    features = np.empty((n, _STATS_PER_INTERVAL * len(intervals)))
    for index, (channel, start, stop) in enumerate(intervals):
        segment = X[:, channel, start:stop]
        steps = np.arange(stop - start)
        base = index * _STATS_PER_INTERVAL
        features[:, base] = segment.mean(axis=1)
        features[:, base + 1] = segment.std(axis=1)
        if stop - start > 1:
            centered_steps = steps - steps.mean()
            denominator = (centered_steps**2).sum()
            features[:, base + 2] = (segment - segment.mean(axis=1, keepdims=True)) @ centered_steps / denominator
        else:
            features[:, base + 2] = 0.0
        features[:, base + 3] = segment.min(axis=1)
        features[:, base + 4] = segment.max(axis=1)
    return features


class IntervalFeatureClassifier(RidgeFeatureClassifier):
    """Random-interval statistics + ridge."""

    def __init__(self, n_intervals: int = 100, *, min_length: int = 3,
                 seed: int | np.random.Generator | None = None):
        if n_intervals < 1:
            raise ValueError(f"n_intervals must be >= 1; got {n_intervals}")
        self.n_intervals = int(n_intervals)
        self.min_length = int(min_length)
        self.seed = seed
        self.ridge = RidgeClassifierCV()

    def fit(self, X, y):
        X = self._clean(X)
        self._remember_shape(X)
        rng = ensure_rng(self.seed)
        _, m, t = X.shape
        min_length = min(self.min_length, t)
        channels = rng.integers(0, m, size=self.n_intervals)
        starts = rng.integers(0, max(1, t - min_length + 1), size=self.n_intervals)
        lengths = rng.integers(min_length, t + 1, size=self.n_intervals)
        stops = np.minimum(starts + lengths, t)
        self._intervals = np.stack([channels, starts, stops], axis=1)
        self.ridge.fit(interval_features(X, self._intervals), np.asarray(y))
        return self

    def _features(self, X):
        if not hasattr(self, "_intervals"):
            raise RuntimeError("predict called before fit")
        X = self._clean(X)
        self._check_shape(X)
        return interval_features(X, self._intervals)
