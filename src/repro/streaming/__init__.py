"""Streaming inference: score a live sample stream window by window.

The batch serving stack (:mod:`repro.serving`) answers "classify this
series"; this package answers the deployment shape that question usually
arrives in — a continuous multivariate stream scored as data flows:

* :mod:`repro.streaming.sources` — the :class:`StreamSource` protocol
  with a dataset-replay source and a generator-driven synthetic source
  (including mid-stream concept shift by prototype swap);
* :mod:`repro.streaming.scorer` — a ring-buffer sliding windower and the
  :class:`StreamScorer`, which pipelines completed windows through the
  serving runtime's micro-batcher so streaming and batch traffic share
  backpressure, metrics and the LRU model lifecycle;
* :mod:`repro.streaming.drift` — a fast-vs-slow EWMA drift monitor
  flagging concept shifts from accuracy (when truth labels ride along),
  from the model's top-1 confidence (when the serving path carries
  probabilities — every registry family does), or from the
  predicted-label distribution as a last resort;
* :mod:`repro.streaming.session` — durable stream sessions: resume
  tokens, the versioned snapshot/restore codec, and the bounded
  server-side :class:`SessionStore` (the worker pool replicates its
  blobs across processes);
* :mod:`repro.streaming.client` — the stdlib chunked-NDJSON client for
  the server's ``POST /v1/models/<name>/stream`` endpoint, plus the
  auto-resuming :func:`stream_session` wrapper.

:mod:`repro.adaptation` closes the loop on the drift flags this package
raises (retrain → canary → promote).  The CLI front-end is ``repro
stream``; wire format: ``docs/http-api.md``.
"""

from .drift import DriftMonitor, DriftState
from .scorer import SlidingWindower, StreamScorer, WindowResult, expected_windows
from .session import (
    CODEC_VERSION,
    SessionError,
    SessionStore,
    StreamSession,
    rendezvous_slot,
)
from .sources import (
    GapSource,
    LabelNoiseSource,
    RaggedSource,
    ReplaySource,
    StreamSample,
    StreamSource,
    SyntheticSource,
)
from .client import StreamRequestError, stream_session, stream_windows

__all__ = [
    "CODEC_VERSION",
    "DriftMonitor",
    "DriftState",
    "GapSource",
    "LabelNoiseSource",
    "RaggedSource",
    "ReplaySource",
    "SessionError",
    "SessionStore",
    "SlidingWindower",
    "StreamRequestError",
    "StreamSample",
    "StreamScorer",
    "StreamSession",
    "StreamSource",
    "SyntheticSource",
    "WindowResult",
    "expected_windows",
    "rendezvous_slot",
    "stream_session",
    "stream_windows",
]
