"""Stream sources: turn stored panels and generators into sample streams.

A *stream* is an iterable of :class:`StreamSample` — one multivariate
observation per time step, optionally carrying the ground-truth label of
the series it belongs to.  Anything that yields those samples can feed
the sliding-window scorer; the two built-ins cover the common cases:

* :class:`ReplaySource` — iterate a stored panel series by series, time
  step by time step: the shape of re-scoring a recorded day of traffic;
* :class:`SyntheticSource` — draw series from an
  :class:`~repro.data.generators.MTSGenerator` forever, with an optional
  mid-stream **concept shift**: after ``shift_at`` samples the class
  prototypes are swapped (:meth:`MTSGenerator.swap_prototypes`), so the
  nominal labels keep flowing while their generating process changes —
  the canonical drift-detection scenario.

Both sources are deterministic: iterating one twice yields bit-identical
streams (``SyntheticSource`` rebuilds its generator per iteration so a
consumed shift never leaks into the next replay).
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Protocol, runtime_checkable

import numpy as np

from .._validation import check_panel, check_panel_labels
from ..data.generators import MTSGenerator

__all__ = ["ReplaySource", "StreamSample", "StreamSource", "SyntheticSource"]


class StreamSample(NamedTuple):
    """One time step of a multivariate stream."""

    t: int  # sample index since the stream began
    values: np.ndarray  # (n_channels,)
    label: int | None  # ground truth of the owning series, when known


@runtime_checkable
class StreamSource(Protocol):
    """Anything that yields a deterministic :class:`StreamSample` stream."""

    n_channels: int

    def __iter__(self) -> Iterator[StreamSample]: ...


class ReplaySource:
    """Replay a stored panel as a timestamped sample stream.

    Series are emitted in panel order, each unrolled time step by time
    step; every sample carries its series' label when *y* is given.  A
    2-D univariate panel is promoted to one channel, as everywhere else.
    """

    def __init__(self, X: np.ndarray, y: np.ndarray | None = None):
        if y is None:
            self.X = check_panel(X)
            self.y = None
        else:
            self.X, self.y = check_panel_labels(X, y)
        self.n_channels = self.X.shape[1]

    def __len__(self) -> int:
        """Total samples the stream will emit."""
        return self.X.shape[0] * self.X.shape[2]

    def __iter__(self) -> Iterator[StreamSample]:
        t = 0
        for index, series in enumerate(self.X):
            label = int(self.y[index]) if self.y is not None else None
            for step in range(series.shape[1]):
                yield StreamSample(t, series[:, step], label)
                t += 1


class SyntheticSource:
    """Generator-driven stream with an optional mid-stream concept shift.

    Parameters
    ----------
    generator:
        A prototype :class:`MTSGenerator`, or ``None`` to build one from
        the shape keywords below.  The instance is treated as a template:
        each iteration rebuilds an identical generator from *seed*, so
        the shift never leaks between replays of the same source.
    n_series:
        How many series the stream emits (labels drawn uniformly).
    shift_at:
        Sample index after which the prototypes are swapped.  The swap is
        applied at the next series boundary at or after this index — a
        concept changes between series, not inside one observation — via
        :meth:`MTSGenerator.swap_prototypes` with *shift_mapping*.
    shift_mapping:
        Optional permutation passed to ``swap_prototypes`` (default: the
        rotate-by-one mapping).
    """

    def __init__(self, *, n_channels: int = 2, length: int = 32,
                 n_classes: int = 2, difficulty: float = 0.2,
                 n_series: int = 50, seed: int = 0,
                 shift_at: int | None = None,
                 shift_mapping: tuple[int, ...] | None = None,
                 generator: MTSGenerator | None = None):
        if n_series < 1:
            raise ValueError(f"n_series must be >= 1; got {n_series}")
        if shift_at is not None and shift_at < 0:
            raise ValueError(f"shift_at must be >= 0; got {shift_at}")
        if generator is not None:
            n_channels = generator.n_channels
            length = generator.length
            n_classes = generator.n_classes
            difficulty = generator.difficulty
        self.n_channels = n_channels
        self.length = length
        self.n_classes = n_classes
        self.difficulty = difficulty
        self.n_series = int(n_series)
        self.seed = int(seed)
        self.shift_at = shift_at
        self.shift_mapping = tuple(shift_mapping) if shift_mapping else None
        self._template = generator

    def __len__(self) -> int:
        return self.n_series * self.length

    def _build_generator(self) -> MTSGenerator:
        generator = MTSGenerator(
            n_channels=self.n_channels, length=self.length,
            n_classes=self.n_classes, difficulty=self.difficulty,
            seed=self.seed,
        )
        if self._template is not None:
            # Adopt the template's latent process wholesale; the freshly
            # drawn prototypes above only exist so swap_prototypes can
            # mutate a private copy, never the caller's generator.
            generator.prototypes = list(self._template.prototypes)
            generator.background = self._template.background
            generator.ar_coefficient = self._template.ar_coefficient
            generator.noise_scale = self._template.noise_scale
        return generator

    def __iter__(self) -> Iterator[StreamSample]:
        generator = self._build_generator()
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 1]))
        shifted = False
        t = 0
        for _ in range(self.n_series):
            if self.shift_at is not None and not shifted and t >= self.shift_at:
                generator.swap_prototypes(self.shift_mapping)
                shifted = True
            label = int(rng.integers(0, generator.n_classes))
            series = generator.sample_class(label, 1, rng)[0]
            for step in range(series.shape[1]):
                yield StreamSample(t, series[:, step], label)
                t += 1
