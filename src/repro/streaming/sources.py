"""Stream sources: turn stored panels and generators into sample streams.

A *stream* is an iterable of :class:`StreamSample` — one multivariate
observation per time step, optionally carrying the ground-truth label of
the series it belongs to.  Anything that yields those samples can feed
the sliding-window scorer; the two built-ins cover the common cases:

* :class:`ReplaySource` — iterate a stored panel series by series, time
  step by time step: the shape of re-scoring a recorded day of traffic;
* :class:`SyntheticSource` — draw series from an
  :class:`~repro.data.generators.MTSGenerator` forever, with an optional
  mid-stream **concept shift**: after ``shift_at`` samples the class
  prototypes are swapped (:meth:`MTSGenerator.swap_prototypes`), so the
  nominal labels keep flowing while their generating process changes —
  the canonical drift-detection scenario.

Three composable **pathology wrappers** distort any source the way real
deployments do (the scenario worlds in :mod:`repro.data.scenarios` are
built from them): :class:`GapSource` removes outage spans and random
dropouts while preserving the clock, :class:`RaggedSource` truncates
series to variable lengths, and :class:`LabelNoiseSource` flips a
seeded fraction of the labels.

Every source is deterministic: iterating one twice yields bit-identical
streams (``SyntheticSource`` rebuilds its generator per iteration so a
consumed shift never leaks into the next replay; the wrappers rebuild
their RNG the same way).
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Protocol, runtime_checkable

import numpy as np

from .._validation import check_panel, check_panel_labels
from ..data.generators import MTSGenerator

__all__ = [
    "GapSource",
    "LabelNoiseSource",
    "RaggedSource",
    "ReplaySource",
    "StreamSample",
    "StreamSource",
    "SyntheticSource",
]


class StreamSample(NamedTuple):
    """One time step of a multivariate stream."""

    t: int  # sample index since the stream began
    values: np.ndarray  # (n_channels,)
    label: int | None  # ground truth of the owning series, when known


@runtime_checkable
class StreamSource(Protocol):
    """Anything that yields a deterministic :class:`StreamSample` stream."""

    n_channels: int

    def __iter__(self) -> Iterator[StreamSample]: ...


class ReplaySource:
    """Replay a stored panel as a timestamped sample stream.

    Series are emitted in panel order, each unrolled time step by time
    step; every sample carries its series' label when *y* is given.  A
    2-D univariate panel is promoted to one channel, as everywhere else.
    """

    def __init__(self, X: np.ndarray, y: np.ndarray | None = None):
        if y is None:
            self.X = check_panel(X)
            self.y = None
        else:
            self.X, self.y = check_panel_labels(X, y)
        self.n_channels = self.X.shape[1]

    def __len__(self) -> int:
        """Total samples the stream will emit."""
        return self.X.shape[0] * self.X.shape[2]

    def __iter__(self) -> Iterator[StreamSample]:
        t = 0
        for index, series in enumerate(self.X):
            label = int(self.y[index]) if self.y is not None else None
            for step in range(series.shape[1]):
                yield StreamSample(t, series[:, step], label)
                t += 1


class SyntheticSource:
    """Generator-driven stream with an optional mid-stream concept shift.

    Parameters
    ----------
    generator:
        A prototype :class:`MTSGenerator`, or ``None`` to build one from
        the shape keywords below.  The instance is treated as a template:
        each iteration rebuilds an identical generator from *seed*, so
        the shift never leaks between replays of the same source.
    n_series:
        How many series the stream emits (labels drawn uniformly).
    shift_at:
        Sample index after which the prototypes are swapped.  The swap is
        applied at the next series boundary at or after this index — a
        concept changes between series, not inside one observation — via
        :meth:`MTSGenerator.swap_prototypes` with *shift_mapping*.
    shift_mapping:
        Optional permutation passed to ``swap_prototypes`` (default: the
        rotate-by-one mapping).
    """

    def __init__(self, *, n_channels: int = 2, length: int = 32,
                 n_classes: int = 2, difficulty: float = 0.2,
                 n_series: int = 50, seed: int = 0,
                 shift_at: int | None = None,
                 shift_mapping: tuple[int, ...] | None = None,
                 generator: MTSGenerator | None = None):
        if n_series < 1:
            raise ValueError(f"n_series must be >= 1; got {n_series}")
        if shift_at is not None and shift_at < 0:
            raise ValueError(f"shift_at must be >= 0; got {shift_at}")
        if generator is not None:
            n_channels = generator.n_channels
            length = generator.length
            n_classes = generator.n_classes
            difficulty = generator.difficulty
        self.n_channels = n_channels
        self.length = length
        self.n_classes = n_classes
        self.difficulty = difficulty
        self.n_series = int(n_series)
        self.seed = int(seed)
        self.shift_at = shift_at
        self.shift_mapping = tuple(shift_mapping) if shift_mapping else None
        self._template = generator

    def __len__(self) -> int:
        return self.n_series * self.length

    def _build_generator(self) -> MTSGenerator:
        generator = MTSGenerator(
            n_channels=self.n_channels, length=self.length,
            n_classes=self.n_classes, difficulty=self.difficulty,
            seed=self.seed,
        )
        if self._template is not None:
            # Adopt the template's latent process wholesale; the freshly
            # drawn prototypes above only exist so swap_prototypes can
            # mutate a private copy, never the caller's generator.
            generator.prototypes = list(self._template.prototypes)
            generator.background = self._template.background
            generator.ar_coefficient = self._template.ar_coefficient
            generator.noise_scale = self._template.noise_scale
        return generator

    def __iter__(self) -> Iterator[StreamSample]:
        generator = self._build_generator()
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 1]))
        shifted = False
        t = 0
        for _ in range(self.n_series):
            if self.shift_at is not None and not shifted and t >= self.shift_at:
                generator.swap_prototypes(self.shift_mapping)
                shifted = True
            label = int(rng.integers(0, generator.n_classes))
            series = generator.sample_class(label, 1, rng)[0]
            for step in range(series.shape[1]):
                yield StreamSample(t, series[:, step], label)
                t += 1


class GapSource:
    """Drop samples from a wrapped stream, keeping the original clock.

    Two pathologies, composable:

    * **outages** — every ``(start, length)`` pair in *gaps* removes the
      samples with ``start <= t < start + length`` (a sensor going dark
      for a stretch);
    * **dropouts** — each surviving sample is independently discarded
      with *drop_probability* (lossy transport), drawn deterministically
      from *seed* per iteration.

    Surviving samples keep their **original** ``t``, so the removed
    spans are visible to the consumer as jumps in the clock — exactly
    what :meth:`~repro.streaming.StreamScorer.feed` turns into a window
    reset when fed with ``t=sample.t``.  Iterating twice yields
    bit-identical streams.

    With *series_length* set, losing **any** sample invalidates the rest
    of its series: the stream resumes at the next series boundary.  That
    is how recording pipelines actually behave — a recording with a hole
    in it is discarded, not stitched — and it keeps a window-aligned
    consumer aligned after the gap (without it, a mid-series gap shifts
    every later window across two series).
    """

    def __init__(self, source: StreamSource, *,
                 gaps: tuple[tuple[int, int], ...] = (),
                 drop_probability: float = 0.0, seed: int = 0,
                 series_length: int | None = None):
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1); got {drop_probability}")
        if series_length is not None and series_length < 1:
            raise ValueError(
                f"series_length must be >= 1; got {series_length}")
        self.source = source
        self.gaps = tuple((int(start), int(length)) for start, length in gaps)
        for start, length in self.gaps:
            if start < 0 or length < 1:
                raise ValueError(
                    f"each gap is (start >= 0, length >= 1); "
                    f"got ({start}, {length})")
        self.drop_probability = float(drop_probability)
        self.seed = int(seed)
        self.series_length = None if series_length is None \
            else int(series_length)
        self.n_channels = source.n_channels

    def __iter__(self) -> Iterator[StreamSample]:
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 2]))
        skip_until = 0
        for sample in self.source:
            if sample.t < skip_until:
                continue
            removed = any(start <= sample.t < start + length
                          for start, length in self.gaps)
            if not removed and self.drop_probability > 0.0:
                removed = rng.random() < self.drop_probability
            if removed:
                if self.series_length is not None:
                    # The rest of this recording is invalid too.
                    skip_until = sample.t - sample.t % self.series_length \
                        + self.series_length
                continue
            yield sample


class RaggedSource:
    """Truncate each series of a wrapped stream to a ragged length.

    Wraps a source whose series are *series_length* samples long
    (:class:`ReplaySource` over a fixed-length panel,
    :class:`SyntheticSource`) and keeps only a seeded fraction in
    ``[min_fraction, 1]`` of every series, dropping the tail — the
    variable-length shape of real UEA sources (CharacterTrajectories,
    SpokenArabicDigits), where short recordings simply end early.

    The surviving samples keep their original clock, so a truncated
    tail shows up as a jump in ``t`` at the next series boundary and a
    ``t``-aware consumer never assembles a window that straddles two
    series.  Iterating twice yields bit-identical streams.
    """

    def __init__(self, source: StreamSource, *, series_length: int,
                 min_fraction: float = 0.5, seed: int = 0):
        if series_length < 1:
            raise ValueError(
                f"series_length must be >= 1; got {series_length}")
        if not 0.0 < min_fraction <= 1.0:
            raise ValueError(
                f"min_fraction must be in (0, 1]; got {min_fraction}")
        self.source = source
        self.series_length = int(series_length)
        self.min_fraction = float(min_fraction)
        self.seed = int(seed)
        self.n_channels = source.n_channels

    def __iter__(self) -> Iterator[StreamSample]:
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 3]))
        keep = 0
        for sample in self.source:
            step = sample.t % self.series_length
            if step == 0:
                fraction = rng.uniform(self.min_fraction, 1.0)
                keep = max(1, int(round(fraction * self.series_length)))
            if step < keep:
                yield sample


class LabelNoiseSource:
    """Flip a wrapped stream's labels with a seeded probability.

    Each series' label survives with probability ``1 - flip_probability``
    and is otherwise replaced by a uniformly drawn *different* label in
    ``[0, n_classes)`` — annotation noise, applied consistently to every
    sample of the same series (labels describe series, not samples; the
    flip is redrawn at each *series_length* boundary of the clock).
    Values and the clock pass through untouched; iterating twice yields
    bit-identical streams.
    """

    def __init__(self, source: StreamSource, *, n_classes: int,
                 series_length: int, flip_probability: float, seed: int = 0):
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2; got {n_classes}")
        if series_length < 1:
            raise ValueError(
                f"series_length must be >= 1; got {series_length}")
        if not 0.0 <= flip_probability < 1.0:
            raise ValueError(
                f"flip_probability must be in [0, 1); got {flip_probability}")
        self.source = source
        self.n_classes = int(n_classes)
        self.series_length = int(series_length)
        self.flip_probability = float(flip_probability)
        self.seed = int(seed)
        self.n_channels = source.n_channels

    def __iter__(self) -> Iterator[StreamSample]:
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 4]))
        offset: int | None = None
        for sample in self.source:
            if sample.t % self.series_length == 0 or offset is None:
                offset = 0
                if rng.random() < self.flip_probability:
                    offset = int(rng.integers(1, self.n_classes))
            if sample.label is None or offset == 0:
                yield sample
                continue
            noisy = (int(sample.label) + offset) % self.n_classes
            yield StreamSample(sample.t, sample.values, noisy)
