"""NDJSON streaming client for ``POST /v1/models/<name>/stream``.

Stdlib only, like the server.  The request body is sent with chunked
transfer encoding from a background thread while the main thread reads
the chunked response — full duplex, so a long stream never deadlocks on
socket buffers: the server emits a window line as soon as the window
resolves, and the client consumes it while still sending samples.

The one public entry point is :func:`stream_windows`, which yields the
response lines (``window`` results, then a ``summary``; an ``error`` line
on in-band failure) as parsed dictionaries::

    for event in stream_windows("127.0.0.1", 8080, "demo",
                                samples, window=32, hop=8):
        if event["kind"] == "window":
            ...

*samples* is any iterable of ``(values, label_or_None)`` pairs or bare
value vectors.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
import uuid
from collections import deque
from typing import Iterable, Iterator

import numpy as np

__all__ = ["StreamRequestError", "stream_session", "stream_windows"]


class StreamRequestError(RuntimeError):
    """The server refused the stream before it started (non-200 status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


#: how long to wait for the sender thread after it has been told to stop
#: — it only needs to notice the stop event between two samples, so this
#: bounds teardown at a fraction of the request timeout instead of the
#: whole thing
_SENDER_LINGER = 1.0


def _encode_sample(sample) -> bytes:
    """One NDJSON line, framed as one HTTP chunk."""
    if isinstance(sample, dict):
        payload = sample
    elif isinstance(sample, tuple) and len(sample) == 2:
        values, label = sample
        payload = {"values": np.asarray(values, dtype=float).tolist()}
        if label is not None:
            payload["label"] = int(label)
    else:
        payload = {"values": np.asarray(sample, dtype=float).tolist()}
    data = json.dumps(payload).encode() + b"\n"
    return b"%x\r\n" % len(data) + data + b"\r\n"


def stream_windows(host: str, port: int, name: str, samples: Iterable, *,
                   window: int, hop: int | None = None, version=None,
                   proba: bool = False, timeout: float = 60.0,
                   session: str | None = None, resume: int | None = None,
                   follow: bool | None = None) -> Iterator[dict]:
    """Stream *samples* to a served model; yield its response lines.

    Yields each ``{"kind": "window", ...}`` line as the server emits it,
    then the ``{"kind": "summary", ...}`` line; an in-band server failure
    surfaces as a ``{"kind": "error", ...}`` line (the generator ends
    after it).  A refusal before the stream starts (unknown model, bad
    parameters) raises :class:`StreamRequestError`.

    Window lines carry a ``confidence`` field whenever the served model
    provides probabilities; *proba* additionally requests each window's
    full probability vector (``?proba=1``).

    *session* names a durable stream session (``?session=``); *resume*
    re-attaches it at a resume token (``?resume=``) and *follow* can be
    set ``False`` to pin a session's model version across canary
    promotions (``?follow=0``).  This is one raw connection — it does
    not reconnect by itself; the resuming loop is
    :func:`stream_session`.
    """
    query = {"window": int(window)}
    if hop is not None:
        query["hop"] = int(hop)
    if version is not None:
        query["version"] = version
    if proba:
        query["proba"] = 1
    if session is not None:
        query["session"] = session
    if resume is not None:
        query["resume"] = int(resume)
    if follow is not None and not follow:
        query["follow"] = 0
    path = (f"/v1/models/{urllib.parse.quote(name)}/stream?"
            + urllib.parse.urlencode(query))

    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.putrequest("POST", path)
        connection.putheader("Content-Type", "application/x-ndjson")
        connection.putheader("Transfer-Encoding", "chunked")
        connection.endheaders()

        send_error: list[BaseException] = []
        stop = threading.Event()

        def _send() -> None:
            try:
                for sample in samples:
                    if stop.is_set():
                        # The consumer is gone (early close) or done
                        # reading; pushing the rest of the stream would
                        # only fill socket buffers nobody drains.
                        return
                    connection.send(_encode_sample(sample))
                connection.send(b"0\r\n\r\n")
            except BaseException as error:  # noqa: BLE001 - reported below
                # The server may have torn the stream down mid-send (it
                # answers in-band); keep the error for after the read loop.
                send_error.append(error)

        sender = threading.Thread(target=_send, daemon=True)
        sender.start()
        try:
            response = connection.getresponse()
            if response.status != 200:
                body = response.read().decode(errors="replace")
                try:
                    message = json.loads(body).get("error", body)
                except json.JSONDecodeError:
                    message = body
                raise StreamRequestError(response.status, message)
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            # Signal the sender first, then join with a short bound: a
            # consumer that breaks out of the generator after one window
            # must not hang here for the full request timeout while the
            # sender pushes the rest of a long stream (the daemon sender
            # exits at its next between-samples check; if it is blocked
            # inside send() on a full socket buffer, the connection.close
            # below unblocks it).
            stop.set()
            sender.join(timeout=_SENDER_LINGER)
        if send_error and not isinstance(send_error[0],
                                         (BrokenPipeError, ConnectionError)):
            raise send_error[0]
    finally:
        connection.close()


#: pre-commit statuses worth retrying during a session resume: the pool
#: answers 503 while a worker drains or respawns and 429 under shed —
#: both clear within the backoff window
_RETRYABLE_STATUSES = frozenset({429, 503})


def stream_session(host: str, port: int, name: str, samples: Iterable, *,
                   window: int, hop: int | None = None, version=None,
                   proba: bool = False, timeout: float = 60.0,
                   session: str | None = None, follow: bool = True,
                   resume_from: int | None = None,
                   max_retries: int = 8, retry_delay: float = 0.2
                   ) -> Iterator[dict]:
    """Stream through a durable session, resuming across disconnects.

    Wraps :func:`stream_windows` in the full client half of the session
    protocol: samples handed to the wire are buffered until the server
    acknowledges them (the ``samples`` field on session and window
    lines), and on any disconnect — a dropped TCP connection, a killed
    worker, a server-initiated ``detach`` during drain — the stream
    reconnects with ``resume=<last token>`` and re-sends exactly the
    unacknowledged samples.  The server replays nothing and loses
    nothing, so the caller sees every window line exactly once, in
    order, bit-identical to an uninterrupted stream.

    *session* defaults to a fresh random id.  *resume_from* starts the
    very first attempt as a resume at that token instead of a fresh
    open — ``resume_from=0`` re-attaches a session a previous process
    left behind, replaying every window line its cache still covers
    (``repro stream --resume``).  Reconnects retry up to
    *max_retries* consecutive failures with linear backoff
    (*retry_delay*, doubling per attempt is not needed — worker respawn
    is sub-second); any successful re-attach resets the budget.  A
    non-retryable pre-commit refusal raises :class:`StreamRequestError`
    immediately.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0; got {max_retries}")
    session_id = session if session is not None else uuid.uuid4().hex
    source = iter(samples)
    lock = threading.Lock()
    buffered: deque[tuple[int, object]] = deque()
    feed_pos = 0  # samples pulled from the source so far
    acked = 0  # samples the server has folded into session state
    exhausted = False
    generation = 0  # bumped per attempt: fences off stale sender threads
    skip_source = resume_from is not None  # see _feed: line the source up

    def _feed(gen: int, ready: threading.Event) -> Iterator[object]:
        """Unacknowledged buffer first, then the live source (recorded).

        A sample is buffered *before* it is yielded, so nothing handed
        to a connection is ever unrecoverable; the generation fence
        keeps the previous attempt's sender thread (which may outlive
        its connection by a moment) from stealing source samples the
        new connection would then never see.

        *ready* gates the first sample: on a resume the server's
        session ack carries the true resend offset — the snapshot may
        be *ahead* of the last window line this client saw (replayed
        windows), in which case resending from the stale ack would
        misalign the ring.  The wire is full duplex, so waiting for the
        ack while the response streams costs nothing.
        """
        nonlocal feed_pos, exhausted
        while not ready.wait(0.05):
            with lock:
                if gen != generation:
                    return
        with lock:
            # An externally resumed session (resume_from) starts with an
            # empty buffer but a server already ``acked`` samples ahead:
            # line the source up by discarding what the snapshot holds.
            to_skip = acked - feed_pos if skip_source else 0
        for _ in range(max(0, to_skip)):
            try:
                next(source)
            except StopIteration:
                with lock:
                    exhausted = True
                return
        if to_skip > 0:
            with lock:
                feed_pos = max(feed_pos, acked)
        with lock:
            replay = [item for item in buffered if item[0] >= acked]
        for _, sample in replay:
            yield sample
        while True:
            with lock:
                if exhausted or gen != generation:
                    return
                try:
                    sample = next(source)
                except StopIteration:
                    exhausted = True
                    return
                buffered.append((feed_pos, sample))
                feed_pos += 1
            yield sample

    def _ack(position) -> None:
        nonlocal acked
        with lock:
            acked = max(acked, int(position))
            while buffered and buffered[0][0] < acked:
                buffered.popleft()

    # Last window token seen; None = fresh open.
    token: int | None = None if resume_from is None else int(resume_from)
    failures = 0
    while True:
        detached = False
        dropped: BaseException | None = None
        with lock:
            generation += 1
            gen = generation
        ready = threading.Event()
        if token is None:
            ready.set()  # fresh open: samples start at zero, no ack needed
        try:
            events = stream_windows(
                host, port, name, _feed(gen, ready), window=window, hop=hop,
                version=version, proba=proba, timeout=timeout,
                session=session_id, resume=token, follow=follow)
            for event in events:
                kind = event.get("kind")
                if kind == "session":
                    failures = 0
                    if token is None:
                        token = int(event["token"])
                    # Never adopt the ack's token otherwise: replayed
                    # window lines are still in flight, and a drop
                    # before they land must resume *behind* them so
                    # they are replayed again — windows reach the
                    # caller exactly once, never zero times.
                    _ack(event.get("samples", 0))
                    ready.set()
                elif kind == "window":
                    if "token" in event:
                        token = int(event["token"])
                    if "samples" in event:
                        _ack(event["samples"])
                elif kind == "detach":
                    detached = True
                    yield event
                    break
                elif kind == "error":
                    # In-band failure after commit: the server-side
                    # stream is gone, but the session state survived —
                    # treat exactly like a dropped connection.
                    dropped = StreamRequestError(500, str(event.get("error")))
                    break
                yield event
                if kind == "summary":
                    return
            else:
                # Response ended without summary/detach: connection lost.
                dropped = ConnectionError("stream ended without summary")
        except StreamRequestError as error:
            if error.status == 409 and token is None:
                # The session outlived a first attach we never saw
                # confirmed (the drop beat the session line); switch to
                # resuming it from the start.
                token = 0
                dropped = error
            elif error.status == 409:
                # Mid-resume conflict — most likely the server has not
                # yet noticed the old connection is dead and the
                # session still counts as attached.  That clears in
                # milliseconds; genuine conflicts (token ahead, codec
                # mismatch) just exhaust the retry budget and surface.
                dropped = error
            elif error.status == 404 and token is not None:
                # Mid-resume "unknown session" — in a worker pool the
                # peer holding the replicated blob may itself still be
                # respawning, or the dying worker has not suspended the
                # session yet.  Genuinely unknown sessions exhaust the
                # budget and surface as 404.
                dropped = error
            elif error.status not in _RETRYABLE_STATUSES:
                raise
            else:
                dropped = error
        except (ConnectionError, TimeoutError, http.client.HTTPException,
                OSError) as error:
            dropped = error
        if dropped is not None:
            failures += 1
            if failures > max_retries:
                raise dropped
        if detached:
            failures = 0
        time.sleep(retry_delay * max(1, failures))
