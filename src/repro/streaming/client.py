"""NDJSON streaming client for ``POST /v1/models/<name>/stream``.

Stdlib only, like the server.  The request body is sent with chunked
transfer encoding from a background thread while the main thread reads
the chunked response — full duplex, so a long stream never deadlocks on
socket buffers: the server emits a window line as soon as the window
resolves, and the client consumes it while still sending samples.

The one public entry point is :func:`stream_windows`, which yields the
response lines (``window`` results, then a ``summary``; an ``error`` line
on in-band failure) as parsed dictionaries::

    for event in stream_windows("127.0.0.1", 8080, "demo",
                                samples, window=32, hop=8):
        if event["kind"] == "window":
            ...

*samples* is any iterable of ``(values, label_or_None)`` pairs or bare
value vectors.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse
from typing import Iterable, Iterator

import numpy as np

__all__ = ["StreamRequestError", "stream_windows"]


class StreamRequestError(RuntimeError):
    """The server refused the stream before it started (non-200 status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


#: how long to wait for the sender thread after it has been told to stop
#: — it only needs to notice the stop event between two samples, so this
#: bounds teardown at a fraction of the request timeout instead of the
#: whole thing
_SENDER_LINGER = 1.0


def _encode_sample(sample) -> bytes:
    """One NDJSON line, framed as one HTTP chunk."""
    if isinstance(sample, dict):
        payload = sample
    elif isinstance(sample, tuple) and len(sample) == 2:
        values, label = sample
        payload = {"values": np.asarray(values, dtype=float).tolist()}
        if label is not None:
            payload["label"] = int(label)
    else:
        payload = {"values": np.asarray(sample, dtype=float).tolist()}
    data = json.dumps(payload).encode() + b"\n"
    return b"%x\r\n" % len(data) + data + b"\r\n"


def stream_windows(host: str, port: int, name: str, samples: Iterable, *,
                   window: int, hop: int | None = None, version=None,
                   proba: bool = False, timeout: float = 60.0) -> Iterator[dict]:
    """Stream *samples* to a served model; yield its response lines.

    Yields each ``{"kind": "window", ...}`` line as the server emits it,
    then the ``{"kind": "summary", ...}`` line; an in-band server failure
    surfaces as a ``{"kind": "error", ...}`` line (the generator ends
    after it).  A refusal before the stream starts (unknown model, bad
    parameters) raises :class:`StreamRequestError`.

    Window lines carry a ``confidence`` field whenever the served model
    provides probabilities; *proba* additionally requests each window's
    full probability vector (``?proba=1``).
    """
    query = {"window": int(window)}
    if hop is not None:
        query["hop"] = int(hop)
    if version is not None:
        query["version"] = version
    if proba:
        query["proba"] = 1
    path = (f"/v1/models/{urllib.parse.quote(name)}/stream?"
            + urllib.parse.urlencode(query))

    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.putrequest("POST", path)
        connection.putheader("Content-Type", "application/x-ndjson")
        connection.putheader("Transfer-Encoding", "chunked")
        connection.endheaders()

        send_error: list[BaseException] = []
        stop = threading.Event()

        def _send() -> None:
            try:
                for sample in samples:
                    if stop.is_set():
                        # The consumer is gone (early close) or done
                        # reading; pushing the rest of the stream would
                        # only fill socket buffers nobody drains.
                        return
                    connection.send(_encode_sample(sample))
                connection.send(b"0\r\n\r\n")
            except BaseException as error:  # noqa: BLE001 - reported below
                # The server may have torn the stream down mid-send (it
                # answers in-band); keep the error for after the read loop.
                send_error.append(error)

        sender = threading.Thread(target=_send, daemon=True)
        sender.start()
        try:
            response = connection.getresponse()
            if response.status != 200:
                body = response.read().decode(errors="replace")
                try:
                    message = json.loads(body).get("error", body)
                except json.JSONDecodeError:
                    message = body
                raise StreamRequestError(response.status, message)
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            # Signal the sender first, then join with a short bound: a
            # consumer that breaks out of the generator after one window
            # must not hang here for the full request timeout while the
            # sender pushes the rest of a long stream (the daemon sender
            # exits at its next between-samples check; if it is blocked
            # inside send() on a full socket buffer, the connection.close
            # below unblocks it).
            stop.set()
            sender.join(timeout=_SENDER_LINGER)
        if send_error and not isinstance(send_error[0],
                                         (BrokenPipeError, ConnectionError)):
            raise send_error[0]
    finally:
        connection.close()
