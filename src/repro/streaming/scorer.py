"""Sliding-window stream scoring on top of the serving runtime.

The scorer turns *any* published model into an online classifier: samples
are pushed one at a time, a ring buffer assembles ``(channels, window)``
panels every ``hop`` steps, and each completed window is submitted to the
model's :class:`~repro.serving.batcher.MicroBatcher` through
:meth:`PredictionService.submit` — so streaming traffic shares the
micro-batching, the bounded-queue backpressure, the metrics and the LRU
model lifecycle with ordinary batch requests instead of sidestepping
them.

Windows are scored **pipelined**: up to ``max_inflight`` windows ride the
batcher concurrently while results are handed back strictly in window
order.  Backpressure composes in two layers — the submit blocks (bounded
by ``queue_timeout``) while the shared queue is full, and the inflight
cap makes one slow stream wait on its own oldest window rather than
flooding the queue for everyone else.

A :class:`~repro.streaming.drift.DriftMonitor` (optional but on by
default) watches the per-window outcomes and flags concept shifts.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

import numpy as np

from ..observability import get_tracer
from ..serving.server import ServingError
from .drift import DriftMonitor, DriftState, _key
from .session import (CODEC_VERSION, SessionError, StreamSession,
                      check_codec, decode_array, encode_array)

__all__ = ["SlidingWindower", "StreamScorer", "WindowResult", "expected_windows"]


def expected_windows(n_samples: int, window: int, hop: int) -> int:
    """How many full windows a stream of *n_samples* yields."""
    if n_samples < window:
        return 0
    return (n_samples - window) // hop + 1


class SlidingWindower:
    """A ring buffer emitting ``(channels, window)`` panels every *hop* steps.

    Samples are written in place — pushing is O(channels) — and a
    completed window is unrolled into a fresh contiguous copy, oldest
    sample first.  Trailing samples that never complete a window are
    simply never emitted.
    """

    def __init__(self, n_channels: int, window: int, hop: int):
        if n_channels < 1:
            raise ValueError(f"n_channels must be >= 1; got {n_channels}")
        if window < 1:
            raise ValueError(f"window must be >= 1; got {window}")
        if hop < 1:
            raise ValueError(f"hop must be >= 1; got {hop}")
        self.n_channels = int(n_channels)
        self.window = int(window)
        self.hop = int(hop)
        self._buffer = np.zeros((self.n_channels, self.window))
        self._seen = 0

    @property
    def seen(self) -> int:
        """Samples pushed since construction (or the last :meth:`reset`)."""
        return self._seen

    def reset(self) -> None:
        """Forget every buffered sample: the next window completes only
        after ``window`` *fresh* pushes.

        The discontinuity hook: a stream gap (missing samples, a new
        ragged series) must never let one window silently mix
        observations from both sides of the break — the stale samples
        still in the ring are dead, so the window count restarts.
        """
        self._seen = 0

    def snapshot(self) -> dict:
        """The ring's exact state as a JSON-ready codec fragment.

        The buffer is captured raw (unordered ring plus ``seen``) so a
        :meth:`restore` continues the *same* ring — every future window
        is bit-identical to the one the uninterrupted stream would have
        produced.
        """
        return {
            "n_channels": self.n_channels, "window": self.window,
            "hop": self.hop, "seen": self._seen,
            "buffer": encode_array(self._buffer),
        }

    @classmethod
    def restore(cls, state: dict) -> "SlidingWindower":
        """Rebuild a windower from a :meth:`snapshot` fragment."""
        windower = cls(state["n_channels"], state["window"], state["hop"])
        windower._buffer[:] = decode_array(state["buffer"])
        windower._seen = int(state["seen"])
        return windower

    def push(self, values) -> np.ndarray | None:
        """Add one sample; returns the completed window when one is due."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n_channels,):
            raise ValueError(
                f"a sample has shape (n_channels,) = ({self.n_channels},); "
                f"got {values.shape}"
            )
        self._buffer[:, self._seen % self.window] = values
        self._seen += 1
        if self._seen >= self.window \
                and (self._seen - self.window) % self.hop == 0:
            order = (np.arange(self.window) + self._seen) % self.window
            return self._buffer[:, order].copy()
        return None


@dataclass(frozen=True)
class WindowResult:
    """One scored window, in stream order."""

    index: int  # 0-based window number
    start: int  # sample index of the window's first observation
    end: int  # sample index of its last observation (inclusive)
    label: object  # the model's prediction
    truth: int | None  # ground truth of the freshest sample, when known
    drift: DriftState | None
    confidence: float | None = None  # top-1 probability, when served
    proba: np.ndarray | None = None  # full probability vector, when served
    samples: int | None = None  # samples consumed at this window (sessions)

    def as_dict(self, *, with_proba: bool = False) -> dict:
        """JSON-ready form — the NDJSON wire format's ``window`` line.

        ``confidence`` rides along whenever the model served it;
        *with_proba* additionally inlines the full probability vector
        (off by default: it multiplies the line size by the class count).
        """
        out = {"kind": "window", "index": self.index, "start": self.start,
               "end": self.end, "label": self.label}
        if self.truth is not None:
            out["truth"] = self.truth
        if self.confidence is not None:
            out["confidence"] = round(self.confidence, 4)
        if with_proba and self.proba is not None:
            out["proba"] = [round(float(p), 6) for p in self.proba]
        if self.drift is not None:
            out["drift"] = self.drift.as_dict()
        return out


@dataclass(frozen=True)
class _Pending:
    index: int
    start: int
    end: int
    truth: int | None
    future: object
    panel: np.ndarray  # kept until resolution for adapter replay buffers
    ctx: dict | None = None  # feed-time session state (sessions only)


class StreamScorer:
    """Score a sample stream window by window through a prediction service.

    Opens a stream on *service* (resolving the model — a missing name
    fails here, before any sample is consumed) and must be closed again;
    use it as a context manager.  ``feed`` returns the results that are
    ready *so far* (possibly none, possibly several); ``finish`` drains
    the rest.

    The window's ground truth, when samples carry labels, is the label of
    its **most recent** sample — windows straddling a concept boundary are
    judged against the new concept, which is what makes the accuracy
    signal drop promptly after a shift.

    When the model serves probabilities (every registry family does),
    windows are scored through the batcher's probability path: each
    result carries the top-1 ``confidence`` (and the full ``proba``
    vector), and the drift monitor runs its confidence EWMA instead of
    the label-mix fallback.  *use_proba* forces the choice; the default
    asks the service once at stream open.

    An optional *adapter* (an
    :class:`~repro.adaptation.AdaptationController` or anything with its
    ``observe(panel, result)`` method) sees every resolved window along
    with the panel that produced it — the hook the drift-triggered
    canary retraining loop hangs off.

    An optional *session* (a
    :class:`~repro.streaming.session.StreamSession`) makes the stream
    durable: every resolved window deposits a codec snapshot and bumps
    the session's resume token, and a scorer constructed with a session
    that already carries state *resumes* it — ring buffer, drift EWMAs
    and counters restored bit-identically, so the resumed stream scores
    exactly the windows the uninterrupted one would have.  Relatedly,
    :meth:`swap_version` moves a live stream onto another model version
    in place (the canary-promotion follow path) and :meth:`follow`
    triggers it automatically when a tag reference has moved.

    An optional *journal* (an
    :class:`~repro.observability.AuditJournal`) receives one
    ``drift_flag`` event per flagged window, carrying the monitor's full
    evidence (EWMA fast/slow values, thresholds, window index) — the
    stream-side half of the decision-audit trail.  With tracing enabled
    on the service, the whole stream becomes one trace: a ``stream``
    root span plus one ``stream.window`` span per resolved window, with
    the batcher's queue/assemble/predict spans parented underneath.
    """

    def __init__(self, service, name: str, *, window: int, hop: int | None = None,
                 version=None, monitor: DriftMonitor | None = None,
                 max_inflight: int = 32, queue_timeout: float = 5.0,
                 use_proba: bool | None = None, adapter=None, journal=None,
                 session: StreamSession | None = None):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1; got {max_inflight}")
        if window < 1:
            raise ValueError(f"window must be >= 1; got {window}")
        if hop is not None and hop < 1:
            raise ValueError(f"hop must be >= 1; got {hop}")
        self.service = service
        self.version = version
        self.window = int(window)
        self.hop = int(hop) if hop is not None else self.window
        self.monitor = monitor if monitor is not None else DriftMonitor()
        self.max_inflight = int(max_inflight)
        self.queue_timeout = float(queue_timeout)
        self.adapter = adapter
        self.journal = journal
        self.session = session
        self._use_proba_arg = use_proba  # explicit caller choice, if any
        self.tracer = getattr(service, "tracer", None) or get_tracer()
        self.record, self._stats = service.open_stream(name, version)
        #: the stream's root span: opened here, ended by close().  When
        #: tracing is off this is the shared no-op span and the context
        #: stays None, which turns every per-window trace guard off.
        self._span = self.tracer.begin(
            "stream", model=self.record.name, version=self.record.version)
        self._ctx = self._span.context
        self._windower: SlidingWindower | None = None  # lazy: first sample
        self._last_t: int | None = None  # stream clock of the latest sample
        self._gaps = 0
        self._pending: deque[_Pending] = deque()
        #: resolved ahead of collection (inflight-cap waits); always older
        #: than anything still pending, so collection order is preserved
        self._ready: list[WindowResult] = []
        self._submitted = 0
        self._samples = 0
        self._shifts = 0
        self._closed = False
        try:
            if use_proba is None:
                probe = getattr(service, "serves_proba", None)
                use_proba = bool(probe(name, version)) if probe else False
            self.use_proba = bool(use_proba)
            if session is not None and session.state is not None:
                self._restore(session.state)
        except BaseException:
            # The stream was counted as open above; don't leak the gauge.
            service.close_stream(self.record)
            raise

    # ------------------------------------------------------------------ #

    @property
    def samples(self) -> int:
        """Samples fed so far (window-complete or not)."""
        return self._samples

    @property
    def windows(self) -> int:
        """Windows submitted for scoring so far."""
        return self._submitted

    @property
    def shifts(self) -> int:
        """Windows flagged as shifted so far."""
        return self._shifts

    @property
    def gaps(self) -> int:
        """Stream discontinuities seen so far (non-consecutive ``t``)."""
        return self._gaps

    def feed(self, values, label=None, *, t: int | None = None
             ) -> list[WindowResult]:
        """Push one sample; returns whatever window results are now ready.

        *t* is the sample's position on the source's own clock.  When
        given, a jump (``t != previous t + 1``) is treated as a stream
        **gap** — missing samples, a truncated ragged series — and the
        window buffer is reset, so no window ever silently mixes
        observations from both sides of the discontinuity; window
        ``start``/``end`` indices are then reported on that clock.
        Without *t* the stream is assumed contiguous (the historical
        behaviour, bit-identical).
        """
        if self._closed:
            raise RuntimeError("cannot feed a closed StreamScorer")
        values = np.asarray(values, dtype=np.float64)
        if self._windower is None:
            if values.ndim != 1:
                raise ValueError(
                    f"a sample is a 1-D (n_channels,) vector; got "
                    f"ndim={values.ndim}"
                )
            self._windower = SlidingWindower(len(values), self.window, self.hop)
        if t is not None:
            t = int(t)
            if self._last_t is not None and t != self._last_t + 1:
                self._gaps += 1
                self._windower.reset()
            self._last_t = t
        end = t if t is not None else self._samples
        panel = self._windower.push(values)
        self._samples += 1
        if panel is not None:
            self._submit(panel, label, end)
        return self._collect()

    def finish(self) -> list[WindowResult]:
        """Wait for every outstanding window and return its result."""
        return self._collect(drain=True)

    def close(self) -> None:
        """Release the stream (idempotent): drops the active-streams
        gauge, ends the stream's root span, and makes further ``feed``
        calls fail."""
        if not self._closed:
            self._closed = True
            self.service.close_stream(self.record)
            self._span.end(windows=self._submitted, shifts=self._shifts,
                           samples=self._samples)

    def swap_version(self, version=None):
        """Swap the live stream onto another model version, in place.

        The promotion follow-path for long-lived streams: every window
        still in flight is drained against the old version (order
        preserved — the results land in the ready list ahead of
        anything submitted later), the stream is reopened against
        *version*, and everything else — windower ring, drift-monitor
        EWMAs, window/sample counters, the session — carries over
        untouched.  No window is ever scored twice or skipped: windows
        submitted before the swap resolve on the old version, windows
        after it on the new one, and the index sequence is continuous
        across the boundary.

        Returns the newly resolved
        :class:`~repro.serving.registry.ModelRecord`.
        """
        if self._closed:
            raise RuntimeError("cannot swap a closed StreamScorer")
        while self._pending:
            self._ready.append(self._resolve_head())
        old = self.record
        record, stats = self.service.open_stream(old.name, version)
        try:
            if self._use_proba_arg is None:
                probe = getattr(self.service, "serves_proba", None)
                use_proba = bool(probe(old.name, version)) if probe \
                    else self.use_proba
            else:
                use_proba = bool(self._use_proba_arg)
        except BaseException:
            self.service.close_stream(record)
            raise
        self.service.close_stream(old)
        self.record, self._stats = record, stats
        self.use_proba = use_proba
        self.version = version
        self._span.set("swapped_to", record.version)
        return record

    def follow(self):
        """Swap when this stream's version *reference* points elsewhere.

        Streams pinned to a concrete version number never move.  A
        stream opened against a tag (``"stable"``, ``"canary"``) or
        against the floating latest re-resolves its reference here;
        when a canary promotion (or any publish) has moved it, the
        scorer swaps in place via :meth:`swap_version` and returns the
        new record — otherwise ``None``.  Cheap enough to call once per
        resolved window: resolution rides the registry's memoised
        manifest scan (one ``stat`` per call).
        """
        ref = self.version
        if ref is not None and (not isinstance(ref, str) or ref.isdigit()):
            return None
        registry = getattr(self.service, "registry", None)
        if registry is None:
            return None
        try:
            target = registry.record(self.record.name, ref)
        except KeyError:
            return None
        if target.version == self.record.version:
            return None
        return self.swap_version(ref)

    def __enter__(self) -> "StreamScorer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def _submit(self, panel: np.ndarray, truth, end: int) -> None:
        if len(self._pending) >= self.max_inflight:
            # This stream is ahead of its model: wait on our own oldest
            # window instead of piling further onto the shared queue.
            self._ready.append(self._resolve_head())
        index = self._submitted
        ctx = None
        if self.session is not None:
            # Feed-time state: the ring, the sample clock and the gap
            # count as of *this* window's completion.  The monitor half
            # of the snapshot is taken at resolve time, when the
            # window's outcome has actually updated it.
            ctx = {"windower": self._windower.snapshot(),
                   "samples": self._samples, "submitted": index + 1,
                   "last_t": self._last_t, "gaps": self._gaps}
        if self._ctx is not None:
            # Parent the batcher's queue/assemble/predict spans to this
            # stream rather than to whatever request shares the thread.
            with self.tracer.use_context(self._ctx):
                _, futures = self.service.submit(
                    self.record.name, [panel], self.record.version,
                    queue_timeout=self.queue_timeout,
                    return_proba=self.use_proba,
                )
        else:
            _, futures = self.service.submit(
                self.record.name, [panel], self.record.version,
                queue_timeout=self.queue_timeout, return_proba=self.use_proba,
            )
        self._pending.append(_Pending(
            index=index, start=end - self.window + 1, end=end,
            truth=None if truth is None else int(truth), future=futures[0],
            panel=panel, ctx=ctx,
        ))
        self._submitted += 1

    def _collect(self, drain: bool = False) -> list[WindowResult]:
        out, self._ready = self._ready, []
        while self._pending:
            if not (drain or self._pending[0].future.done()):
                break
            out.append(self._resolve_head())
        return out

    def _resolve_head(self) -> WindowResult:
        head = self._pending.popleft()
        timeout = getattr(self.service, "predict_timeout", 30.0)
        with self.tracer.span("stream.window", parent=self._ctx,
                              index=head.index) as span:
            try:
                outcome = head.future.result(timeout=timeout)
            except FutureTimeoutError as error:
                # The same 503 the batch path answers; on 3.11+ the bare
                # FutureTimeoutError aliases TimeoutError, which transports
                # treat as a socket event — it must not escape looking like
                # one.
                raise ServingError(
                    503, f"window {head.index} prediction timed out after "
                         f"{timeout}s"
                ) from error
            proba = confidence = None
            if self.use_proba:
                label = _key(outcome.label)
                proba = np.asarray(outcome.proba)
                confidence = float(proba.max())
            else:
                label = _key(outcome)
            state = self.monitor.update(label, head.truth, confidence)
            if state.shift:
                self._shifts += 1
                span.set("shift", True)
                span.set("signal", state.signal)
                if self.journal is not None:
                    self.journal.log(
                        "drift_flag", model=self.record.name,
                        version=self.record.version, window=head.index,
                        signal=state.signal,
                        evidence={"state": state.as_dict(),
                                  "windows": state.windows,
                                  "thresholds": self.monitor.config()},
                    )
            self._stats.record_window(shift=state.shift,
                                      confidence=confidence)
            result = WindowResult(index=head.index, start=head.start,
                                  end=head.end, label=label, truth=head.truth,
                                  drift=state, confidence=confidence,
                                  proba=proba,
                                  samples=None if head.ctx is None
                                  else head.ctx["samples"])
            # Observe *before* the snapshot lands in the session, so a
            # resume at this window's token restores an adapter that
            # has already seen it — replayed windows are served from
            # the line cache and never re-observed.
            if self.adapter is not None:
                self.adapter.observe(head.panel, result)
            if self.session is not None and head.ctx is not None:
                self.session.advance(self._snapshot(head))
        return result

    def _snapshot(self, head: _Pending) -> dict:
        """One window's full codec snapshot: feed-time ring state from
        the pending entry plus the monitor state as of this resolution."""
        ctx = head.ctx
        state = {
            "codec": CODEC_VERSION,
            "token": head.index + 1,
            "model": {"name": self.record.name,
                      "version": self.record.version},
            "window": self.window, "hop": self.hop,
            "windower": ctx["windower"],
            "monitor": self.monitor.snapshot(),
            "counters": {"samples": ctx["samples"],
                         "submitted": ctx["submitted"],
                         "last_t": ctx["last_t"], "gaps": ctx["gaps"],
                         "shifts": self._shifts},
        }
        if self.adapter is not None and hasattr(self.adapter, "snapshot"):
            state["adapter"] = self.adapter.snapshot()
        return state

    def _restore(self, state: dict) -> None:
        """Adopt a codec snapshot: ring, monitor, counters — the stream
        continues exactly where the snapshotted one stopped."""
        check_codec(state)
        if state["model"]["name"] != self.record.name:
            raise SessionError(
                409, f"session belongs to model "
                     f"{state['model']['name']!r}, not {self.record.name!r}")
        if state["window"] != self.window or state["hop"] != self.hop:
            raise SessionError(
                409, f"session was windowed {state['window']}/{state['hop']} "
                     f"(window/hop); cannot resume as "
                     f"{self.window}/{self.hop}")
        if state.get("windower") is not None:
            self._windower = SlidingWindower.restore(state["windower"])
        self.monitor.restore(state["monitor"])
        counters = state["counters"]
        self._samples = int(counters["samples"])
        self._submitted = int(counters["submitted"])
        self._last_t = None if counters["last_t"] is None \
            else int(counters["last_t"])
        self._gaps = int(counters["gaps"])
        self._shifts = int(counters["shifts"])
        adapter_state = state.get("adapter")
        if adapter_state is not None and self.adapter is not None \
                and hasattr(self.adapter, "restore"):
            self.adapter.restore(adapter_state)
