"""Durable stream sessions: resume tokens and a snapshot/restore codec.

A stream normally lives exactly one HTTP request: when the TCP
connection drops, the worker dies, or the client machine reboots, the
scorer's windower ring, the drift monitor's EWMAs and the adaptation
buffer all evaporate — the next connection starts a cold stream and the
drift baseline re-warms from nothing.  A :class:`StreamSession` makes
the scorer state *portable*: after every resolved window the scorer
deposits a versioned, JSON-ready snapshot (the **codec**) and bumps a
monotonic **resume token** (the number of windows the session has
emitted).  A client that reconnects with its last token gets the
windows it missed replayed verbatim from a bounded cache and the stream
continues from the exact ring/EWMA state it left — *replay nothing*
(no window is ever re-scored) *and lose nothing* (no window is ever
skipped).

The codec is deliberately plain data — scalars as JSON numbers (CPython
round-trips ``float`` through ``repr`` bit-exactly) and arrays as
base64 of their raw little-endian float64 bytes — so a snapshot
survives ``json.dumps``/``loads`` across the worker pool's unix-socket
side channel byte-for-byte, which is what makes resumed streams
*bit-identical* to uninterrupted ones rather than merely close.

:class:`SessionStore` is the server-side registry of live and suspended
sessions (bounded, TTL-swept) with two overridable hooks —
``_replicate`` and ``_fetch`` — that the multi-process pool uses to
copy session blobs to a rendezvous-hashed peer worker and to pull them
back when a resume lands on a different worker than the one that died.
"""

from __future__ import annotations

import base64
import hashlib
import threading
import time
from collections import deque

import numpy as np

__all__ = [
    "CODEC_VERSION",
    "SessionError",
    "SessionStore",
    "StreamSession",
    "check_codec",
    "decode_array",
    "encode_array",
    "rendezvous_slot",
]

#: Version stamp written into every snapshot.  Bump it whenever the
#: snapshot layout changes shape; ``check_codec`` rejects mismatches so
#: a worker never restores state written by an incompatible build.
CODEC_VERSION = 1


class SessionError(Exception):
    """A session operation the caller got wrong, with its HTTP status.

    Mirrors the shape of :class:`~repro.serving.server.ServingError`
    (``status`` attribute plus a human message) so the NDJSON endpoint
    maps both onto wire responses with the same code path: ``404`` for
    an unknown or expired session, ``409`` for token/state conflicts,
    ``410`` for a token older than the replay cache retains.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)


def encode_array(values: np.ndarray) -> dict:
    """Encode an array as base64 of its raw float64 bytes (JSON-ready).

    Text floats truncate; raw bytes do not.  The snapshot must restore
    the windower ring *bit-identically* or resumed streams would score
    windows that never existed on the uninterrupted timeline.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    return {
        "shape": list(values.shape),
        "b64": base64.b64encode(values.tobytes()).decode("ascii"),
    }


def decode_array(state: dict) -> np.ndarray:
    """Invert :func:`encode_array` back to a float64 array."""
    raw = base64.b64decode(state["b64"].encode("ascii"))
    return np.frombuffer(raw, dtype=np.float64).reshape(
        tuple(state["shape"])).copy()


def check_codec(state: dict) -> None:
    """Reject a snapshot written by an incompatible codec version."""
    found = state.get("codec")
    if found != CODEC_VERSION:
        raise SessionError(
            409, f"snapshot codec version {found!r} is not supported "
                 f"(this build speaks {CODEC_VERSION})")


def rendezvous_slot(key: str, slots) -> int | None:
    """Pick one slot for *key* by highest-random-weight (rendezvous) hash.

    Every worker computes the same answer from the same slot list with
    no coordination, and removing a slot only remaps the keys that
    lived on it — which is exactly the stability the pool needs when a
    worker dies and its sessions must land somewhere deterministic.
    Returns ``None`` for an empty slot list.
    """
    best, best_weight = None, None
    for slot in slots:
        digest = hashlib.md5(f"{slot}|{key}".encode()).digest()
        weight = int.from_bytes(digest[:8], "big")
        if best_weight is None or weight > best_weight \
                or (weight == best_weight and slot < best):
            best, best_weight = int(slot), weight
    return best


class StreamSession:
    """One durable stream: an id, a monotonic token, and the state blob.

    The **token** counts windows the session has emitted; after window
    ``k`` resolves the token is ``k + 1`` and ``state`` is the codec
    snapshot from which window ``k + 1`` can be scored.  A bounded ring
    of recently emitted wire lines (``cache_lines`` of them) lets a
    resume at any recent token replay the exact bytes the client missed
    without re-scoring anything.
    """

    def __init__(self, session_id: str, *, cache_lines: int = 128):
        if cache_lines < 1:
            raise ValueError(f"cache_lines must be >= 1; got {cache_lines}")
        self.id = str(session_id)
        self.token = 0
        self.state: dict | None = None
        self.lines: deque[dict] = deque(maxlen=int(cache_lines))
        self.active = False
        self.epoch = 0
        self.touched = time.time()
        # Serialises owner batches against attachment changes: a handler
        # mutates the session (advance + remember + save) only inside
        # guard(), and a takeover bumps the epoch only under this lock,
        # so the replay cache always covers exactly what the token
        # claims at every point a new owner can observe.
        self._mutate = threading.Lock()

    def guard(self, epoch: int) -> "_OwnerGuard":
        """Enter one owner batch; raises 409 if the attachment moved on.

        The stream handler wraps each feed batch (scorer advance, line
        caching, store save) in ``with session.guard(my_epoch):`` — if a
        resume stole the session meanwhile (its epoch advanced), the
        fenced owner aborts *before* touching any state, and a takeover
        in progress waits for the in-flight batch to land rather than
        observing half of it.
        """
        return _OwnerGuard(self, int(epoch))

    @property
    def samples(self) -> int:
        """Samples folded into ``state`` — the client's resend position.

        A resuming client must replay its sample feed from exactly this
        offset; earlier samples are already inside the snapshot's ring
        and later ones were never captured.
        """
        if self.state is None:
            return 0
        return int(self.state["counters"]["samples"])

    def advance(self, snapshot: dict) -> None:
        """Install the snapshot for the next window; token moves by one.

        The snapshot carries the token it was taken at; anything other
        than ``current + 1`` means windows were dropped or reordered
        between scorer and session, which must never be papered over.
        """
        check_codec(snapshot)
        expected = self.token + 1
        if snapshot.get("token") != expected:
            raise SessionError(
                409, f"snapshot token {snapshot.get('token')!r} breaks "
                     f"monotonicity (expected {expected})")
        self.state = snapshot
        self.token = expected
        self.touched = time.time()

    def remember(self, payload: dict) -> None:
        """Cache one emitted wire line for replay-on-resume."""
        self.lines.append(payload)

    def replay_from(self, token: int) -> list[dict]:
        """The cached wire lines a client at *token* has not seen yet.

        Raises :class:`SessionError` when the client claims to be ahead
        of the session (409 — its token is from another life) or so far
        behind that the bounded cache no longer covers the gap (410 —
        the stream cannot resume without re-scoring, which sessions
        refuse to do by design).
        """
        token = int(token)
        if token < 0:
            raise SessionError(400, f"resume token must be >= 0; got {token}")
        if token > self.token:
            raise SessionError(
                409, f"resume token {token} is ahead of the session "
                     f"(at {self.token})")
        if token == self.token:
            return []
        replay = [line for line in self.lines
                  if int(line.get("token", 0)) > token]
        if len(replay) != self.token - token:
            raise SessionError(
                410, f"session replay cache covers only the last "
                     f"{len(self.lines)} windows; token {token} is too old "
                     f"(session at {self.token})")
        return replay

    def to_blob(self) -> dict:
        """JSON-ready form for replication across the pool side channel."""
        return {
            "id": self.id,
            "token": self.token,
            "state": self.state,
            "lines": list(self.lines),
            "cache_lines": self.lines.maxlen,
        }

    @classmethod
    def from_blob(cls, blob: dict) -> "StreamSession":
        """Rebuild a (suspended) session from :meth:`to_blob` output."""
        session = cls(blob["id"], cache_lines=blob.get("cache_lines") or 128)
        session.token = int(blob["token"])
        session.state = blob.get("state")
        if session.state is not None:
            check_codec(session.state)
        session.lines.extend(blob.get("lines") or ())
        return session


class _OwnerGuard:
    """Context manager for :meth:`StreamSession.guard`."""

    __slots__ = ("_session", "_epoch")

    def __init__(self, session: StreamSession, epoch: int):
        self._session = session
        self._epoch = epoch

    def __enter__(self) -> StreamSession:
        self._session._mutate.acquire()
        if self._session.epoch != self._epoch:
            self._session._mutate.release()
            raise SessionError(
                409, f"session {self._session.id!r} was taken over by a "
                     f"newer attachment")
        return self._session

    def __exit__(self, *exc) -> None:
        self._session._mutate.release()


class SessionStore:
    """Server-side registry of stream sessions, bounded and TTL-swept.

    One store lives on each :class:`~repro.serving.server.PredictionService`;
    the NDJSON endpoint opens, resumes, saves, suspends and finishes
    sessions through it.  The store never persists to disk — durability
    across *process* death comes from the pool subclass replicating
    blobs to a peer worker via the ``_replicate``/``_fetch`` hooks,
    which are deliberate no-ops here.

    All counters are plain unlabelled metrics, exposed by the service
    as the ``repro_session_*`` families.
    """

    def __init__(self, *, max_sessions: int = 256, ttl: float = 3600.0,
                 cache_lines: int = 128):
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1; got {max_sessions}")
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0; got {ttl}")
        from ..serving.metrics import Counter, Gauge

        self.max_sessions = int(max_sessions)
        self.ttl = float(ttl)
        self.cache_lines = int(cache_lines)
        self._lock = threading.Lock()
        self._sessions: dict[str, StreamSession] = {}
        self.opened = Counter()
        self.resumed = Counter()
        self.snapshots = Counter()
        self.replayed = Counter()
        self.handoffs = Counter()
        self.takeovers = Counter()
        self.expired = Counter()
        self.swaps = Counter()
        self.active = Gauge()

    # ------------------------------------------------------------------ #

    def open(self, session_id: str) -> StreamSession:
        """Create a fresh session under *session_id* and mark it attached.

        An id that already exists is a conflict either way: attached
        means two clients are racing for one stream; suspended means
        the caller forgot its resume token and re-opening would fork
        the stream's history.
        """
        with self._lock:
            self._sweep_locked()
            existing = self._sessions.get(session_id)
            if existing is not None:
                if existing.active:
                    raise SessionError(
                        409, f"session {session_id!r} is attached to a live "
                             f"stream")
                raise SessionError(
                    409, f"session {session_id!r} already exists; reconnect "
                         f"with resume=<token>")
            if len(self._sessions) >= self.max_sessions:
                self._evict_locked()
            session = StreamSession(session_id, cache_lines=self.cache_lines)
            session.active = True
            session.epoch = 1
            self._sessions[session_id] = session
            self.opened.inc()
            self.active.inc()
            return session

    def resume(self, session_id: str, token: int
               ) -> tuple[StreamSession, list[dict]]:
        """Re-attach to a suspended session at *token*.

        Returns the session plus the cached wire lines the client has
        not seen (possibly empty).  A session unknown locally is asked
        for via the ``_fetch`` hook before giving up — in the pool that
        is what turns a worker death into a peer handoff.

        A resume against an *attached* session **takes it over**: the
        client is the stream's single writer, so a resume means the old
        connection is dead from where the client stands — even when the
        server never saw a FIN (half-open TCP after a mid-write crash).
        The takeover bumps the session epoch, which fences the previous
        handler out at its next :meth:`StreamSession.guard`; everything
        it had already committed is in the replay cache, so the new
        attachment loses nothing.
        """
        with self._lock:
            self._sweep_locked()
            session = self._sessions.get(session_id)
        if session is None:
            blob = self._fetch(session_id, int(token))
            if blob is None:
                raise SessionError(
                    404, f"unknown or expired session {session_id!r}")
            adopted = StreamSession.from_blob(blob)
            with self._lock:
                current = self._sessions.get(session_id)
                if current is None or (not current.active
                                       and current.token <= adopted.token):
                    self._sessions[session_id] = adopted
                    session = adopted
                elif current.active:
                    raise SessionError(
                        409, f"session {session_id!r} is attached to a live "
                             f"stream")
                else:
                    session = current
            self.handoffs.inc()
        # Waits out any in-flight owner batch, so the replay cache is
        # consistent with the token before we compute the replay; a bad
        # token raises *before* the epoch bump, so a botched resume
        # never fences a healthy stream.
        with session._mutate:
            replay = session.replay_from(int(token))
            taken_over = session.active
            session.epoch += 1
            session.active = True
            session.touched = time.time()
        with self._lock:
            self.resumed.inc()
            self.replayed.inc(len(replay))
            if taken_over:
                self.takeovers.inc()
            else:
                self.active.inc()
        return session, replay

    def save(self, session: StreamSession) -> None:
        """Record one more snapshotted window and replicate the blob."""
        self.snapshots.inc()
        self._replicate(session)

    def suspend(self, session: StreamSession,
                epoch: int | None = None) -> None:
        """Detach a session (client gone, stream resumable later).

        *epoch* fences the call: a handler whose attachment was taken
        over must not detach (or replicate over) the newer owner's
        stream, so it passes the epoch it attached at and the suspend
        becomes a no-op if the session has moved on.
        """
        with session._mutate:
            if epoch is not None and session.epoch != epoch:
                return
            was_active = session.active
            session.active = False
            session.touched = time.time()
        if was_active:
            self.active.dec()
        self._replicate(session)

    def finish(self, session: StreamSession,
               epoch: int | None = None) -> None:
        """Retire a session after a clean end-of-stream (epoch-fenced)."""
        with session._mutate:
            if epoch is not None and session.epoch != epoch:
                return
            was_active = session.active
            session.active = False
        if was_active:
            self.active.dec()
        with self._lock:
            self._sessions.pop(session.id, None)

    def get(self, session_id: str) -> StreamSession | None:
        """The session under *session_id*, if any (introspection)."""
        with self._lock:
            return self._sessions.get(session_id)

    def adopt(self, blob: dict) -> bool:
        """Install a replicated peer blob as a suspended session.

        An attached session is never clobbered, and a stale blob never
        rolls an id's token backwards — replication is at-least-once
        and may arrive out of order.
        """
        session = StreamSession.from_blob(blob)
        with self._lock:
            current = self._sessions.get(session.id)
            if current is not None and (current.active
                                        or current.token > session.token):
                return False
            if current is None and len(self._sessions) >= self.max_sessions:
                self._evict_locked()
            self._sessions[session.id] = session
            return True

    def take(self, session_id: str, token: int) -> dict | None:
        """Hand a suspended session's blob to a resuming peer.

        The session must exist, be detached, and actually cover *token*
        (state plus replay cache); it is removed locally on success so
        exactly one worker serves the resume.
        """
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None or session.active:
                return None
            # Try-lock (never block inside the store lock): losing the
            # race to a concurrent local resume means the session is no
            # longer ours to hand over anyway.
            if not session._mutate.acquire(blocking=False):
                return None
            try:
                if session.active:
                    return None
                try:
                    session.replay_from(int(token))
                except SessionError:
                    return None
                del self._sessions[session_id]
                return session.to_blob()
            finally:
                session._mutate.release()

    # ------------------------------------------------------------------ #

    def _sweep_locked(self) -> None:
        deadline = time.time() - self.ttl
        stale = [sid for sid, session in self._sessions.items()
                 if not session.active and session.touched < deadline]
        for sid in stale:
            del self._sessions[sid]
            self.expired.inc()

    def _evict_locked(self) -> None:
        suspended = [(session.touched, sid)
                     for sid, session in self._sessions.items()
                     if not session.active]
        if not suspended:
            raise SessionError(
                503, f"session store is full ({self.max_sessions} attached "
                     f"sessions)")
        _, oldest = min(suspended)
        del self._sessions[oldest]
        self.expired.inc()

    def _replicate(self, session: StreamSession) -> None:
        """Durability hook: copy *session* somewhere that survives us.

        No-op in-process; the pool subclass sends the blob to a
        rendezvous-hashed peer worker over the unix-socket side
        channel.
        """

    def _fetch(self, session_id: str, token: int) -> dict | None:
        """Recovery hook: find *session_id* beyond this process.

        No-op in-process; the pool subclass asks every peer worker and
        adopts the best-covering blob.
        """
        return None
