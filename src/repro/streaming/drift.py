"""Rolling drift detection over per-window predictions.

The monitor compares a **fast** and a **slow** exponentially weighted
view of the same stream; when the recent past stops looking like the
long-run past, the stream has shifted.  Three signals feed it, used
according to what the stream provides:

* **accuracy** — when ground-truth labels ride along (replayed panels,
  synthetic sources), each window contributes a 0/1 correctness score;
  a shift shows up as the fast accuracy EWMA falling below the slow one
  by more than ``threshold``;
* **confidence** — when the serving path carries probabilities (every
  registry family does), each window contributes its top-1 probability;
  a shift shows up as the fast confidence EWMA falling below the slow
  one by more than ``confidence_threshold``.  This is the unlabelled
  deployment signal of choice: a model scoring data its training
  distribution never produced is *less sure*, even when the labels it
  emits keep the same mix.  Its blind spot is the complement of its
  strength: a shift that swaps inputs among *known* concepts (a clean
  prototype permutation) keeps the model confidently wrong — only the
  accuracy signal can see that one;
* **prediction distribution** — the no-probability fallback: per-label
  frequency EWMAs, compared by total-variation distance.  Once any
  confidence observation has arrived this signal is **retired** — the
  confidence EWMA supersedes the label-mix heuristic, which stays only
  for models that genuinely cannot serve probabilities.  The fast view
  can move at most ``~0.66 x`` the true mix change before the slow view
  catches up, so the default threshold targets *large* mix changes (a
  class collapse); lower it for subtler shifts, at a false-positive
  cost.  A shift that permutes the data without changing the predicted
  mix (a symmetric rotation under a uniform class mix) is invisible to
  this signal by construction.

The slow view *mirrors* the fast view until ``warmup`` windows have
passed — the long-run reference is a snapshot of a genuinely observed
baseline, not a half-initialised average — so the divergence starts at
zero and the ``shift`` flag cannot fire during warmup: a flag means the
stream *changed*, not that the monitor just woke up.  The confidence and
distribution signals additionally require ``persistence`` consecutive
above-threshold windows, because an EWMA of a noisy per-window statistic
wanders past any threshold occasionally; a real change stays there.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["DriftMonitor", "DriftState"]


@dataclass(frozen=True)
class DriftState:
    """The monitor's view after one window."""

    windows: int  # windows observed so far
    divergence: float  # total-variation distance, fast vs slow label mix
    accuracy_fast: float | None  # None until a truth label is seen
    accuracy_slow: float | None
    shift: bool
    signal: str | None  # "accuracy" | "confidence" | "distribution"
    confidence_fast: float | None = None  # None until a confidence is seen
    confidence_slow: float | None = None

    def as_dict(self) -> dict:
        """JSON-ready form for the NDJSON wire format."""
        out = {"divergence": round(self.divergence, 4), "shift": self.shift}
        if self.accuracy_fast is not None:
            out["accuracy_fast"] = round(self.accuracy_fast, 4)
            out["accuracy_slow"] = round(self.accuracy_slow, 4)
        if self.confidence_fast is not None:
            out["confidence_fast"] = round(self.confidence_fast, 4)
            out["confidence_slow"] = round(self.confidence_slow, 4)
        if self.signal is not None:
            out["signal"] = self.signal
        return out


class DriftMonitor:
    """Fast-vs-slow EWMA shift detector over window predictions.

    Parameters
    ----------
    alpha_fast / alpha_slow:
        EWMA rates of the recent and long-run views.  The defaults react
        within ~10 windows and remember ~100.
    threshold:
        Flag a shift when the fast-vs-slow divergence exceeds this — an
        accuracy drop (slow minus fast) or a total-variation distance
        between predicted-label mixes, whichever signal trips first.
    confidence_threshold:
        Flag threshold of the confidence signal: the fast mean top-1
        confidence falling this far below the slow one.  Confidence
        erodes more subtly than accuracy collapses (a drifted model is
        often still *fairly* sure of its wrong answers), and the
        fast-vs-slow geometry caps the observable gap at roughly 0.6x
        the true level drop (the slow view decays toward the new level
        while the fast view falls), so the default is much smaller than
        ``threshold``: 0.08 detects sustained erosions of ~0.15 while
        ``persistence`` keeps stationary noise from flagging.
    warmup:
        Windows during which the slow view shadows the fast one and no
        flag may fire.
    persistence:
        Consecutive above-threshold windows the *confidence* and
        *distribution* signals need before flagging (the accuracy signal
        flags immediately — a genuine accuracy collapse is unambiguous).
    """

    def __init__(self, *, alpha_fast: float = 0.15, alpha_slow: float = 0.02,
                 threshold: float = 0.35, confidence_threshold: float = 0.08,
                 warmup: int = 10, persistence: int = 5):
        if not 0.0 < alpha_slow <= alpha_fast <= 1.0:
            raise ValueError(
                f"need 0 < alpha_slow <= alpha_fast <= 1; "
                f"got {alpha_slow}, {alpha_fast}"
            )
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0; got {threshold}")
        if confidence_threshold <= 0:
            raise ValueError(
                f"confidence_threshold must be > 0; got {confidence_threshold}"
            )
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0; got {warmup}")
        if persistence < 1:
            raise ValueError(f"persistence must be >= 1; got {persistence}")
        self.alpha_fast = float(alpha_fast)
        self.alpha_slow = float(alpha_slow)
        self.threshold = float(threshold)
        self.confidence_threshold = float(confidence_threshold)
        self.warmup = int(warmup)
        self.persistence = int(persistence)
        self._windows = 0
        self._diverging = 0  # consecutive windows past the threshold
        self._conf_diverging = 0  # consecutive confidence drops past threshold
        self._freq_fast: dict[object, float] = {}
        self._freq_slow: dict[object, float] = {}
        self._acc_fast: float | None = None
        self._acc_slow: float | None = None
        self._conf_fast: float | None = None
        self._conf_slow: float | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #

    def config(self) -> dict:
        """The monitor's tuning knobs as a JSON-ready dict.

        Audit-journal evidence: a ``drift_flag`` event that carries the
        thresholds it fired against is reconstructable offline without
        knowing how the monitor was configured at the time.
        """
        return {
            "alpha_fast": self.alpha_fast, "alpha_slow": self.alpha_slow,
            "threshold": self.threshold,
            "confidence_threshold": self.confidence_threshold,
            "warmup": self.warmup, "persistence": self.persistence,
        }

    def snapshot(self) -> dict:
        """The monitor's full mutable state as a JSON-ready dict.

        Part of the stream-session codec
        (:mod:`repro.streaming.session`): scalars stay Python floats
        (``json`` round-trips them bit-exactly via ``repr``) and the
        per-label frequency EWMAs become ``[label, value]`` pairs so
        integer labels survive JSON, which stringifies dict keys.  The
        tuning knobs ride along: a restored monitor must compare
        fast-vs-slow exactly as the one that wrote the snapshot did.
        """
        with self._lock:
            return {
                "config": self.config(),
                "windows": self._windows,
                "diverging": self._diverging,
                "conf_diverging": self._conf_diverging,
                "freq_fast": [[label, value]
                              for label, value in self._freq_fast.items()],
                "freq_slow": [[label, value]
                              for label, value in self._freq_slow.items()],
                "acc_fast": self._acc_fast, "acc_slow": self._acc_slow,
                "conf_fast": self._conf_fast, "conf_slow": self._conf_slow,
            }

    def restore(self, state: dict) -> None:
        """Overwrite this monitor with a :meth:`snapshot`'s state.

        Restores the knobs as well as the EWMAs — resuming a stream
        must continue the *same* detector, so the snapshot's config
        wins over whatever this instance was constructed with.
        """
        config = state["config"]
        with self._lock:
            self.alpha_fast = float(config["alpha_fast"])
            self.alpha_slow = float(config["alpha_slow"])
            self.threshold = float(config["threshold"])
            self.confidence_threshold = float(config["confidence_threshold"])
            self.warmup = int(config["warmup"])
            self.persistence = int(config["persistence"])
            self._windows = int(state["windows"])
            self._diverging = int(state["diverging"])
            self._conf_diverging = int(state["conf_diverging"])
            self._freq_fast = {label: float(value)
                               for label, value in state["freq_fast"]}
            self._freq_slow = {label: float(value)
                               for label, value in state["freq_slow"]}
            self._acc_fast = state["acc_fast"]
            self._acc_slow = state["acc_slow"]
            self._conf_fast = state["conf_fast"]
            self._conf_slow = state["conf_slow"]

    def update(self, predicted, truth=None, confidence=None) -> DriftState:
        """Record one window's prediction (plus truth and top-1
        confidence when known) and return the monitor's updated view.

        Parameters
        ----------
        predicted:
            The window's predicted label (any hashable / numpy scalar).
        truth:
            Optional ground-truth label; feeds the accuracy signal.
        confidence:
            Optional top-1 probability of the prediction; feeds the
            confidence signal and permanently retires the label-mix
            fallback from the first observation on.

        Returns
        -------
        DriftState
            Frozen snapshot; ``shift`` is ``True`` when any enabled
            signal fired this window.
        """
        with self._lock:
            self._windows += 1
            self._update_distribution(predicted)
            if truth is not None:
                self._update_accuracy(float(predicted == truth))
            if confidence is not None:
                self._update_confidence(float(confidence))
            if self._windows <= self.warmup:
                # The long-run reference is the state of the observed
                # baseline, not a half-initialised average.
                self._freq_slow = dict(self._freq_fast)
                self._acc_slow = self._acc_fast
                self._conf_slow = self._conf_fast
            divergence = 0.5 * sum(
                abs(self._freq_fast.get(label, 0.0)
                    - self._freq_slow.get(label, 0.0))
                for label in set(self._freq_fast) | set(self._freq_slow)
            )
            drop = 0.0
            if self._acc_fast is not None:
                drop = max(0.0, self._acc_slow - self._acc_fast)
            conf_drop = 0.0
            if self._conf_fast is not None:
                conf_drop = max(0.0, self._conf_slow - self._conf_fast)
            self._diverging = self._diverging + 1 \
                if divergence > self.threshold else 0
            self._conf_diverging = self._conf_diverging + 1 \
                if conf_drop > self.confidence_threshold else 0
            signal = None
            if self._windows > self.warmup:
                if drop > self.threshold:
                    signal = "accuracy"
                elif self._conf_diverging >= self.persistence:
                    signal = "confidence"
                elif self._conf_fast is None \
                        and self._diverging >= self.persistence:
                    # The label-mix heuristic serves only streams whose
                    # model cannot report how sure it is.
                    signal = "distribution"
            return DriftState(
                windows=self._windows, divergence=divergence,
                accuracy_fast=self._acc_fast, accuracy_slow=self._acc_slow,
                confidence_fast=self._conf_fast,
                confidence_slow=self._conf_slow,
                shift=signal is not None, signal=signal,
            )

    def _update_distribution(self, predicted) -> None:
        predicted = _key(predicted)
        for freq, alpha in ((self._freq_fast, self.alpha_fast),
                            (self._freq_slow, self.alpha_slow)):
            if not freq:
                # Initialise both views to the first observation so the
                # frequencies always sum to one and the divergence starts
                # at zero — no warmup artifact from different alphas.
                freq[predicted] = 1.0
                continue
            for label in list(freq):
                freq[label] *= 1.0 - alpha
            freq[predicted] = freq.get(predicted, 0.0) + alpha

    def _update_accuracy(self, correct: float) -> None:
        if self._acc_fast is None:
            self._acc_fast = self._acc_slow = correct
        else:
            self._acc_fast += self.alpha_fast * (correct - self._acc_fast)
            self._acc_slow += self.alpha_slow * (correct - self._acc_slow)

    def _update_confidence(self, confidence: float) -> None:
        if self._conf_fast is None:
            self._conf_fast = self._conf_slow = confidence
        else:
            self._conf_fast += self.alpha_fast * (confidence - self._conf_fast)
            self._conf_slow += self.alpha_slow * (confidence - self._conf_slow)


def _key(label):
    """Hashable, numpy-scalar-free form of a predicted label."""
    item = getattr(label, "item", None)
    return item() if callable(item) else label
