"""Bounded in-memory flight recorder for recently completed traces.

The flight recorder is the "what just happened?" tool: a ring buffer of
the most recent completed traces plus a separate retention shelf for the
slowest-N ever seen, so a p99 spike that happened two minutes ago is
still inspectable after thousands of fast requests have flowed past it.
It is the sink behind ``GET /v1/debug/traces`` and the ``repro trace``
CLI.

Spans arrive one at a time (from
:class:`~repro.observability.trace.Tracer`) and are grouped by
``trace_id`` in a bounded staging dict; a trace *completes* when its
root span — the one with no parent — ends, which by construction is the
last span of the request/stream it describes.  Completed traces move to
the ring; open traces that never complete (a crashed stream, an
abandoned id) are evicted oldest-first once the staging dict hits its
cap, so memory stays bounded no matter what the traffic does.

Everything is guarded by one lock; the recorder is shared by the HTTP
handler threads and the batcher workers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque


class FlightRecorder:
    """Ring buffer of recent traces with slowest-N retention.

    Parameters
    ----------
    capacity:
        How many completed traces the recency ring keeps.  Oldest out
        first.
    slowest:
        How many traces the slowest-shelf keeps, ranked by root-span
        duration.  A trace slower than the current shelf minimum evicts
        that minimum; the shelf is how rare slow requests survive being
        pushed out of the recency ring.
    max_open:
        Cap on traces still being assembled (root span not yet ended).
        Exceeding it drops the oldest open trace wholesale.
    max_spans_per_trace:
        Cap on spans collected for a single trace; later spans of an
        over-budget trace are dropped (the trace itself survives).
    """

    def __init__(self, *, capacity: int = 128, slowest: int = 16,
                 max_open: int = 256, max_spans_per_trace: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.slowest = int(slowest)
        self.max_open = int(max_open)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=self.capacity)
        self._slow: list = []          # completed traces, slowest-N
        self._open: OrderedDict = OrderedDict()   # trace_id -> [spans]
        self._completed = 0
        self._dropped_open = 0

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #

    def record(self, span) -> None:
        """Add one completed :class:`~repro.observability.trace.Span`.

        Root spans (``parent_id is None``) seal their trace: the
        accumulated spans become a trace entry in the recency ring and,
        if slow enough, on the slowest shelf.
        """
        with self._lock:
            spans = self._open.get(span.trace_id)
            if spans is None:
                spans = []
                self._open[span.trace_id] = spans
                while len(self._open) > self.max_open:
                    self._open.popitem(last=False)
                    self._dropped_open += 1
            if len(spans) < self.max_spans_per_trace:
                spans.append(span)
            if span.parent_id is None:
                self._open.pop(span.trace_id, None)
                self._complete(span, spans)

    def _complete(self, root, spans) -> None:
        entry = {
            "trace_id": root.trace_id,
            "root": root.name,
            "start": round(root.start, 6),
            "duration_ms": round(root.duration * 1000.0, 3),
            "spans": [s.as_dict() for s in spans],
        }
        self._completed += 1
        self._recent.append(entry)
        if self.slowest > 0:
            self._slow.append(entry)
            if len(self._slow) > self.slowest:
                self._slow.sort(key=lambda e: e["duration_ms"], reverse=True)
                del self._slow[self.slowest:]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def snapshot(self, *, limit: int | None = None,
                 slowest: bool = False) -> list:
        """Completed traces, newest first (or slowest first).

        ``slowest=True`` reads the slowest-N shelf instead of the
        recency ring.  *limit* truncates the result.  Entries are plain
        dicts (JSON-ready), already detached from recorder internals.
        """
        with self._lock:
            if slowest:
                entries = sorted(self._slow, key=lambda e: e["duration_ms"],
                                 reverse=True)
            else:
                entries = list(reversed(self._recent))
        if limit is not None:
            entries = entries[:max(0, int(limit))]
        return entries

    def stats(self) -> dict:
        """Recorder occupancy counters (for ``/v1/debug/traces`` meta)."""
        with self._lock:
            return {
                "completed": self._completed,
                "recent": len(self._recent),
                "slowest": len(self._slow),
                "open": len(self._open),
                "dropped_open": self._dropped_open,
                "capacity": self.capacity,
            }

    def clear(self) -> None:
        """Drop every stored trace and all assembly state (tests use
        this to isolate scenarios sharing one recorder)."""
        with self._lock:
            self._recent.clear()
            self._slow.clear()
            self._open.clear()
