"""Decision-audit journal: every adaptation decision, with its evidence.

When a canary promotes at 3am, ``/metrics`` says *that* it happened;
this journal says *why*.  Every consequential event in the
drift→retrain→shadow→promote loop is appended as one JSON object per
line, carrying the evidence the decision was made from — EWMA fast/slow
values and thresholds for drift flags, window indices and trigger
signals for retrains, agreement and confidence statistics plus model
digests for verdicts — so any decision is reconstructable offline from
the journal alone, with no access to the process that made it.

Event kinds and their required fields are pinned in
:data:`EVENT_SCHEMA`; :func:`validate_event` enforces them at write and
read time, so a journal that parses is also a journal that replays.
:func:`replay_decisions` is that offline replay: it folds a journal
back into the promote/rollback decision list and the drift/retrain
counts — the scenario harness asserts this reconstruction is
bit-identical to the decisions the live run produced.

Surfaced via ``repro audit`` (summarise / validate a journal file) and
wired into :class:`~repro.streaming.scorer.StreamScorer` (drift flags)
and :class:`~repro.adaptation.controller.AdaptationController`
(everything else).
"""

from __future__ import annotations

import json
import threading
import time as _time

__all__ = ["AuditJournal", "EVENT_SCHEMA", "read_journal",
           "replay_decisions", "validate_event"]

#: required top-level fields per event kind (beyond the envelope's
#: ``kind`` / ``seq`` / ``time``).  ``evidence`` payloads are free-form
#: dicts by design — each signal carries different numbers — but the
#: envelope is strict so replay never guesses.
EVENT_SCHEMA = {
    "drift_flag": ("model", "window", "signal", "evidence"),
    "retrain": ("model", "stable_version", "canary_version",
                "canary_digest", "trigger_signal", "trained_on_windows"),
    "retrain_failed": ("model", "error"),
    "retrain_skipped": ("model", "reason"),
    "shadow_verdict": ("model", "window", "stable_label", "canary_label",
                       "agree"),
    "promotion": ("model", "stable_version", "canary_version", "decision"),
    "rollback": ("model", "stable_version", "canary_version", "decision"),
}

#: the two kinds whose ``decision`` payload is an
#: :class:`~repro.adaptation.controller.AdaptationDecision` ``as_dict()``
DECISION_KINDS = ("promotion", "rollback")


def validate_event(event: dict) -> dict:
    """Check one event against :data:`EVENT_SCHEMA`; return it unchanged.

    Raises ``ValueError`` naming the problem: unknown kind, or the
    sorted list of missing required fields.  Used on both sides of the
    file — the journal validates before writing, readers validate after
    parsing — so schema drift fails loudly at the boundary it crossed.
    """
    kind = event.get("kind")
    if kind not in EVENT_SCHEMA:
        raise ValueError(f"unknown audit event kind: {kind!r}")
    missing = [f for f in EVENT_SCHEMA[kind] if f not in event]
    if missing:
        raise ValueError(
            f"audit event {kind!r} missing fields: {sorted(missing)}")
    return event


class AuditJournal:
    """Append-only journal of adaptation decisions and their evidence.

    Events are validated, stamped with a monotonic ``seq`` and a
    wall-clock ``time``, kept in memory (``events()``) and — when
    *path* is given — appended to a JSONL file, flushed per line so a
    crash loses at most the event being written.

    One journal instance is shared by the scorer (drift flags) and the
    controller (retrain/shadow/promote/rollback) of a serving loop, so
    ``seq`` is a total order over the loop's decision history.

    Parameters
    ----------
    path:
        JSONL file to append to (``None`` = in-memory only, the
        scenario harness's mode).
    logger:
        Optional :class:`~repro.observability.logging.StructuredLogger`
        that mirrors each event as a structured log line (``event:
        "audit"``) for live tailing.
    max_memory:
        Cap on the in-memory event list; once exceeded the oldest
        events are dropped from memory (the file keeps everything).
    """

    def __init__(self, path=None, *, logger=None, max_memory: int = 4096):
        self.path = path
        self.logger = logger
        self.max_memory = int(max_memory)
        self._events: list = []
        self._seq = 0
        self._lock = threading.Lock()
        self._file = None

    def log(self, kind: str, **fields) -> dict:
        """Validate, stamp, store, and (if filed) persist one event.

        Returns the completed event dict.  Raises ``ValueError`` when
        the fields do not satisfy :data:`EVENT_SCHEMA` for *kind* —
        call sites must supply their evidence, not trim it.
        """
        event = {"kind": kind, **fields}
        validate_event(event)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            event.setdefault("time", round(_time.time(), 3))
            self._events.append(event)
            if len(self._events) > self.max_memory:
                del self._events[: len(self._events) - self.max_memory]
            if self.path is not None:
                if self._file is None:
                    self._file = open(self.path, "a", encoding="utf-8")
                self._file.write(json.dumps(event) + "\n")
                self._file.flush()
        if self.logger is not None:
            self.logger.event("audit", kind=kind,
                              model=event.get("model"), seq=event["seq"])
        return event

    def events(self, kind: str | None = None) -> list:
        """The in-memory events, optionally filtered to one *kind*;
        returned as copies in ``seq`` order."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        return events

    def close(self) -> None:
        """Flush and close the JSONL file, if one was opened."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


def read_journal(path) -> list:
    """Parse and validate a JSONL audit journal file.

    Returns the events in file order.  Raises ``ValueError`` (with the
    1-based line number) on unparseable lines or schema violations —
    a journal must be fully trustworthy or not trusted at all.
    """
    events = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            try:
                validate_event(event)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            events.append(event)
    return events


def replay_decisions(events) -> dict:
    """Reconstruct the adaptation history from journal *events* alone.

    The offline half of the audit contract: folding the journal back
    yields the same promote/rollback decisions the live loop produced
    (``decisions`` holds the verbatim
    :class:`~repro.adaptation.controller.AdaptationDecision` dicts, in
    ``seq``/file order), plus the counts a report would summarise.  The
    scenario harness's reconstruction test compares this output
    bit-identically against the live :class:`ScenarioReport`.
    """
    events = list(events)
    decisions = []
    counts = {"drift_flags": 0, "retrainings": 0, "retrain_failures": 0,
              "promotions": 0, "rollbacks": 0, "shadow_windows": 0}
    models = set()
    for event in events:
        validate_event(event)
        kind = event["kind"]
        models.add(event.get("model"))
        if kind == "drift_flag":
            counts["drift_flags"] += 1
        elif kind == "retrain":
            counts["retrainings"] += 1
        elif kind == "retrain_failed":
            counts["retrain_failures"] += 1
        elif kind == "shadow_verdict":
            counts["shadow_windows"] += 1
        elif kind in DECISION_KINDS:
            counts["promotions" if kind == "promotion" else "rollbacks"] += 1
            decisions.append(event["decision"])
    return {"events": len(events),
            "models": sorted(m for m in models if m is not None),
            "decisions": decisions, **counts}
