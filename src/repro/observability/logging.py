"""Shared structured JSON logger for the serving/streaming/adaptation stack.

PR 3's ``--access-log`` printed ad-hoc JSON lines from the HTTP handler;
the scorer and controller had no logging story at all.  This module
gives every component the same one: a :class:`StructuredLogger` that
writes one JSON object per line, each carrying an ``event`` name, an
ISO-8601 UTC ``time``, and whatever key/value evidence the call site
attaches — machine-parseable (``jq``-able) and stable-keyed, never
printf-formatted prose.

Design points:

* stdlib-only and dependency-free — it writes to any file-like stream
  (default ``sys.stderr``) under a lock, no handlers/formatters
  hierarchy to configure;
* field order is deterministic (``event`` then ``time`` then sorted
  extras) so log diffs are meaningful;
* a disabled logger (``enabled=False``) costs one attribute check per
  call, matching the tracing module's "near-zero when off" budget;
* values must be JSON-serialisable; anything that is not is repr()'d
  rather than raising — a log line must never take down a handler.

The access log keeps its PR 3 contract: the same ``time`` / ``client``
/ ``method`` / ``path`` / ``status`` / ``bytes`` / ``ms`` keys, now
joined by ``event: "access"`` and emitted through this logger.
"""

from __future__ import annotations

import datetime as _dt
import json
import sys
import threading

__all__ = ["StructuredLogger", "get_logger"]


def _iso_now() -> str:
    """Current UTC time, second resolution, ISO-8601 with ``Z`` suffix."""
    return _dt.datetime.now(_dt.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _jsonable(value):
    """Pass JSON-native values through; repr() anything exotic so a log
    call can never raise from inside a request handler."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class StructuredLogger:
    """One-JSON-object-per-line event logger shared across components.

    Parameters
    ----------
    stream:
        File-like target; defaults to ``sys.stderr`` (resolved at emit
        time so pytest's capsys and CLI redirections both see lines).
    component:
        Optional fixed ``component`` field stamped on every event —
        ``server`` / ``scorer`` / ``controller`` — so one merged stderr
        stream stays attributable.
    enabled:
        When ``False`` every :meth:`event` call returns immediately.
    """

    def __init__(self, *, stream=None, component: str | None = None,
                 enabled: bool = True):
        self.enabled = bool(enabled)
        self.component = component
        self._stream = stream
        self._lock = threading.Lock()

    def child(self, component: str) -> "StructuredLogger":
        """A logger sharing this one's stream/enabled state but stamping
        a different ``component`` field."""
        logger = StructuredLogger(stream=self._stream, component=component,
                                  enabled=self.enabled)
        logger._lock = self._lock
        return logger

    def event(self, name: str, **fields) -> None:
        """Emit one structured event line: ``{"event": name, ...}``.

        *fields* become top-level keys (sorted for deterministic
        output); ``time`` defaults to now-UTC but an explicit
        ``time=...`` field wins, which keeps the access log's
        caller-computed timestamp authoritative.
        """
        if not self.enabled:
            return
        record = {"event": name,
                  "time": fields.pop("time", None) or _iso_now()}
        if self.component is not None:
            record["component"] = self.component
        for key in sorted(fields):
            record[key] = _jsonable(fields[key])
        line = json.dumps(record)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            print(line, file=stream, flush=True)


#: process-wide default logger (stderr, no component stamp)
_DEFAULT = StructuredLogger()


def get_logger(component: str | None = None) -> StructuredLogger:
    """The shared default logger, optionally stamped with *component*.

    Components that are not handed an explicit logger log here, so a
    process's structured events all land on one stderr stream.
    """
    if component is None:
        return _DEFAULT
    return _DEFAULT.child(component)
