"""Observability layer: tracing, flight recorder, audit journal, logging.

This package is the "what is the system doing, and why did it do that?"
layer over the serving→streaming→adaptation stack:

* :mod:`~repro.observability.trace` — stdlib trace contexts and
  per-stage spans (queue-wait, batch assembly, predict, serialize,
  window hops, retrains), contextvar-propagated, near-free when off;
* :mod:`~repro.observability.flightrecorder` — a bounded in-memory ring
  of recent traces with slowest-N retention, served at
  ``/v1/debug/traces`` and via ``repro trace``;
* :mod:`~repro.observability.audit` — the JSONL decision-audit journal:
  every drift flag, retrain, shadow verdict, promotion, and rollback
  with the evidence behind it, replayable offline via ``repro audit``;
* :mod:`~repro.observability.logging` — the shared structured JSON
  logger that the server's access log, scorer, and controller emit
  through.

Everything here is stdlib-only and dependency-free by design: the
observability layer must run everywhere the serving layer runs.
"""

from .audit import (AuditJournal, EVENT_SCHEMA, read_journal,
                    replay_decisions, validate_event)
from .flightrecorder import FlightRecorder
from .logging import StructuredLogger, get_logger
from .trace import (Span, SpanContext, Tracer, configure_tracing,
                    get_tracer, worker_export_path)

__all__ = [
    "AuditJournal",
    "EVENT_SCHEMA",
    "FlightRecorder",
    "Span",
    "SpanContext",
    "StructuredLogger",
    "Tracer",
    "configure_tracing",
    "get_logger",
    "get_tracer",
    "read_journal",
    "replay_decisions",
    "validate_event",
    "worker_export_path",
]
