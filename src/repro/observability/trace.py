"""End-to-end request tracing: trace context, spans, and a tracer.

The serving stack's ``/metrics`` counters answer "how much, how often";
they cannot answer "where did *this* request spend its time".  This
module adds the missing per-request dimension with three stdlib-only
pieces:

* a **trace context** — ``(trace_id, span_id)`` carried in a
  :class:`contextvars.ContextVar`, so a span opened in an HTTP handler
  is the parent of the spans the prediction service and micro-batcher
  record underneath it, without any API threading the ids by hand.
  Cross-thread hops (handler thread → batcher worker) capture the
  context explicitly at the queue boundary and re-parent with it;
* **spans** — one named, timed unit of work each (``http.request``,
  ``serve.predict``, ``batcher.queue``, ``batcher.predict``,
  ``model.load``, ``stream.window``, ``adapt.retrain``), with free-form
  attributes (model, version, batch size, shift flag);
* a **tracer** — the on/off switch and the sink.  Completed spans go to
  a :class:`~repro.observability.flightrecorder.FlightRecorder` (the
  ``/v1/debug/traces`` ring buffer) and, optionally, to a JSONL export
  file, one span object per line.

The tracer is **disabled by default** and built to cost nearly nothing
that way: every instrumentation site guards on the plain attribute read
``tracer.enabled`` (no lock, no call) or receives the shared no-op span,
so the serving hot path pays an attribute check per request, not an
allocation.  ``benchmarks/bench_perf_tracing.py`` pins that budget.

Components accept an explicit :class:`Tracer` for isolated tests; the
process-wide default (``get_tracer()`` / ``configure_tracing()``) is
what ``repro serve --trace`` switches on.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from .flightrecorder import FlightRecorder

__all__ = ["Span", "SpanContext", "SpanHandle", "Tracer", "configure_tracing",
           "get_tracer", "worker_export_path"]

#: the ambient span of the current logical context (thread / task);
#: ``None`` outside any traced request
_CURRENT: ContextVar["SpanContext | None"] = ContextVar(
    "repro_trace_context", default=None)


def _new_id() -> str:
    """A fresh 64-bit hex id (trace and span ids share the format)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagated part of a span: which trace, which parent.

    Frozen and tiny on purpose — this is what crosses thread boundaries
    (captured at the batcher's queue, re-applied in its worker), so it
    must be safe to share and cheap to copy.
    """

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One completed, named, timed unit of work inside a trace.

    ``start`` is wall-clock seconds (for display and log correlation);
    ``duration`` comes from the monotonic clock (immune to NTP steps).
    ``attributes`` carry the site-specific evidence: model and version,
    batch size, whether a window was flagged as drifted, an error type.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    duration: float
    attributes: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready form — the flight-recorder and export-file shape."""
        out = {
            "trace_id": self.trace_id, "span_id": self.span_id,
            "name": self.name, "start": round(self.start, 6),
            "duration_ms": round(self.duration * 1000.0, 3),
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.attributes:
            out["attributes"] = self.attributes
        return out


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled.

    One module-level instance serves every call site: entering, exiting,
    setting attributes and ending are all no-ops, and ``context`` is
    ``None`` so downstream propagation guards stay off too.
    """

    __slots__ = ()

    context = None

    def __enter__(self) -> "_NoopSpan":
        """No-op context manager entry (returns itself)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """No-op context manager exit."""
        return None

    def set(self, key: str, value) -> None:
        """Discard the attribute (tracing is off)."""

    def end(self, **attributes) -> None:
        """Discard the end call (tracing is off)."""


NOOP_SPAN = _NoopSpan()


class SpanHandle:
    """A live span: finish it by ``end()`` or by leaving its ``with`` block.

    Used two ways, matching the two lifetimes the stack needs:

    * **scoped** — ``with tracer.span("serve.predict", model=name):`` —
      entering installs the span as the ambient context (children pick
      it up automatically), exiting restores the previous context and
      records the span;
    * **explicit** — ``handle = tracer.begin("stream", ...)`` …
      ``handle.end()`` — for spans that outlive any single call frame
      (a stream's root span lives from scorer open to scorer close) and
      therefore must not hijack the ambient context.

    ``end`` is idempotent; attributes can be added any time before it.
    """

    __slots__ = ("_tracer", "_name", "_context", "_parent_id", "_start_mono",
                 "_start_wall", "_attributes", "_token", "_done")

    def __init__(self, tracer: "Tracer", name: str,
                 parent: SpanContext | None, attributes: dict):
        self._tracer = tracer
        self._name = name
        trace_id = parent.trace_id if parent is not None else _new_id()
        self._context = SpanContext(trace_id, _new_id())
        self._parent_id = parent.span_id if parent is not None else None
        self._start_mono = time.monotonic()
        self._start_wall = time.time()
        self._attributes = attributes
        self._token = None
        self._done = False

    @property
    def context(self) -> SpanContext:
        """This span's :class:`SpanContext` — pass it across threads to
        parent work done elsewhere to this span."""
        return self._context

    def set(self, key: str, value) -> None:
        """Attach one attribute (overwrites a same-named earlier one)."""
        self._attributes[key] = value

    def __enter__(self) -> "SpanHandle":
        """Install this span as the ambient context for child spans."""
        self._token = _CURRENT.set(self._context)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Restore the previous ambient context and record the span."""
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self._attributes.setdefault("error", exc_type.__name__)
        self.end()

    def end(self, **attributes) -> None:
        """Finish the span (idempotent) and hand it to the tracer's sinks."""
        if self._done:
            return
        self._done = True
        if attributes:
            self._attributes.update(attributes)
        self._tracer._finish(Span(
            trace_id=self._context.trace_id, span_id=self._context.span_id,
            parent_id=self._parent_id, name=self._name,
            start=self._start_wall,
            duration=time.monotonic() - self._start_mono,
            attributes=self._attributes,
        ))


class Tracer:
    """The tracing switchboard: on/off flag, span factory, and sinks.

    Parameters
    ----------
    enabled:
        Start recording immediately.  Instrumentation sites read the
        public ``enabled`` attribute as their fast-path guard, so
        flipping it at runtime takes effect on the next request.
    recorder:
        The :class:`~repro.observability.flightrecorder.FlightRecorder`
        completed spans land in (``None`` = keep nothing in memory).
    export_path:
        Optional JSONL file: every completed span is appended as one
        JSON object per line — the offline companion to the in-memory
        recorder.  Opened lazily on the first span, closed by
        :meth:`close`.
    """

    def __init__(self, *, enabled: bool = False,
                 recorder: FlightRecorder | None = None,
                 export_path=None):
        self.enabled = bool(enabled)
        self.recorder = recorder
        self.export_path = export_path
        self._export_file = None
        self._export_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # span creation
    # ------------------------------------------------------------------ #

    def span(self, name: str, *, parent: SpanContext | None = None,
             **attributes):
        """A scoped span: ``with tracer.span("serve.predict", model=m):``.

        While disabled this returns the shared no-op span — no
        allocation, no contextvar write.  *parent* overrides the ambient
        context (the usual case leaves it ``None`` and inherits
        whatever span is current on this thread).
        """
        if not self.enabled:
            return NOOP_SPAN
        if parent is None:
            parent = _CURRENT.get()
        return SpanHandle(self, name, parent, attributes)

    def begin(self, name: str, *, parent: SpanContext | None = None,
              **attributes):
        """An explicit-lifetime span: finish it with ``handle.end()``.

        Unlike :meth:`span` used as a context manager, the handle never
        installs itself as the ambient context — long-lived roots (a
        stream's whole lifetime) must not leak their identity into
        unrelated work on the same thread.  Returns the no-op span while
        disabled.
        """
        if not self.enabled:
            return NOOP_SPAN
        if parent is None:
            parent = _CURRENT.get()
        return SpanHandle(self, name, parent, attributes)

    def record_span(self, name: str, *, start: float, end: float,
                    parent: SpanContext | None, **attributes) -> None:
        """Record an already-timed span from explicit monotonic stamps.

        The batcher path: ``submit`` stamps the queue entry, the worker
        stamps dequeue/predict — by the time anyone can *open* a span the
        work already happened, so the span is reconstructed after the
        fact.  *start*/*end* are ``time.monotonic()`` readings; the
        wall-clock start is derived from the current clock offset.
        ``parent=None`` starts a fresh trace.
        """
        if not self.enabled:
            return
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = _new_id(), None
        now_mono = time.monotonic()
        self._finish(Span(
            trace_id=trace_id, span_id=_new_id(), parent_id=parent_id,
            name=name, start=time.time() - (now_mono - start),
            duration=max(0.0, end - start), attributes=attributes,
        ))

    # ------------------------------------------------------------------ #
    # context propagation
    # ------------------------------------------------------------------ #

    def current(self) -> SpanContext | None:
        """The ambient :class:`SpanContext` of this thread/task (or
        ``None`` outside any traced request)."""
        return _CURRENT.get()

    @contextmanager
    def use_context(self, context: SpanContext | None):
        """Make *context* ambient for the duration of the ``with`` block.

        The hand-carried side of propagation: a stream scorer holds its
        root span's context and installs it around each submit, so the
        batcher's captured parent is the stream, not whatever request
        happens to share the thread.
        """
        token = _CURRENT.set(context)
        try:
            yield
        finally:
            _CURRENT.reset(token)

    # ------------------------------------------------------------------ #
    # sinks
    # ------------------------------------------------------------------ #

    def _finish(self, span: Span) -> None:
        if self.recorder is not None:
            self.recorder.record(span)
        if self.export_path is not None:
            line = json.dumps(span.as_dict())
            with self._export_lock:
                if self._export_file is None:
                    self._export_file = open(self.export_path, "a",
                                             encoding="utf-8")
                self._export_file.write(line + "\n")
                self._export_file.flush()

    def close(self) -> None:
        """Flush and close the JSONL export file, if one was opened."""
        with self._export_lock:
            if self._export_file is not None:
                self._export_file.close()
                self._export_file = None


#: the process-wide default tracer — disabled until `configure_tracing`
_DEFAULT = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default :class:`Tracer`.

    Serving components fall back to this when no explicit tracer is
    passed, so ``repro serve --trace`` (which configures the default)
    lights up the whole stack without plumbing.
    """
    return _DEFAULT


def configure_tracing(*, enabled: bool | None = None,
                      capacity: int | None = None,
                      slowest: int | None = None,
                      export_path=None) -> Tracer:
    """Reconfigure the process-wide default tracer in place.

    Parameters
    ----------
    enabled:
        Switch tracing on or off (``None`` = leave as is).  Switching on
        attaches a fresh
        :class:`~repro.observability.flightrecorder.FlightRecorder`
        when none is attached yet.
    capacity / slowest:
        Flight-recorder sizing (recent-trace ring, slowest-N retention);
        passing either rebuilds the recorder.
    export_path:
        JSONL span export file (``None`` = leave the current setting).

    Returns the default tracer, for convenience.
    """
    tracer = _DEFAULT
    if capacity is not None or slowest is not None \
            or (enabled and tracer.recorder is None):
        tracer.recorder = FlightRecorder(
            capacity=capacity if capacity is not None else 128,
            slowest=slowest if slowest is not None else 16,
        )
    if export_path is not None:
        tracer.close()
        tracer.export_path = export_path
    if enabled is not None:
        tracer.enabled = bool(enabled)
    return tracer


def worker_export_path(path, worker: int | str):
    """Per-worker variant of a span-export *path*: ``spans.jsonl`` ->
    ``spans.w0.jsonl`` for worker slot 0.

    The pre-fork serving pool gives every worker its own JSONL file —
    concurrent appends from multiple processes would interleave lines
    through independent file offsets, so sharing one file is not safe.
    """
    import os.path

    root, ext = os.path.splitext(os.fspath(path))
    return f"{root}.w{worker}{ext or '.jsonl'}"
