"""Model serving: versioned registry, micro-batching engine, HTTP API.

Three layers turn a trained classifier into a prediction service:

* :mod:`repro.serving.registry` — publish/get/list/tag of content-hashed
  ``.npz`` artifacts with fit-time metadata;
* :mod:`repro.serving.batcher` — coalesce single-series requests into
  panels for throughput;
* :mod:`repro.serving.server` — a stdlib ``http.server`` JSON API
  (``/healthz``, ``/metrics``, ``/v1/models``,
  ``/v1/models/<name>/predict``) with bounded-queue backpressure (429),
  body-size admission control (413) and LRU model lifecycle;
* :mod:`repro.serving.metrics` — stdlib Prometheus-format counters and
  histograms behind the ``/metrics`` endpoint;
* :mod:`repro.serving.pool` — the pre-fork, shared-nothing worker pool
  (``repro serve --workers N``): one supervisor, N forked workers each
  owning a full service, kernel-balanced accepts, respawn-with-backoff,
  and pool-wide ``/metrics`` aggregation over a unix-socket side channel.

The CLI front-ends are ``repro train``, ``repro predict`` and
``repro serve``; see the README's Serving section for a quickstart.
:mod:`repro.streaming` builds the window-by-window online-classification
scenario on top of this stack (``repro stream``, NDJSON endpoint).
"""

from .batcher import BatcherStats, MicroBatcher, Prediction, QueueFullError
from .metrics import Histogram, MetricFamily, merge_expositions, parse_exposition
from .pool import ServingPool
from .registry import ModelRecord, ModelRegistry, model_metadata, validate_reference
from .server import (
    PROTOCOL_PREPROCESSING,
    AdaptationStats,
    PredictionServer,
    PredictionService,
    ServingError,
    StreamStats,
    build_service,
    create_server,
    prepare_panel,
)

__all__ = [
    "AdaptationStats",
    "BatcherStats",
    "Histogram",
    "MicroBatcher",
    "Prediction",
    "QueueFullError",
    "ModelRecord",
    "ModelRegistry",
    "model_metadata",
    "validate_reference",
    "MetricFamily",
    "merge_expositions",
    "parse_exposition",
    "PredictionServer",
    "PredictionService",
    "ServingError",
    "ServingPool",
    "StreamStats",
    "build_service",
    "create_server",
    "prepare_panel",
    "PROTOCOL_PREPROCESSING",
]
