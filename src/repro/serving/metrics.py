"""In-process serving metrics with Prometheus text-format rendering.

The serving runtime needs observability without adding a dependency, so
this module implements the two primitives the ``/metrics`` endpoint
exports — monotonically growing counters (plain ints guarded by their
owners' locks) and fixed-bucket :class:`Histogram`\\ s — plus the
formatting helpers that render them in the Prometheus exposition format
(text version 0.0.4), which every mainstream scraper understands::

    repro_serving_requests_total{model="demo",version="1"} 412
    repro_serving_request_latency_seconds_bucket{model="demo",version="1",le="0.01"} 390
    ...

Histograms are cumulative (a sample with ``le="0.05"`` counts every
observation ``<= 0.05``) exactly as Prometheus expects, so latency
quantiles can be derived server-side with ``histogram_quantile``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "CONFIDENCE_BUCKETS",
    "LATENCY_BUCKETS",
    "STAGE_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricFamily",
    "format_labels",
    "format_sample",
    "merge_expositions",
    "parse_exposition",
    "render_histogram",
]

#: request-latency buckets in seconds: sub-millisecond cache hits through
#: multi-second stalls (predict_timeout territory)
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: micro-batch panel sizes; powers of two up to the default max_batch
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: per-stage latency buckets in seconds: stages (queue wait, batch
#: assembly, predict, serialize) are fractions of a request, so the
#: range starts an order of magnitude below LATENCY_BUCKETS
STAGE_LATENCY_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                         0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)

#: per-window top-1 confidence: dense near 1.0 where healthy models live,
#: so a drift-induced slide out of the top buckets is visible at a glance
CONFIDENCE_BUCKETS = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0)


class Counter:
    """A thread-safe monotone counter.

    The serving layer's original counters are plain ints guarded by their
    owners' locks; this class exists for owners that have no natural lock
    of their own — the streaming layer's per-model window and shift
    totals, incremented from handler threads.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (≥ 0; a negative step raises ``ValueError``)."""
        if amount < 0:
            raise ValueError(f"a Counter only grows; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current running total."""
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe gauge: a value that can move both ways.

    Used for the per-model active-stream count — incremented when an
    NDJSON stream opens, decremented when it closes.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Raise the level by *amount* (default one)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: int = 1) -> None:
        """Lower the level by *amount* (default one)."""
        with self._lock:
            self._value -= amount

    def set(self, value: int) -> None:
        """Overwrite the level — for gauges that track an identity (the
        live canary version) rather than a running delta."""
        with self._lock:
            self._value = int(value)

    @property
    def value(self) -> int:
        """The gauge's current level (may be negative)."""
        with self._lock:
            return self._value


@dataclass(frozen=True)
class HistogramSnapshot:
    """A consistent point-in-time copy of a :class:`Histogram`."""

    bounds: tuple[float, ...]
    counts: tuple[int, ...]  # per-bucket, one extra trailing +Inf bucket
    sum: float

    @property
    def count(self) -> int:
        """Total observations across every bucket (incl. +Inf)."""
        return sum(self.counts)

    def cumulative(self) -> list[int]:
        """Running totals per bucket, +Inf last — the Prometheus layout."""
        totals, running = [], 0
        for count in self.counts:
            running += count
            totals.append(running)
        return totals


class Histogram:
    """A thread-safe fixed-bucket histogram.

    ``observe`` is O(log buckets) and lock-cheap, so it can sit on the
    per-request hot path of the batcher.  Bucket upper bounds are
    inclusive (Prometheus ``le`` semantics); one implicit +Inf bucket
    catches the overflow.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_lock")

    def __init__(self, buckets=LATENCY_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a Histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        """Record one observation into its ``le``-inclusive bucket."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        """Total observations recorded so far."""
        with self._lock:
            return sum(self._counts)

    def snapshot(self) -> HistogramSnapshot:
        """A consistent point-in-time :class:`HistogramSnapshot` copy."""
        with self._lock:
            return HistogramSnapshot(self.bounds, tuple(self._counts), self._sum)


# --------------------------------------------------------------------------- #
# exposition-format rendering
# --------------------------------------------------------------------------- #


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_labels(labels: dict[str, str] | None) -> str:
    """``{a="x",b="y"}`` — or an empty string for no labels."""
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape(str(value))}"'
                     for key, value in labels.items())
    return "{" + inner + "}"


def _number(value) -> str:
    """Render ints without a decimal point, floats via repr (shortest)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        value = int(value)
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    return str(int(as_float)) if as_float.is_integer() else repr(as_float)


def format_sample(name: str, labels: dict[str, str] | None, value) -> str:
    """One exposition line: ``name{labels} value``."""
    return f"{name}{format_labels(labels)} {_number(value)}"


def render_histogram(name: str, labels: dict[str, str] | None,
                     snapshot: HistogramSnapshot) -> list[str]:
    """The ``_bucket``/``_sum``/``_count`` sample lines for one histogram."""
    labels = dict(labels or {})
    lines = []
    totals = snapshot.cumulative()
    for bound, total in zip(snapshot.bounds, totals):
        lines.append(format_sample(
            f"{name}_bucket", {**labels, "le": _number(bound)}, total))
    lines.append(format_sample(f"{name}_bucket", {**labels, "le": "+Inf"},
                               totals[-1]))
    lines.append(format_sample(f"{name}_sum", labels, snapshot.sum))
    lines.append(format_sample(f"{name}_count", labels, totals[-1]))
    return lines


# --------------------------------------------------------------------------- #
# exposition-format parsing and cross-worker merging
# --------------------------------------------------------------------------- #


@dataclass
class MetricFamily:
    """One parsed metric family: ``# HELP``/``# TYPE`` plus its samples.

    Each sample is ``(sample_name, labels, value)`` — the sample name can
    differ from the family name (histogram ``_bucket``/``_sum``/``_count``
    suffixes).  Produced by :func:`parse_exposition`, consumed by
    :func:`merge_expositions`.
    """

    name: str
    kind: str
    help: str
    samples: list  # of (sample_name, dict[str, str], float)


def _parse_labels(text: str) -> dict[str, str]:
    """Parse the ``key="value",...`` interior of a label set, undoing the
    exposition escapes (``\\\\``, ``\\"``, ``\\n``)."""
    labels: dict[str, str] = {}
    index = 0
    while index < len(text):
        equals = text.index("=", index)
        key = text[index:equals].strip().lstrip(",").strip()
        assert text[equals + 1] == '"', f"unquoted label value in {text!r}"
        value_chars = []
        index = equals + 2
        while True:
            char = text[index]
            if char == "\\":
                escape = text[index + 1]
                value_chars.append({"n": "\n"}.get(escape, escape))
                index += 2
                continue
            if char == '"':
                index += 1
                break
            value_chars.append(char)
            index += 1
        labels[key] = "".join(value_chars)
    return labels


def parse_exposition(text: str) -> list[MetricFamily]:
    """Parse one Prometheus text-format (0.0.4) exposition.

    Returns the families in document order.  Tolerates samples that
    arrive before any ``# TYPE`` line by giving them an ``untyped``
    family of their own.  This is the inverse of what ``metrics_text``
    renders — the worker pool round-trips each worker's exposition
    through it to build the pool-wide aggregate.
    """
    families: list[MetricFamily] = []
    by_name: dict[str, MetricFamily] = {}

    def family_for(sample_name: str) -> MetricFamily:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in by_name:
                base = base[: -len(suffix)]
                break
        if base not in by_name:
            by_name[base] = MetricFamily(base, "untyped", "", [])
            families.append(by_name[base])
        return by_name[base]

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            if name not in by_name:
                by_name[name] = MetricFamily(name, "untyped", "", [])
                families.append(by_name[name])
            by_name[name].help = help_text
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            if name not in by_name:
                by_name[name] = MetricFamily(name, kind.strip(), "", [])
                families.append(by_name[name])
            else:
                by_name[name].kind = kind.strip()
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        space = line.find(" ")
        if brace != -1 and (space == -1 or brace < space):
            sample_name = line[:brace]
            close = line.rindex("}")
            labels = _parse_labels(line[brace + 1:close])
            value = float(line[close + 1:].strip())
        else:
            sample_name, _, raw = line.partition(" ")
            labels, value = {}, float(raw.strip())
        family_for(sample_name).samples.append((sample_name, labels, value))
    return families


def merge_expositions(texts: dict[str, str], *,
                      worker_label: str = "worker") -> str:
    """Merge per-worker expositions into one pool-wide exposition.

    *texts* maps a worker identity (the ``worker`` label value) to that
    worker's ``/metrics`` text.  Counters and histograms are **summed**
    across workers per label set — the pool total is what a dashboard
    wants for monotone series, and sums of monotone series stay monotone
    as long as worker identities are stable (a respawned worker restarts
    its slot's contribution, which Prometheus ``rate()`` treats as the
    familiar counter reset).  Gauges are **not** summed: each worker's
    gauge samples are re-emitted with a ``worker=<identity>`` label, so
    per-worker levels (queue depth, loaded models) stay inspectable and
    a dashboard can still ``sum by`` on top.
    """
    merged: dict[str, MetricFamily] = {}
    order: list[str] = []
    summed: dict[tuple, list] = {}  # (family, sample, labels) -> mutable row
    for identity in sorted(texts):
        for family in parse_exposition(texts[identity]):
            target = merged.get(family.name)
            if target is None:
                target = merged[family.name] = MetricFamily(
                    family.name, family.kind, family.help, [])
                order.append(family.name)
            elif target.kind == "untyped" and family.kind != "untyped":
                target.kind, target.help = family.kind, family.help
            for sample_name, labels, value in family.samples:
                if target.kind == "gauge":
                    target.samples.append(
                        (sample_name,
                         {**labels, worker_label: identity}, value))
                    continue
                key = (family.name, sample_name,
                       tuple(sorted(labels.items())))
                row = summed.get(key)
                if row is None:
                    row = summed[key] = [sample_name, labels, 0.0]
                    target.samples.append(row)
                row[2] += value
    lines: list[str] = []
    for name in order:
        family = merged[name]
        if not family.samples and family.kind != "gauge":
            continue
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        for sample_name, labels, value in family.samples:
            lines.append(format_sample(sample_name, labels, value))
    return "\n".join(lines) + "\n"
