"""Micro-batching inference engine: coalesce single-series requests.

Feature-transform classifiers pay a large per-call overhead (kernel
matmuls, thousands of PPV thresholds) that is nearly flat in batch size,
so predicting 64 series in one panel costs little more than predicting
one.  The :class:`MicroBatcher` exploits that the same way the experiment
engine exploits job batching: callers submit one series at a time from
any thread, a small worker pool drains the shared queue, coalesces up to
``max_batch`` series (waiting at most ``max_latency`` seconds for
stragglers), stacks them into one ``(n, channels, length)`` panel, and
fans the predictions back out through per-request futures.

Per-series predictions are independent (PPV features and ridge scores
are computed row-wise), so a label never depends on which other requests
shared its batch — batching changes throughput, not results.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from .metrics import BATCH_SIZE_BUCKETS, LATENCY_BUCKETS, Histogram

__all__ = ["BatcherStats", "MicroBatcher", "Prediction", "QueueFullError"]

_SHUTDOWN = object()


class Prediction(NamedTuple):
    """The result of a ``return_proba`` submission.

    ``label`` is what a plain submission would have returned; ``proba``
    is the model's probability vector for this series, columns in the
    batcher's ``classes`` order.  Plain submissions keep resolving to the
    bare label, so existing callers never see this type.
    """

    label: object
    proba: np.ndarray


class QueueFullError(RuntimeError):
    """``submit`` fast-fail: the bounded request queue is at ``max_queue``.

    Raised instead of blocking so an overloaded server can shed load
    immediately (HTTP 429) rather than queueing without bound and letting
    every request's latency grow past its timeout.
    """


@dataclass
class BatcherStats:
    """Coalescing counters and distributions, exposed for ``/metrics``,
    benchmarks and tests.

    A stats object can outlive its batcher: the serving layer passes one
    per model version into every (re)loaded :class:`MicroBatcher`, so
    counters keep accumulating across LRU evictions and reloads.
    """

    requests: int = 0
    batches: int = 0
    max_batch_size: int = 0
    #: submits rejected by the bounded queue (each one was answered 429)
    rejected: int = 0
    batch_sizes: Histogram = field(
        default_factory=lambda: Histogram(BATCH_SIZE_BUCKETS), repr=False)
    #: submit-to-completion seconds per request: queue wait + straggler
    #: window + predict, the latency a client actually observes
    latency: Histogram = field(
        default_factory=lambda: Histogram(LATENCY_BUCKETS), repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def mean_batch_size(self) -> float:
        """Average coalesced panel size (0.0 before any batch ran)."""
        return self.requests / self.batches if self.batches else 0.0

    def _record_batch(self, size: int) -> None:
        with self._lock:
            self.requests += size
            self.batches += 1
            self.max_batch_size = max(self.max_batch_size, size)
        self.batch_sizes.observe(size)

    def _record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1


class MicroBatcher:
    """Queue single-series requests and predict them in coalesced panels.

    Parameters
    ----------
    predict_fn:
        Called with a panel ``(n, channels, length)``; must return one
        prediction per row (any sequence of length ``n``).
    input_shape:
        Optional ``(channels, length)``; when given, submissions are
        validated eagerly so a malformed request fails in the caller, not
        inside someone else's batch.
    max_batch:
        Panel-size ceiling per predict call.
    max_latency:
        Seconds a worker waits for stragglers after the first request of a
        batch arrives — the latency price of coalescing.
    workers:
        Batch-assembling threads.  numpy releases the GIL inside the BLAS
        calls that dominate prediction, so a small pool overlaps compute
        with queueing like the grid engine's worker pool does.
    max_queue:
        Backpressure bound: when this many requests are already waiting,
        ``submit`` raises :class:`QueueFullError` immediately instead of
        queueing (0 = unbounded, the library default).  Bounding the
        queue bounds worst-case latency: at most ``max_queue`` requests
        can be ahead of an admitted one.
    admit_nan:
        Admit series containing NaN (Inf is always refused).  Set by the
        serving layer for models whose ``predict_fn`` includes the
        training protocol's imputation, which turns NaN into data; for
        every other model a NaN series would poison its whole coalesced
        batch, so it is refused at submit.
    stats:
        Optional pre-existing :class:`BatcherStats` to accumulate into —
        the serving layer passes the same object across model reloads so
        ``/metrics`` counters survive LRU eviction.
    stage_observer:
        Optional callable ``(stage, seconds)`` invoked per batch with
        the per-stage latency breakdown: ``queue_wait`` (submit to
        dequeue, once per request), ``assemble`` (first dequeue to
        predict start — the straggler wait, once per batch) and
        ``predict`` (the model call, once per batch).  The serving
        layer points this at its per-model stage histograms.
    tracer:
        Optional :class:`~repro.observability.trace.Tracer`.  Because
        batches run on worker threads that cannot inherit the
        submitter's contextvars, ``submit_many`` captures the caller's
        trace context (only while tracing is enabled) and carries it on
        the queue item; the worker then records ``batcher.queue`` /
        ``batcher.assemble`` / ``batcher.predict`` spans re-parented to
        the submitting request.
    proba_fn:
        Optional probability head: called with the same coalesced panel
        as ``predict_fn`` and must return a row-stochastic ``(n,
        n_classes)`` matrix.  When any request in a batch asked for
        probabilities (``submit(..., return_proba=True)``), the batch is
        predicted through ``proba_fn`` **once** and labels are derived as
        ``classes[argmax]`` — one pass serves both kinds of request,
        relying on the classifier contract that ``argmax(predict_proba)
        == predict`` exactly.
    classes:
        Label values aligned with ``proba_fn``'s columns; required
        whenever ``proba_fn`` is given.
    """

    def __init__(self, predict_fn, *, input_shape: tuple[int, int] | None = None,
                 max_batch: int = 64, max_latency: float = 0.005,
                 workers: int = 1, max_queue: int = 0,
                 admit_nan: bool = False,
                 stats: BatcherStats | None = None,
                 proba_fn=None, classes=None,
                 stage_observer=None, tracer=None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1; got {max_batch}")
        if max_latency < 0:
            raise ValueError(f"max_latency must be >= 0; got {max_latency}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1; got {workers}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0; got {max_queue}")
        if proba_fn is not None and classes is None:
            raise ValueError("proba_fn requires classes (its column labels)")
        self._predict_fn = predict_fn
        self._proba_fn = proba_fn
        self.classes = np.asarray(classes) if classes is not None else None
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        self.max_batch = int(max_batch)
        self.max_latency = float(max_latency)
        self.max_queue = int(max_queue)
        self.admit_nan = bool(admit_nan)
        self.stats = stats if stats is not None else BatcherStats()
        self._stage_observer = stage_observer
        self._tracer = tracer
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        #: serialises submits against close(), so no request can be enqueued
        #: behind the shutdown sentinel and starve
        self._submit_lock = threading.Lock()
        #: notified whenever a worker drains items off the queue, so a
        #: blocking submit (timeout > 0) can wait for space instead of polling
        self._space = threading.Condition(self._submit_lock)
        self._workers = [
            threading.Thread(target=self._drain, name=f"micro-batcher-{i}", daemon=True)
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #

    @property
    def serves_proba(self) -> bool:
        """Whether ``return_proba`` submissions are accepted."""
        return self._proba_fn is not None

    def submit(self, series, *, timeout: float | None = None,
               return_proba: bool = False) -> Future:
        """Enqueue one series ``(channels, length)``; returns its future.

        With ``return_proba`` the future resolves to a
        :class:`Prediction` (label + probability vector) instead of a
        bare label; requires a ``proba_fn``.
        """
        return self.submit_many([series], timeout=timeout,
                                return_proba=return_proba)[0]

    def submit_many(self, series_list, *, timeout: float | None = None,
                    return_proba: bool = False) -> list[Future]:
        """Enqueue several series atomically: either every series is
        admitted or none is (``QueueFullError``), so an over-quota
        multi-series request never leaves orphaned work behind its 429 —
        the rejected client retries the whole request, and nothing it
        already abandoned is still being computed.

        The bound is applied to *waiting* work: a request larger than
        ``max_queue`` is still admitted when the queue is empty (its size
        is capped upstream by the server's body limit), but any queued
        backlog makes overflow fail fast.

        With ``timeout`` (seconds) an over-quota submit *waits* for the
        workers to make space instead of failing immediately — the
        backpressure mode of the streaming scorer, which has nowhere to
        bounce a 429 mid-stream.  ``QueueFullError`` is still raised when
        the queue stays full past the deadline.

        With ``return_proba`` each future resolves to a
        :class:`Prediction`; a batcher built without a ``proba_fn``
        refuses with ``ValueError`` here, before anything is enqueued.
        """
        if return_proba and self._proba_fn is None:
            raise ValueError(
                "this model does not serve probabilities "
                "(no predict_proba / proba_fn)"
            )
        prepared = [self._validate(series) for series in series_list]
        futures: list[Future] = [Future() for _ in prepared]
        # Contextvars do not cross into the worker threads, so the trace
        # context rides the queue item; captured only while tracing is on
        # so the disabled path pays one attribute check.
        tracer = self._tracer
        ctx = tracer.current() if tracer is not None and tracer.enabled \
            else None
        deadline = None if not timeout else time.monotonic() + timeout
        with self._submit_lock:
            while True:
                if self._closed:
                    raise RuntimeError("cannot submit to a closed MicroBatcher")
                depth = self._queue.qsize()
                if not (self.max_queue and depth
                        and depth + len(prepared) > self.max_queue):
                    break
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is None or remaining <= 0:
                    for _ in prepared:
                        self.stats._record_rejected()
                    raise QueueFullError(
                        f"request queue is full ({self.max_queue} waiting); "
                        f"retry later"
                    )
                self._space.wait(remaining)
            now = time.monotonic()
            for series, future in zip(prepared, futures):
                self._queue.put((series, future, now, return_proba, ctx))
        return futures

    def _validate(self, series) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64)
        if series.ndim == 1:
            series = series[None, :]  # univariate convenience
        if series.ndim != 2:
            raise ValueError(
                f"a request is one series of shape (channels, length); "
                f"got ndim={series.ndim}"
            )
        if self.input_shape is not None and series.shape != self.input_shape:
            raise ValueError(
                f"series shape {series.shape} does not match the model's "
                f"input shape {self.input_shape}"
            )
        if not np.isfinite(series).all():
            # Classifiers reject non-finite panels; catching it at
            # admission fails only the offending request instead of the
            # whole coalesced batch it would have joined.  NaN is data
            # when the model's pipeline imputes (admit_nan); Inf never is.
            if not self.admit_nan:
                raise ValueError(
                    "series contains non-finite values (NaN/Inf); impute "
                    "or clean it before submitting"
                )
            if np.isinf(series).any():
                raise ValueError(
                    "series contains infinite values; clean it before "
                    "submitting"
                )
        return series

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting to be coalesced (approximate)."""
        return self._queue.qsize()

    def predict(self, series, timeout: float | None = None):
        """Blocking single-series prediction (submit + wait)."""
        return self.submit(series).result(timeout=timeout)

    def close(self, timeout: float | None = None) -> bool:
        """Stop the workers after all queued requests are served.

        With ``timeout`` (seconds), the join is bounded: a predict_fn
        stalled past the deadline leaves its daemon worker behind rather
        than hanging the closer forever.  Returns ``True`` when every
        worker actually exited (the queue fully drained).
        """
        with self._submit_lock:
            if not self._closed:
                self._closed = True
                # Under the submit lock, every accepted request is already
                # ahead of the sentinel in the FIFO queue, so the workers
                # serve all of them before shutting down.
                self._queue.put(_SHUTDOWN)
                # Submits blocked waiting for queue space must observe the
                # close now, not at their deadline.
                self._space.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        drained = True
        for worker in self._workers:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            worker.join(remaining)
            drained = drained and not worker.is_alive()
        return drained

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._queue.put(_SHUTDOWN)  # release the next worker
                return
            batch = [item + (time.monotonic(),)]
            deadline = time.monotonic() + self.max_latency
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    self._queue.put(_SHUTDOWN)
                    stop = True
                    break
                batch.append(item + (time.monotonic(),))
            # The batch is off the queue: wake any submit blocked on space.
            with self._space:
                self._space.notify_all()
            self._run_batch(batch)
            if stop:
                return

    def _run_batch(self, batch) -> None:
        """Predict one assembled *batch* (list of 6-tuples ``(series,
        future, submitted, want_proba, ctx, dequeued)``) and fan out."""
        self.stats._record_batch(len(batch))
        predict_start = time.monotonic()
        observer = self._stage_observer
        if observer is not None:
            observer("assemble", predict_start - batch[0][5])
            for _, _, submitted, _, _, dequeued in batch:
                observer("queue_wait", dequeued - submitted)
        want_proba = any(item[3] for item in batch)
        probas = None
        predictions = None
        error = None
        try:
            # stack stays inside the try: without an input_shape the series
            # in one batch may disagree, and that must fail the requests,
            # not kill the worker thread.
            panel = np.stack([item[0] for item in batch])
            if want_proba:
                # One pass serves the whole mixed batch: labels derive from
                # the probability rows (classes[argmax] == predict is part
                # of the classifier contract), so a batch that coalesced
                # proba and plain requests never predicts twice.
                probas = np.asarray(self._proba_fn(panel))
                predictions = self.classes[probas.argmax(axis=1)]
            else:
                predictions = self._predict_fn(panel)
        except Exception as err:  # noqa: BLE001 - forwarded to every caller
            error = err
        predict_end = time.monotonic()
        if observer is not None:
            observer("predict", predict_end - predict_start)
        self._trace_batch(batch, predict_start, predict_end, error)
        if error is not None:
            self._finish(batch, error=error)
            return
        if len(predictions) != len(batch) or \
                (probas is not None and probas.shape[0] != len(batch)):
            self._finish(batch, error=RuntimeError(
                f"predict_fn returned {len(predictions)} predictions "
                f"for a batch of {len(batch)}"
            ))
            return
        self._finish(batch, results=predictions, probas=probas)

    def _trace_batch(self, batch, predict_start: float,
                     predict_end: float, error) -> None:
        """Record queue/assemble/predict spans for every traced request.

        Runs on the worker thread after the fact, reconstructing spans
        from the monotonic stamps the batch carried; requests submitted
        outside any trace (``ctx is None``) record nothing.
        """
        tracer = self._tracer
        if tracer is None or not tracer.enabled:
            return
        size = len(batch)
        error_name = type(error).__name__ if error is not None else None
        for _, _, submitted, _, ctx, dequeued in batch:
            if ctx is None:
                continue
            tracer.record_span("batcher.queue", start=submitted,
                               end=dequeued, parent=ctx)
            tracer.record_span("batcher.assemble", start=dequeued,
                               end=predict_start, parent=ctx,
                               batch_size=size)
            extra = {"batch_size": size}
            if error_name is not None:
                extra["error"] = error_name
            tracer.record_span("batcher.predict", start=predict_start,
                               end=predict_end, parent=ctx, **extra)

    def _finish(self, batch, results=None, error=None, probas=None) -> None:
        """Complete every future in *batch*, recording observed latency."""
        now = time.monotonic()
        for index, (_, future, submitted, want_proba, _, _) in enumerate(batch):
            self.stats.latency.observe(now - submitted)
            if error is not None:
                future.set_exception(error)
            elif want_proba:
                future.set_result(Prediction(results[index], probas[index]))
            else:
                future.set_result(results[index])
