"""Versioned model registry: content-addressed ``.npz`` artifacts on disk.

A registry root holds two trees::

    root/
      objects/<digest>.npz          # content-addressed model artifacts
      models/<name>/manifest.jsonl  # append-only publish/tag event log

Publishing serialises a trained classifier with
:func:`repro.classifiers.save_model`, names the artifact by the digest of
its bytes (:func:`repro.cache.digest_file` — the same hashing family the
experiment cache uses), and appends a manifest line carrying an
auto-incremented version plus the fit-time metadata the serving layer
needs: dataset, technique, seed, label map and input shape.  Identical
models deduplicate to one object file however many versions point at it.

Versions are immutable; mutable names are **tags** (``tag("fraud", 3,
"prod")``), which later publishes or re-tags may move.  Lookup accepts a
version number, a tag, or nothing (latest version).  The manifest is
plain JSON lines, so a registry is inspectable with ``cat`` and safely
re-readable while a publisher appends.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

import numpy as np

from ..backend import ComputePolicy, apply_inference_policy, check_parity
from ..cache import digest_file
from ..classifiers import load_model, save_model

__all__ = ["ModelRecord", "ModelRegistry", "model_metadata", "validate_reference"]


def validate_reference(name: str, tags: tuple[str, ...] | list[str] = ()) -> None:
    """Raise ``ValueError`` for a name/tags combination publish would refuse.

    Callers that train before publishing (the CLI) run this first, so an
    input typo fails in milliseconds instead of after minutes of fitting.
    """
    _check_name(name)
    for tag in tags:
        _check_tag(tag)


def model_metadata(model, **extra) -> dict:
    """Fit-time metadata for *model*: kind, label map and input shape.

    Keyword arguments (``dataset=...``, ``technique=...``, ``seed=...``)
    are merged in verbatim; the classifier-derived fields are extracted
    from whichever attributes the model family exposes.
    """
    ridge = getattr(model, "ridge", model)
    classes = getattr(ridge, "classes_", None)
    if classes is None:
        classes = getattr(model, "classes_", None)
    transformer = getattr(model, "transformer", None)
    input_shape = getattr(transformer, "input_shape", None)
    if input_shape is None:
        # Every Classifier remembers its fit shape; transform-backed
        # families additionally expose it on the transformer (checked
        # first — it survives serialization round trips).
        input_shape = getattr(model, "input_shape", None)
    metadata = {
        "model_kind": type(model).__name__,
        "labels": [int(c) for c in np.asarray(classes)] if classes is not None else None,
        "input_shape": list(input_shape) if input_shape is not None else None,
    }
    metadata.update(extra)
    return metadata


@dataclass(frozen=True)
class ModelRecord:
    """One published version of one model name."""

    name: str
    version: int
    digest: str
    created_at: str
    metadata: dict = field(default_factory=dict)
    tags: tuple[str, ...] = ()

    def describe(self) -> dict:
        """JSON-ready summary (the ``/v1/models`` wire format)."""
        return {
            "name": self.name,
            "version": self.version,
            "digest": self.digest,
            "created_at": self.created_at,
            "tags": list(self.tags),
            "metadata": self.metadata,
        }


class ModelRegistry:
    """Publish, look up, tag and load versioned classifiers under *root*."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._models = self.root / "models"
        #: versions() memo keyed by manifest (mtime_ns, size) — the serving
        #: hot path resolves a record per request, and reparsing the JSONL
        #: every time would dominate cache-hit predictions
        self._versions_cache: dict[str, tuple[tuple[int, int], list[ModelRecord]]] = {}
        #: list_models() memo keyed by the models-root directory stat
        #: (mtime_ns, size, nlink) — /healthz hits this per request, and
        #: an os.scandir per health probe is wasted I/O under load
        self._names_cache: tuple[tuple[int, int, int], list[str]] | None = None
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # write side
    # ------------------------------------------------------------------ #

    def publish(self, model, name: str, *, metadata: dict | None = None,
                tags: tuple[str, ...] | list[str] = (),
                dtype: str | None = None,
                compute_policy: "ComputePolicy | None" = None,
                parity_panel: np.ndarray | None = None) -> ModelRecord:
        """Serialise *model* as the next version of *name*.

        The artifact lands in ``objects/`` under its content digest
        (deduplicated), then a manifest line records version, metadata and
        initial tags.  Returns the new :class:`ModelRecord`.

        *dtype* casts the archive's kernel bank (``"float32"`` halves the
        object size); *compute_policy* is recorded in the metadata and
        honoured by :meth:`load`, so the serving layer runs the model
        under the policy it was published for.  Recording a policy with a
        non-default engine (numba) **requires** *parity_panel* — a small
        representative panel swept through :func:`repro.backend.check_parity`
        first, so an engine that disagrees with the numpy reference never
        reaches a manifest.  When a panel is supplied the sweep gates any
        policy, engine or not.
        """
        validate_reference(name, tags)  # before the artifact write: no orphans
        if compute_policy is not None:
            if compute_policy.engine != "numpy" and parity_panel is None:
                raise ValueError(
                    f"publishing with engine {compute_policy.engine!r} "
                    f"requires a parity_panel: non-default engines are "
                    f"gated behind a correctness sweep"
                )
            if parity_panel is not None:
                check_parity(model, parity_panel, compute_policy)
        metadata = dict(metadata or {})
        if compute_policy is not None:
            metadata["compute_policy"] = compute_policy.as_dict()
        metadata["bank_dtype"] = str(np.dtype(dtype).name) if dtype else "float64"
        self._objects.mkdir(parents=True, exist_ok=True)
        manifest = self._manifest(name)
        manifest.parent.mkdir(parents=True, exist_ok=True)

        fd, tmp_name = tempfile.mkstemp(suffix=".npz", dir=self._objects)
        os.close(fd)
        try:
            save_model(model, tmp_name, dtype=dtype)
            digest = digest_file(tmp_name)
            target = self._object_path(digest)
            if target.exists():
                os.unlink(tmp_name)  # identical artifact already stored
            else:
                os.replace(tmp_name, target)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

        # Version numbering is a read-then-append; the manifest lock keeps
        # two concurrent publishers from both minting version N+1 (the
        # later line would silently shadow the earlier one).
        with _locked(manifest):
            version = max((r.version for r in self.versions(name)), default=0) + 1
            row = {
                "kind": "publish",
                "version": version,
                "digest": digest,
                "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
                "metadata": metadata or {},
                "tags": list(tags),
            }
            self._append(manifest, row)
        return self.record(name, version)

    def tag(self, name: str, version: int, tag: str) -> ModelRecord:
        """Point *tag* at ``name:version`` (moving it from any other version)."""
        _check_tag(tag)
        record = self.record(name, version)  # validates existence
        manifest = self._manifest(name)
        # Same lock publish() holds for its read-then-append version mint:
        # an unlocked tag append racing a publish could land between the
        # publisher's read and write and interleave the manifest.
        with _locked(manifest):
            self._append(manifest, {"kind": "tag", "tag": str(tag),
                                    "version": record.version})
        return self.record(name, version)

    # ------------------------------------------------------------------ #
    # read side
    # ------------------------------------------------------------------ #

    #: only memoise a scan once the models root has been unchanged this
    #: long — coarse-mtime filesystems (1 s on ext3/NFS) could otherwise
    #: serve a stale cache when two publishes land in one mtime granule
    _MTIME_QUIESCENCE = 2.0

    def list_models(self) -> list[str]:
        """Sorted names that have at least one published version.

        Memoised on the models-root directory stat: creating or removing
        a model directory bumps its mtime, so the cache invalidates on
        publish of a new name while repeated health checks cost one
        ``stat``.  The memo key is the full ``(mtime_ns, size, nlink)``
        triple, not the mtime alone: a publish from *another process*
        can land inside the same coarse-mtime tick (1 s granularity on
        ext3/NFS), but it still adds a directory entry — which moves
        ``st_nlink`` (one link per subdirectory on POSIX filesystems)
        and usually ``st_size`` — so a cross-process publish invalidates
        the memo even when the mtime does not move.  A scan is only
        cached once the directory has been quiet for
        ``_MTIME_QUIESCENCE`` seconds, so mtime granularity can never pin
        a stale listing.
        """
        try:
            stat = self._models.stat()
        except OSError:
            return []
        stamp = (stat.st_mtime_ns, stat.st_size, stat.st_nlink)
        with self._cache_lock:
            if self._names_cache is not None and self._names_cache[0] == stamp:
                return list(self._names_cache[1])
        names, complete = [], True
        for path in self._models.iterdir():
            if (path / "manifest.jsonl").is_file():
                names.append(path.name)
            elif path.is_dir():
                # A publish in flight: the directory exists but its first
                # manifest line hasn't landed.  Don't cache a scan that
                # would hide the name until the *next* directory change.
                complete = False
        names.sort()
        if complete and time.time() - stat.st_mtime >= self._MTIME_QUIESCENCE:
            with self._cache_lock:
                self._names_cache = (stamp, names)
        return names

    def versions(self, name: str) -> list[ModelRecord]:
        """Every published version of *name*, oldest first, tags resolved."""
        manifest = self._manifest(name)
        try:
            stat = manifest.stat()
        except OSError:
            return []
        stamp = (stat.st_mtime_ns, stat.st_size)
        with self._cache_lock:
            cached = self._versions_cache.get(name)
            if cached is not None and cached[0] == stamp:
                return cached[1]
        records: dict[int, dict] = {}
        tag_owner: dict[str, int] = {}
        for line in manifest.read_text().splitlines():
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing write; ignore
            if row.get("kind") == "publish":
                records[row["version"]] = row
                for tag in row.get("tags", ()):
                    tag_owner[tag] = row["version"]
            elif row.get("kind") == "tag":
                tag_owner[row["tag"]] = row["version"]
        result = [
            ModelRecord(
                name=name, version=version, digest=row["digest"],
                created_at=row["created_at"], metadata=row.get("metadata", {}),
                tags=tuple(sorted(t for t, v in tag_owner.items() if v == version)),
            )
            for version, row in sorted(records.items())
        ]
        with self._cache_lock:
            self._versions_cache[name] = (stamp, result)
        return result

    def record(self, name: str, version: int | str | None = None) -> ModelRecord:
        """The :class:`ModelRecord` for a version number, a tag, or (with
        ``None``) the latest version.  Raises ``KeyError`` when absent."""
        records = self.versions(name)
        if not records:
            raise KeyError(f"no model named {name!r} in registry {self.root}")
        if version is None:
            return records[-1]
        if isinstance(version, str) and not version.isdigit():
            for record in records:
                if version in record.tags:
                    return record
            raise KeyError(f"model {name!r} has no tag {version!r}")
        wanted = int(version)
        for record in records:
            if record.version == wanted:
                return record
        raise KeyError(f"model {name!r} has no version {wanted}")

    def load(self, name: str, version: int | str | None = None, *,
             mmap: bool = True, require_dtype: str | None = None):
        """Load the classifier for ``name[:version-or-tag]``.

        Returns ``(model, record)`` — the deserialised classifier plus the
        manifest record the serving layer reads labels and shapes from.

        Arrays are memory-mapped out of the object file by default (zero
        copy — an LRU-evicted model reloads in microseconds), and a
        ``compute_policy`` recorded at publish is applied to the model
        before it is returned, so a caller serves it exactly as
        published.  *require_dtype* is forwarded to
        :func:`repro.classifiers.load_model` and fails loudly on a
        precision mismatch.
        """
        record = self.record(name, version)
        path = self._object_path(record.digest)
        if not path.is_file():
            raise FileNotFoundError(
                f"registry object {record.digest} for {name}:{record.version} "
                f"is missing from {self._objects}"
            )
        model = load_model(path, mmap=mmap, require_dtype=require_dtype)
        policy = ComputePolicy.from_dict(record.metadata.get("compute_policy"))
        apply_inference_policy(model, policy)
        return model, record

    # ------------------------------------------------------------------ #

    def _object_path(self, digest: str) -> Path:
        return self._objects / f"{digest}.npz"

    def _manifest(self, name: str) -> Path:
        return self._models / name / "manifest.jsonl"

    @staticmethod
    def _append(manifest: Path, row: dict) -> None:
        with open(manifest, "a") as handle:
            handle.write(json.dumps(row) + "\n")
            handle.flush()


def _check_name(name: str) -> None:
    """Model names become directory names, so keep them path-safe."""
    if not name or any(c in name for c in "/\\") or name in (".", ".."):
        raise ValueError(f"invalid model name: {name!r}")


def _check_tag(tag: str) -> None:
    """Lookup reads all-digit strings as version numbers, so a numeric tag
    could never be resolved — refuse it at write time."""
    tag = str(tag)
    if not tag or tag.isdigit():
        raise ValueError(f"invalid tag (empty or all digits): {tag!r}")


@contextmanager
def _locked(manifest: Path):
    """Advisory exclusive lock on a manifest (released on process death)."""
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    with open(manifest.with_suffix(".lock"), "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)
