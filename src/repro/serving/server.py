"""Stdlib HTTP prediction server over a model registry.

Routes (JSON in, JSON out unless noted)::

    GET  /healthz                        liveness + model count
    GET  /metrics                        Prometheus text format (0.0.4)
    GET  /v1/models                      latest record per published name
    GET  /v1/debug/traces                flight-recorder dump (recent/slowest)
    POST /v1/models/<name>/predict       classify one series or a list

A predict body carries either one series (``{"series": [[...], ...]}`` —
a ``channels x length`` matrix) or several (``{"instances": [series,
...]}``); ``{"version": 2}`` or ``{"version": "prod"}`` selects a
non-latest version or a tag.  The response echoes the model identity and
returns ``"label"`` (or ``"labels"``).

The server is a ``ThreadingHTTPServer``: each connection gets a thread,
and all threads funnel their series into one shared
:class:`~repro.serving.batcher.MicroBatcher` per model version, so
concurrent clients are answered from coalesced panels.  Models are
loaded from the registry lazily, memoised, and — when
``max_loaded_models`` is set — LRU-evicted with their queued requests
drained first.  Input series are preprocessed exactly as the training
protocol preprocesses panels (per-series z-normalisation, then
imputation) when the published metadata says the model was trained that
way.

The runtime is load-safe by construction:

* **backpressure** — each batcher's queue is bounded (``max_queue``);
  overflow is answered ``429`` with a ``Retry-After`` hint instead of
  queueing unboundedly, so admitted requests keep a bounded worst-case
  latency;
* **admission control** — request bodies above ``max_body_bytes`` are
  refused with ``413`` before being read;
* **lifecycle** — ``server_close`` drains in-flight requests and every
  batcher before returning; a model evicted mid-request is reloaded
  transparently;
* **observability** — ``/metrics`` exports per-model request counts,
  queue depths, batch-size, latency and per-stage latency histograms
  plus a client-disconnect counter; ``access_log=True`` writes one
  structured JSON line per request to stderr through the shared
  :mod:`repro.observability.logging` logger; with tracing enabled every
  request records per-stage spans into the flight recorder served at
  ``GET /v1/debug/traces``.
"""

from __future__ import annotations

import json
import re
import threading
import time
import urllib.parse
from concurrent.futures import Future, TimeoutError as FutureTimeoutError
from functools import partial
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..backend import INFERENCE_POLICY, ComputePolicy, apply_inference_policy
from ..data.dataset import TimeSeriesDataset
from ..experiments.protocol import _prepare as _protocol_prepare
from ..observability import get_logger, get_tracer
from .batcher import BatcherStats, MicroBatcher, Prediction, QueueFullError
from .metrics import (
    CONFIDENCE_BUCKETS,
    STAGE_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    format_sample,
    render_histogram,
)
from .registry import ModelRecord, ModelRegistry

__all__ = ["AdaptationStats", "PredictionService", "PredictionServer",
           "ServingError", "StreamStats", "build_service", "create_server",
           "prepare_panel", "PROTOCOL_PREPROCESSING"]

#: metadata value written by ``repro train`` — the training-protocol
#: preprocessing (znormalize + impute) the server must mirror
PROTOCOL_PREPROCESSING = "znormalize+impute"


def prepare_panel(X: np.ndarray) -> np.ndarray:
    """Apply the training protocol's preprocessing to a raw panel.

    Delegates to the protocol's own ``_prepare`` so the serving path can
    never drift from what published models were trained on.
    """
    dataset = TimeSeriesDataset(X, np.zeros(len(X), dtype=np.int64))
    return _protocol_prepare(dataset).X


class ServingError(Exception):
    """A client-visible failure with an HTTP status.

    ``retry_after`` (seconds) is surfaced as a ``Retry-After`` response
    header for the transient statuses (429/503) where a client should
    back off and try again.
    """

    def __init__(self, status: int, message: str, *,
                 retry_after: int | None = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


@dataclass
class StreamStats:
    """Per-model-version streaming counters for ``/metrics``.

    Like :class:`~repro.serving.batcher.BatcherStats`, one object lives
    per ``(name, version)`` for the process lifetime, so the counters
    are monotone across streams coming and going.
    """

    opened: Counter = field(default_factory=Counter)
    active: Gauge = field(default_factory=Gauge)
    windows: Counter = field(default_factory=Counter)
    shifts: Counter = field(default_factory=Counter)
    #: top-1 confidence per scored window (only when the model serves
    #: probabilities) — the live distribution the drift monitor watches
    confidence: Histogram = field(
        default_factory=lambda: Histogram(CONFIDENCE_BUCKETS))

    def record_window(self, *, shift: bool = False,
                      confidence: float | None = None) -> None:
        """Count one scored window (and its confidence, when known)."""
        self.windows.inc()
        if shift:
            self.shifts.inc()
        if confidence is not None:
            self.confidence.observe(confidence)


@dataclass
class AdaptationStats:
    """Per-model-*name* adaptation counters for ``/metrics``.

    Adaptation is a property of a model's lineage, not of one version —
    retraining mints new versions — so these live one per name for the
    process lifetime, updated by the
    :class:`~repro.adaptation.AdaptationController` driving that name.
    """

    retrainings: Counter = field(default_factory=Counter)
    promotions: Counter = field(default_factory=Counter)
    rollbacks: Counter = field(default_factory=Counter)
    shadow_windows: Counter = field(default_factory=Counter)
    shadow_agreements: Counter = field(default_factory=Counter)
    #: version currently tagged canary (0 = no live canary)
    canary_version: Gauge = field(default_factory=Gauge)
    #: live windows scored since the current canary was published
    canary_age: Gauge = field(default_factory=Gauge)

    def record_shadow(self, *, agreed: bool) -> None:
        """Count one shadow-scored window (and whether the models agreed)."""
        self.shadow_windows.inc()
        if agreed:
            self.shadow_agreements.inc()


class PredictionService:
    """Registry-backed prediction with one micro-batcher per model version.

    The service is the transport-free core of the server: the HTTP layer,
    the CLI ``predict`` command and in-process tests all call the same
    :meth:`predict`.

    Parameters beyond the batching knobs:

    max_queue:
        Per-model bounded request queue; overflow raises
        ``ServingError(429)`` (0 = unbounded).
    max_loaded_models:
        Cap on concurrently loaded models; the least-recently-used one is
        evicted — its queued requests drained first — to make room
        (0 = unlimited).
    drain_timeout:
        How long :meth:`close` waits for in-flight predicts to finish
        before tearing the batchers down.
    tracer:
        The :class:`~repro.observability.Tracer` the whole serving stack
        (batchers, scorers, controllers) records spans through; defaults
        to the process-wide tracer (disabled until
        ``configure_tracing``/``repro serve --trace`` switches it on).
    logger:
        The :class:`~repro.observability.StructuredLogger` used for the
        access log and structured server events; defaults to the shared
        stderr logger stamped ``component: "server"``.
    """

    def __init__(self, registry: ModelRegistry, *, max_batch: int = 64,
                 max_latency: float = 0.005, workers: int = 1,
                 predict_timeout: float = 30.0, max_queue: int = 0,
                 max_loaded_models: int = 0, drain_timeout: float = 5.0,
                 compute_policy: ComputePolicy | None = None,
                 tracer=None, logger=None):
        self.registry = registry
        #: service-wide policy override; ``None`` defers to each record's
        #: published ``compute_policy`` metadata, falling back to the
        #: float32 serving default (INFERENCE_POLICY)
        self.compute_policy = compute_policy
        self.tracer = tracer if tracer is not None else get_tracer()
        self.logger = logger if logger is not None else get_logger("server")
        self.max_batch = max_batch
        self.max_latency = max_latency
        self.workers = workers
        self.predict_timeout = predict_timeout
        self.max_queue = int(max_queue)
        self.max_loaded_models = int(max_loaded_models)
        self.drain_timeout = float(drain_timeout)
        #: insertion order doubles as LRU order: a cache hit reinserts its
        #: key, so the first key is always the least recently used
        self._loaded: dict[tuple[str, int], tuple[ModelRecord, MicroBatcher]] = {}
        self._lock = threading.Lock()
        #: close() waits on this for in-flight predicts to drain
        self._idle = threading.Condition(self._lock)
        self._active = 0
        self._closed = False
        #: per-version load locks, so a cold load of one model never blocks
        #: requests that only need the cache
        self._loading: dict[tuple[str, int], threading.Lock] = {}
        #: per-version stats survive eviction/reload so /metrics counters
        #: are monotone over the process lifetime
        self._stats: dict[tuple[str, int], BatcherStats] = {}
        #: per-version streaming stats (same lifetime rules)
        self._streams: dict[tuple[str, int], StreamStats] = {}
        #: per-*name* adaptation stats (retraining is a lineage property)
        self._adaptation: dict[str, AdaptationStats] = {}
        self._http_responses: dict[int, int] = {}
        #: per-version per-stage latency histograms (queue_wait, assemble,
        #: predict, serialize) — always on; the cost is one observe per
        #: stage, not a span allocation
        self._stage: dict[tuple[str, int], dict[str, Histogram]] = {}
        #: responses abandoned because the client hung up first
        self._client_disconnects = 0
        # Deferred import: repro.streaming imports this module at load
        # time, so the session layer must resolve lazily.
        from ..streaming.session import SessionStore

        #: durable stream sessions (resume tokens + snapshots); the
        #: worker pool swaps in a replicating subclass before serving
        self.sessions = SessionStore()

    # ------------------------------------------------------------------ #

    def models(self) -> list[dict]:
        """Latest record per name, with the total version count."""
        out = []
        for name in self.registry.list_models():
            versions = self.registry.versions(name)
            latest = versions[-1].describe()
            latest["n_versions"] = len(versions)
            out.append(latest)
        return out

    def healthz(self) -> dict:
        """Liveness summary; uses the registry's memoised name scan so a
        health-check loop never hammers the filesystem."""
        return {"status": "ok", "models": len(self.registry.list_models())}

    def predict(self, name: str, instances, version=None, *,
                return_proba: bool = False) -> dict:
        """Classify *instances* — a sequence of series, each ``(channels,
        length)`` or 1-D univariate.  A single 2-D array is accepted as a
        one-series convenience; everything else is validated per series,
        so e.g. a list of 1-D univariate series yields one label each
        rather than being misread as one multivariate series.

        Returns ``{"model", "version", "labels"}``; labels come back in
        request order whatever batches the series landed in.  With
        ``return_proba`` the result additionally carries ``"probas"``
        (one row-stochastic vector per instance), ``"confidences"`` (its
        per-instance maximum) and ``"classes"`` (the label values the
        probability columns refer to); a model without a probability
        head answers 400.  Raises :class:`ServingError` 429 under
        backpressure, 503 on shutdown.
        """
        with self._idle:
            if self._closed:
                raise ServingError(503, "service is shutting down")
            self._active += 1
        try:
            with self.tracer.span("serve.predict", model=name) as span:
                record, futures = self._admit(name, instances, version, None,
                                              return_proba)
                span.set("version", record.version)
                span.set("instances", len(futures))
                try:
                    results = [future.result(timeout=self.predict_timeout)
                               for future in futures]
                except FutureTimeoutError as error:
                    # Fail fast instead of parking a handler thread forever
                    # on a stalled batcher.
                    raise ServingError(
                        503,
                        f"prediction timed out after {self.predict_timeout}s"
                    ) from error
                if not return_proba:
                    return {"model": record.name, "version": record.version,
                            "labels": [_jsonable(label) for label in results]}
                classes = self._classes(record)
                return {
                    "model": record.name, "version": record.version,
                    "labels": [_jsonable(result.label) for result in results],
                    "probas": [[float(p) for p in result.proba]
                               for result in results],
                    "confidences": [float(result.proba.max())
                                    for result in results],
                    "classes": classes,
                }
        finally:
            with self._idle:
                self._active -= 1
                if not self._active:
                    self._idle.notify_all()

    def submit(self, name: str, instances, version=None, *,
               queue_timeout: float | None = None,
               return_proba: bool = False
               ) -> tuple[ModelRecord, list[Future]]:
        """Admit *instances* to the model's batcher without waiting.

        The asynchronous face of :meth:`predict`: the streaming scorer
        keeps many windows in flight and collects their futures in its
        own order.  With *queue_timeout*, a full queue blocks (bounded)
        instead of answering 429 immediately — mid-stream there is no
        client to bounce, so waiting *is* the backpressure.  With
        ``return_proba`` each future resolves to a
        :class:`~repro.serving.batcher.Prediction` (label + probability
        vector) instead of a bare label.

        Raises the same :class:`ServingError` family as :meth:`predict`.
        """
        with self._idle:
            if self._closed:
                raise ServingError(503, "service is shutting down")
            self._active += 1
        try:
            return self._admit(name, instances, version, queue_timeout,
                               return_proba)
        finally:
            with self._idle:
                self._active -= 1
                if not self._active:
                    self._idle.notify_all()

    def serves_proba(self, name: str, version=None) -> bool:
        """Whether ``name[:version]`` can answer ``return_proba`` requests.

        Resolving loads the model (memoised) — callers that stream ask
        once at stream-open, not per window.  Raises ``ServingError`` 404
        for an unknown model, 503 on shutdown.
        """
        _, batcher = self._resolve(name, version)
        return batcher.serves_proba

    def _classes(self, record: ModelRecord) -> list:
        """JSON-ready label values aligned with the model's proba columns."""
        key = (record.name, record.version)
        with self._lock:
            entry = self._loaded.get(key)
        classes = entry[1].classes if entry is not None else None
        if classes is None:
            return record.metadata.get("labels") or []
        return [_jsonable(value) for value in classes]

    def _admit(self, name: str, instances, version, queue_timeout,
               return_proba: bool = False) -> tuple[ModelRecord, list[Future]]:
        if isinstance(instances, np.ndarray):
            if instances.ndim in (1, 2):
                instances = instances[None]
        elif isinstance(instances, (list, tuple)) and instances \
                and np.isscalar(instances[0]):
            instances = [instances]  # one flat univariate series
        for attempt in (0, 1):
            record, batcher = self._resolve(name, version)
            try:
                # All-or-nothing admission: a 429 never leaves already-
                # submitted series computing for a client that will retry.
                futures = batcher.submit_many(instances, timeout=queue_timeout,
                                              return_proba=return_proba)
                return record, futures
            except QueueFullError as error:
                raise ServingError(429, str(error), retry_after=1) from error
            except (TypeError, ValueError) as error:
                raise ServingError(400, str(error)) from error
            except RuntimeError as error:
                # The batcher closed between _resolve and submit: either
                # the service is shutting down (the next _resolve answers
                # 503) or the LRU evicted this model under us — drop the
                # stale cache entry and retry once, which reloads it.
                key = (record.name, record.version)
                with self._lock:
                    current = self._loaded.get(key)
                    if current is not None and current[1] is batcher:
                        del self._loaded[key]
                if attempt:
                    raise ServingError(
                        503, f"model {name} was unloaded mid-request; retry",
                        retry_after=1,
                    ) from error

    # ------------------------------------------------------------------ #
    # streaming lifecycle
    # ------------------------------------------------------------------ #

    def open_stream(self, name: str, version=None
                    ) -> tuple[ModelRecord, StreamStats]:
        """Resolve a model for streaming and count the stream as active.

        Raises ``ServingError(404)`` for an unknown model — before any
        sample is consumed, so the transport can still answer with a
        proper status line.  Pair with :meth:`close_stream`.
        """
        try:
            record = self.registry.record(name, version)
        except KeyError as error:
            raise ServingError(404, error.args[0]) from error
        key = (record.name, record.version)
        with self._lock:
            stats = self._streams.setdefault(key, StreamStats())
        stats.opened.inc()
        stats.active.inc()
        return record, stats

    def adaptation_stats(self, name: str) -> AdaptationStats:
        """The per-name :class:`AdaptationStats`, created on first use."""
        with self._lock:
            return self._adaptation.setdefault(name, AdaptationStats())

    def close_stream(self, record: ModelRecord) -> None:
        """Count the stream on *record* as closed (active-gauge pair of
        :meth:`open_stream`; idempotence is the scorer's job)."""
        with self._lock:
            stats = self._streams.get((record.name, record.version))
        if stats is not None:
            stats.active.dec()

    def close(self) -> None:
        """Refuse new work, wait (bounded) for in-flight predicts, then
        drain and stop every batcher.

        The whole close is bounded by ``drain_timeout``: the in-flight
        wait and the batcher joins share one deadline, so a predict_fn
        stalled forever cannot hang shutdown — its daemon worker is
        abandoned instead.
        """
        with self._idle:
            self._closed = True
            deadline = time.monotonic() + self.drain_timeout
            while self._active:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(remaining)
            batchers = [batcher for _, batcher in self._loaded.values()]
            self._loaded.clear()
            self._loading.clear()  # per-version load locks die with us
        for batcher in batchers:
            batcher.close(timeout=max(0.1, deadline - time.monotonic()))

    # ------------------------------------------------------------------ #

    def record_response(self, status: int) -> None:
        """Count one HTTP response for ``/metrics`` (called by the handler)."""
        with self._lock:
            self._http_responses[status] = self._http_responses.get(status, 0) + 1

    def record_client_disconnect(self, **info) -> None:
        """Count one client disconnect (the peer hung up before reading
        its response) and emit a structured ``client_disconnect`` event.

        Called by the HTTP handler when a write hits
        ``BrokenPipeError``/``ConnectionResetError`` — previously these
        were swallowed invisibly; now they are first-class signal:
        ``repro_serving_client_disconnects_total`` in ``/metrics`` plus
        one structured log line carrying *info* (client, path, status).
        """
        with self._lock:
            self._client_disconnects += 1
        self.logger.event("client_disconnect", **info)

    def observe_stage(self, key: tuple[str, int], stage: str,
                      seconds: float) -> None:
        """Record one per-stage latency observation for model *key*.

        *stage* is one of ``queue_wait`` / ``assemble`` / ``predict``
        (reported by the batcher) or ``serialize`` (reported by the HTTP
        handler).  Histograms are created lazily per ``(name, version,
        stage)`` and rendered in ``/metrics`` as
        ``repro_serving_stage_latency_seconds{...,stage="..."}``.
        """
        stages = self._stage.get(key)
        if stages is None:
            with self._lock:
                stages = self._stage.setdefault(key, {})
        hist = stages.get(stage)
        if hist is None:
            with self._lock:
                hist = stages.setdefault(stage,
                                         Histogram(STAGE_LATENCY_BUCKETS))
        hist.observe(seconds)

    def debug_traces(self, *, limit: int = 20, slowest: bool = False) -> dict:
        """The flight recorder's view, as served at ``/v1/debug/traces``.

        Returns ``{"enabled", "stats", "traces"}``; ``traces`` is newest
        first (or slowest first with *slowest*), empty whenever tracing
        never ran or no recorder is attached.
        """
        recorder = self.tracer.recorder
        out = {"enabled": self.tracer.enabled, "stats": {}, "traces": []}
        if recorder is not None:
            out["stats"] = recorder.stats()
            out["traces"] = recorder.snapshot(limit=limit, slowest=slowest)
        return out

    def metrics_text(self) -> str:
        """The Prometheus exposition-format dump for ``/metrics``."""
        with self._lock:
            stats = list(self._stats.items())
            streams = sorted(self._streams.items())
            adaptation = sorted(self._adaptation.items())
            depths = {key: batcher.queue_depth
                      for key, (_, batcher) in self._loaded.items()}
            responses = sorted(self._http_responses.items())
            n_loaded = len(self._loaded)
            stage_stats = [(key, dict(stages))
                           for key, stages in sorted(self._stage.items())]
            disconnects = self._client_disconnects
        lines: list[str] = []

        def family(name: str, kind: str, help_text: str, samples) -> None:
            block = list(samples)
            if not block and kind != "gauge":
                return
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(block)

        def labels(key):
            return {"model": key[0], "version": str(key[1])}

        family("repro_serving_requests_total", "counter",
               "Series admitted to a model's micro-batcher.",
               (format_sample("repro_serving_requests_total", labels(key),
                              stat.requests) for key, stat in stats))
        family("repro_serving_rejected_total", "counter",
               "Series refused by the bounded queue (answered 429).",
               (format_sample("repro_serving_rejected_total", labels(key),
                              stat.rejected) for key, stat in stats))
        family("repro_serving_batches_total", "counter",
               "Coalesced panels predicted.",
               (format_sample("repro_serving_batches_total", labels(key),
                              stat.batches) for key, stat in stats))
        family("repro_serving_queue_depth", "gauge",
               "Requests waiting in each loaded model's queue.",
               (format_sample("repro_serving_queue_depth", labels(key), depth)
                for key, depth in sorted(depths.items())))
        family("repro_serving_loaded_models", "gauge",
               "Models currently resident in memory.",
               [format_sample("repro_serving_loaded_models", None, n_loaded)])
        family("repro_serving_streams_total", "counter",
               "NDJSON streams opened against each model.",
               (format_sample("repro_serving_streams_total", labels(key),
                              stream.opened.value) for key, stream in streams))
        family("repro_serving_active_streams", "gauge",
               "NDJSON streams currently open per model.",
               (format_sample("repro_serving_active_streams", labels(key),
                              stream.active.value) for key, stream in streams))
        family("repro_serving_stream_windows_total", "counter",
               "Windows scored through the streaming scorer.",
               (format_sample("repro_serving_stream_windows_total", labels(key),
                              stream.windows.value) for key, stream in streams))
        family("repro_serving_stream_shifts_total", "counter",
               "Windows the drift monitor flagged as shifted.",
               (format_sample("repro_serving_stream_shifts_total", labels(key),
                              stream.shifts.value) for key, stream in streams))
        def name_labels(name):
            return {"model": name}

        family("repro_serving_adaptation_retrainings_total", "counter",
               "Canary retrainings triggered by confirmed drift flags.",
               (format_sample("repro_serving_adaptation_retrainings_total",
                              name_labels(name), stat.retrainings.value)
                for name, stat in adaptation))
        family("repro_serving_adaptation_promotions_total", "counter",
               "Canaries promoted to the stable tag.",
               (format_sample("repro_serving_adaptation_promotions_total",
                              name_labels(name), stat.promotions.value)
                for name, stat in adaptation))
        family("repro_serving_adaptation_rollbacks_total", "counter",
               "Canaries rolled back after shadow scoring.",
               (format_sample("repro_serving_adaptation_rollbacks_total",
                              name_labels(name), stat.rollbacks.value)
                for name, stat in adaptation))
        family("repro_serving_shadow_windows_total", "counter",
               "Live windows shadow-scored against a canary.",
               (format_sample("repro_serving_shadow_windows_total",
                              name_labels(name), stat.shadow_windows.value)
                for name, stat in adaptation))
        family("repro_serving_shadow_agreements_total", "counter",
               "Shadow windows where canary and stable predicted alike.",
               (format_sample("repro_serving_shadow_agreements_total",
                              name_labels(name), stat.shadow_agreements.value)
                for name, stat in adaptation))
        family("repro_serving_canary_version", "gauge",
               "Version currently under canary evaluation (0 = none).",
               (format_sample("repro_serving_canary_version",
                              name_labels(name), stat.canary_version.value)
                for name, stat in adaptation))
        family("repro_serving_canary_age_windows", "gauge",
               "Live windows scored since the current canary was published.",
               (format_sample("repro_serving_canary_age_windows",
                              name_labels(name), stat.canary_age.value)
                for name, stat in adaptation))
        confidence_lines: list[str] = []
        for key, stream in streams:
            if stream.confidence.count:
                confidence_lines.extend(render_histogram(
                    "repro_serving_stream_confidence", labels(key),
                    stream.confidence.snapshot()))
        family("repro_serving_stream_confidence", "histogram",
               "Top-1 probability per scored window (proba-serving models).",
               confidence_lines)
        batch_lines: list[str] = []
        latency_lines: list[str] = []
        for key, stat in stats:
            batch_lines.extend(render_histogram(
                "repro_serving_batch_size", labels(key),
                stat.batch_sizes.snapshot()))
            latency_lines.extend(render_histogram(
                "repro_serving_request_latency_seconds", labels(key),
                stat.latency.snapshot()))
        family("repro_serving_batch_size", "histogram",
               "Coalesced panel sizes.", batch_lines)
        family("repro_serving_request_latency_seconds", "histogram",
               "Submit-to-completion seconds per series.", latency_lines)
        stage_lines: list[str] = []
        for key, stages in stage_stats:
            for stage_name, hist in sorted(stages.items()):
                stage_lines.extend(render_histogram(
                    "repro_serving_stage_latency_seconds",
                    {**labels(key), "stage": stage_name}, hist.snapshot()))
        family("repro_serving_stage_latency_seconds", "histogram",
               "Per-stage request latency: queue_wait, assemble, predict, "
               "serialize.", stage_lines)
        family("repro_serving_client_disconnects_total", "counter",
               "Responses abandoned because the client hung up first.",
               [format_sample("repro_serving_client_disconnects_total",
                              None, disconnects)])
        sessions = self.sessions
        family("repro_session_opened_total", "counter",
               "Durable stream sessions opened.",
               [format_sample("repro_session_opened_total", None,
                              sessions.opened.value)])
        family("repro_session_resumed_total", "counter",
               "Session re-attachments after a disconnect.",
               [format_sample("repro_session_resumed_total", None,
                              sessions.resumed.value)])
        family("repro_session_active", "gauge",
               "Sessions currently attached to a live stream.",
               [format_sample("repro_session_active", None,
                              sessions.active.value)])
        family("repro_session_snapshots_total", "counter",
               "Per-window session snapshots saved.",
               [format_sample("repro_session_snapshots_total", None,
                              sessions.snapshots.value)])
        family("repro_session_replayed_windows_total", "counter",
               "Cached window lines replayed to resuming clients.",
               [format_sample("repro_session_replayed_windows_total", None,
                              sessions.replayed.value)])
        family("repro_session_handoffs_total", "counter",
               "Sessions adopted from a peer worker on resume.",
               [format_sample("repro_session_handoffs_total", None,
                              sessions.handoffs.value)])
        family("repro_session_takeovers_total", "counter",
               "Resumes that fenced out a still-attached handler "
               "(half-open or zombie connections).",
               [format_sample("repro_session_takeovers_total", None,
                              sessions.takeovers.value)])
        family("repro_session_expired_total", "counter",
               "Suspended sessions dropped by TTL or eviction.",
               [format_sample("repro_session_expired_total", None,
                              sessions.expired.value)])
        family("repro_session_swaps_total", "counter",
               "In-place model version swaps on session streams.",
               [format_sample("repro_session_swaps_total", None,
                              sessions.swaps.value)])
        family("repro_serving_http_responses_total", "counter",
               "HTTP responses by status code.",
               (format_sample("repro_serving_http_responses_total",
                              {"status": str(status)}, count)
                for status, count in responses))
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------ #

    def _resolve(self, name: str, version) -> tuple[ModelRecord, MicroBatcher]:
        try:
            record = self.registry.record(name, version)
        except KeyError as error:
            # KeyError.__str__ repr-quotes its message; unwrap it.
            raise ServingError(404, error.args[0]) from error
        key = (record.name, record.version)
        with self._lock:
            if self._closed:
                raise ServingError(503, "service is shutting down")
            entry = self._loaded.get(key)
            if entry is not None:
                self._loaded[key] = self._loaded.pop(key)  # refresh LRU rank
                return entry
            load_lock = self._loading.setdefault(key, threading.Lock())
        # Deserialisation can take seconds for deep ensembles; hold only this
        # version's lock so other models keep answering from the cache.
        with load_lock:
            with self._lock:
                entry = self._loaded.get(key)
            if entry is not None:
                return entry
            with self.tracer.span("model.load", model=record.name,
                                  version=record.version):
                model, record = self.registry.load(record.name, record.version)
                # Policy resolution: service override > published metadata
                # (already applied by registry.load) > the float32 serving
                # default.  Batch, stream and shadow-canary traffic all
                # come through this one load path, so they hit the same
                # fused banks under the same policy.
                policy = self.compute_policy
                if policy is None and "compute_policy" not in record.metadata:
                    policy = INFERENCE_POLICY
                apply_inference_policy(model, policy)
            predict_fn = model.predict
            preprocessed = record.metadata.get("preprocessing") \
                == PROTOCOL_PREPROCESSING
            if preprocessed:
                predict_fn = lambda panel, _m=model: _m.predict(prepare_panel(panel))  # noqa: E731
            # Probability head: enabled whenever the model serves
            # predict_proba *and* exposes its class order — the batcher
            # derives labels from probability rows, so the column labels
            # are not optional.
            proba_fn = getattr(model, "predict_proba", None)
            classes = getattr(model, "classes_", None)
            if proba_fn is not None and classes is not None:
                if preprocessed:
                    proba_fn = lambda panel, _m=model: _m.predict_proba(prepare_panel(panel))  # noqa: E731
            else:
                proba_fn = classes = None
            shape = record.metadata.get("input_shape")
            with self._lock:
                stats = self._stats.setdefault(key, BatcherStats())
            entry = (record, MicroBatcher(
                predict_fn,
                input_shape=tuple(shape) if shape else None,
                max_batch=self.max_batch, max_latency=self.max_latency,
                workers=self.workers, max_queue=self.max_queue,
                # prepare_panel imputes, so NaN requests are servable —
                # and must stay so (missing values are a modelled archive
                # characteristic).
                admit_nan=preprocessed, stats=stats,
                proba_fn=proba_fn, classes=classes,
                stage_observer=partial(self.observe_stage, key),
                tracer=self.tracer,
            ))
            evicted = []
            with self._lock:
                if self._closed:
                    # close() ran while we were loading; don't resurrect.
                    entry[1].close()
                    raise ServingError(503, "service is shutting down")
                self._loaded[key] = entry
                while self.max_loaded_models > 0 \
                        and len(self._loaded) > self.max_loaded_models:
                    oldest = next(iter(self._loaded))
                    evicted.append(self._loaded.pop(oldest))
            for _, old_batcher in evicted:
                # Outside the lock: close() drains the evicted model's
                # queued requests, so nobody who was already admitted loses
                # an answer to the eviction.
                old_batcher.close()
        return entry


def _jsonable(value):
    """Numpy scalars -> plain python for json.dumps."""
    if isinstance(value, np.generic):
        return value.item()
    return value


# --------------------------------------------------------------------------- #
# HTTP layer
# --------------------------------------------------------------------------- #


class _Handler(BaseHTTPRequestHandler):
    service: PredictionService  # injected by create_server
    quiet = True
    #: refuse request bodies above this many bytes with 413 (0 = unlimited)
    max_body_bytes = 0
    #: one structured JSON line per request on stderr
    access_log = False
    # Keep-alive: _reply always sends Content-Length, so clients can reuse
    # one connection for a burst instead of a TCP handshake per request.
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._started = time.monotonic()
        self._span = span = self.service.tracer.span(
            "http.request", method="GET", path=self.path)
        with span:
            self._handle_get()

    def _handle_get(self) -> None:
        """Route one GET request (inside the request's root span)."""
        url = urllib.parse.urlsplit(self.path)
        try:
            if url.path == "/healthz":
                self._reply(200, self.service.healthz())
            elif url.path == "/metrics":
                self._send(200, self.service.metrics_text().encode(),
                           "text/plain; version=0.0.4; charset=utf-8")
            elif url.path == "/v1/models":
                self._reply(200, {"models": self.service.models()})
            elif url.path == "/v1/debug/traces":
                query = urllib.parse.parse_qs(url.query)
                limit = int(query.get("limit", ["20"])[0])
                slowest = query.get("slowest", ["0"])[0].lower() \
                    not in ("", "0", "false")
                self._reply(200, self.service.debug_traces(
                    limit=limit, slowest=slowest))
            else:
                self._reply(404, {"error": f"no route for GET {self.path}"})
        except Exception as error:  # noqa: BLE001 - must answer the client
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._started = time.monotonic()
        self._span = span = self.service.tracer.span(
            "http.request", method="POST", path=self.path)
        with span:
            self._handle_post()

    def _handle_post(self) -> None:
        """Route one POST request (inside the request's root span)."""
        url = urllib.parse.urlsplit(self.path)
        parts = url.path.strip("/").split("/")
        routed = len(parts) == 4 and parts[:2] == ["v1", "models"]
        if routed and parts[3] == "stream":
            self._stream(parts[2], urllib.parse.parse_qs(url.query))
            return
        if not routed or parts[3] != "predict":
            self._reply(404, {"error": f"no route for POST {self.path}"})
            return
        try:
            body = self._read_json()
            result = self._predict(parts[2], body)
        except ServingError as error:
            headers = {}
            if error.retry_after is not None:
                headers["Retry-After"] = str(error.retry_after)
            self._reply(error.status, {"error": str(error)}, headers=headers)
        except Exception as error:  # noqa: BLE001 - must answer the client
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            started = time.monotonic()
            with self.service.tracer.span("serialize", model=result["model"]):
                self._reply(200, result)
            self.service.observe_stage(
                (result["model"], result["version"]), "serialize",
                time.monotonic() - started)

    def _predict(self, name: str, body: dict) -> dict:
        if not isinstance(body, dict):
            raise ServingError(400, "request body must be a JSON object")
        single = "series" in body
        if single == ("instances" in body):
            raise ServingError(400, "provide exactly one of 'series' or 'instances'")
        instances = [body["series"]] if single else body["instances"]
        want_proba = bool(body.get("proba", False))
        try:
            result = self.service.predict(name, instances, body.get("version"),
                                          return_proba=want_proba)
        except ValueError as error:
            raise ServingError(400, str(error)) from error
        if single:
            result["label"] = result.pop("labels")[0]
            if want_proba:
                result["proba"] = result.pop("probas")[0]
                result["confidence"] = result.pop("confidences")[0]
        return result

    # ------------------------------------------------------------------ #
    # streaming: POST /v1/models/<name>/stream  (NDJSON in, NDJSON out)
    # ------------------------------------------------------------------ #

    #: refuse NDJSON lines longer than this — a line is one sample, and a
    #: megabyte of sample means a broken or hostile sender
    _MAX_STREAM_LINE = 1_048_576

    #: session ids live in URLs, metrics and unix-socket JSON — keep them
    #: to a filename-safe alphabet
    _SESSION_ID = re.compile(r"[A-Za-z0-9._-]{1,64}")

    def _stream(self, name: str, query: dict[str, list[str]]) -> None:
        """Score an NDJSON sample stream window by window.

        The request body is NDJSON — one ``{"values": [...], "label": n?}``
        object per line, chunked transfer encoding or a plain
        ``Content-Length`` body.  The response is NDJSON too, streamed in
        chunked encoding: one ``{"kind": "window", ...}`` line per scored
        window *as it resolves*, then one ``{"kind": "summary", ...}``
        line.  Window lines carry ``confidence`` whenever the model
        serves probabilities; ``?proba=1`` additionally inlines each
        window's full probability vector.  Failures after the 200 status
        has been committed are reported in-band as a
        ``{"kind": "error", ...}`` line.

        ``?session=<id>`` makes the stream durable: the response leads
        with a ``{"kind": "session", ...}`` ack, every window line gains
        a monotonic ``token`` plus the server's consumed-``samples``
        count, and on disconnect the scorer state survives in the
        service's session store.  ``?resume=<token>`` re-attaches: the
        cached window lines past the token are replayed verbatim and
        scoring continues from the snapshot — nothing re-scored, nothing
        lost.  Session streams opened against a tag (or the floating
        latest) also follow model promotions in place, announced by a
        ``{"kind": "swap", ...}`` line (``?follow=0`` pins); and when
        the worker starts draining, the stream is handed back with
        ``{"kind": "detach"}`` so the client resumes on a peer.
        """
        from ..streaming.scorer import StreamScorer  # deferred: avoids a cycle
        from ..streaming.session import SessionError

        store = self.service.sessions
        scorer = None
        session = None
        epoch = 0
        resume = None
        try:
            window = int(query.get("window", ["32"])[0])
            hop = int(query.get("hop", [str(window)])[0])
            version = query.get("version", [None])[0]
            with_proba = query.get("proba", ["0"])[0].lower() \
                not in ("", "0", "false")
            follow = query.get("follow", ["1"])[0].lower() \
                not in ("", "0", "false")
            session_id = query.get("session", [None])[0]
            resume_arg = query.get("resume", [None])[0]
            resume = None if resume_arg is None else int(resume_arg)
            replay: list[dict] = []
            if resume is not None and session_id is None:
                raise ServingError(400, "resume= requires session=")
            if session_id is not None:
                if not self._SESSION_ID.fullmatch(session_id):
                    raise ServingError(
                        400, "session ids are 1-64 characters of "
                             "[A-Za-z0-9._-]")
                if resume is not None:
                    session, replay = store.resume(session_id, resume)
                else:
                    session = store.open(session_id)
                epoch = session.epoch
            body_lines = self._open_body_lines()
            scorer = StreamScorer(self.service, name, window=window, hop=hop,
                                  version=version, session=session)
        except SessionError as error:
            self._settle_session(session, epoch,
                                 resumable=resume is not None)
            self._reply(error.status, {"error": str(error)})
            return
        except ServingError as error:
            if scorer is not None:
                scorer.close()
            self._settle_session(session, epoch,
                                 resumable=resume is not None)
            self._reply(error.status, {"error": str(error)})
            return
        except ValueError as error:
            self._settle_session(session, epoch,
                                 resumable=resume is not None)
            self._reply(400, {"error": f"bad stream parameters: {error}"})
            return

        # From here on the stream is committed: errors go in-band.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        self.close_connection = True
        sent = 0
        self._body_truncated = False
        resumable = True  # how to settle the session if the wire dies
        try:
            try:
                if session is not None:
                    ack = {"kind": "session", "session": session.id,
                           "token": session.token,
                           "samples": session.samples}
                    slot = getattr(self, "worker_slot", None)
                    if slot is not None:
                        ack["worker"] = slot
                    sent += self._write_stream_line(ack)
                    for line in replay:
                        sent += self._write_stream_line(line)
                detach = False
                for line in body_lines:
                    if not line.strip():
                        continue
                    sample = json.loads(line)
                    if not isinstance(sample, dict) or "values" not in sample:
                        raise ValueError(
                            'each stream line is {"values": [...]} with an '
                            'optional "label"'
                        )
                    swap_line = None
                    if session is None:
                        results = scorer.feed(sample["values"],
                                              sample.get("label"))
                        payloads = self._prepare_windows(
                            results, session, store, with_proba)
                    else:
                        # One owner batch: scorer advance, line caching
                        # and the store save land atomically with
                        # respect to a resume takeover — the socket
                        # writes stay outside so a zombie connection
                        # can never stall a takeover.
                        with session.guard(epoch):
                            results = scorer.feed(sample["values"],
                                                  sample.get("label"))
                            payloads = self._prepare_windows(
                                results, session, store, with_proba)
                            if follow and results:
                                swapped = scorer.follow()
                                if swapped is not None:
                                    store.swaps.inc()
                                    swap_line = {
                                        "kind": "swap",
                                        "version": swapped.version,
                                        "window": scorer.windows}
                    for payload in payloads:
                        sent += self._write_stream_line(payload)
                    if swap_line is not None:
                        sent += self._write_stream_line(swap_line)
                    if session is not None \
                            and getattr(self.server, "draining", False):
                        # Hand the stream back mid-drain: the client
                        # resumes on a peer worker instead of losing
                        # the session with the process.
                        detach = True
                        break
                truncated = session is not None and self._body_truncated
                if session is None:
                    payloads = self._prepare_windows(
                        scorer.finish(), session, store, with_proba)
                else:
                    with session.guard(epoch):
                        payloads = self._prepare_windows(
                            scorer.finish(), session, store, with_proba)
                for payload in payloads:
                    sent += self._write_stream_line(payload)
                if detach:
                    sent += self._write_stream_line(
                        {"kind": "detach", "reason": "draining",
                         "token": session.token})
                elif truncated:
                    # The connection died mid-body; the client never saw
                    # an end-of-stream, so keep the session resumable
                    # rather than retiring it under a summary it will
                    # never read.
                    pass
                else:
                    sent += self._write_stream_line({
                        "kind": "summary", "model": scorer.record.name,
                        "version": scorer.record.version,
                        "samples": scorer.samples, "windows": scorer.windows,
                        "shifts": scorer.shifts,
                    })
                    # Only now is the session genuinely over: had the
                    # summary write died on the wire, the client would
                    # still need to resume to learn the stream's fate.
                    resumable = False
            except SessionError as error:
                # Post-commit session conflict — most likely this
                # attachment was fenced out by a resume takeover.  The
                # session itself is fine (owned by someone newer); this
                # connection just ends.  The in-band line is best-effort:
                # a taken-over connection is usually already dead.
                sent += self._write_stream_line(
                    {"kind": "error", "error": str(error)})
            except (json.JSONDecodeError, ValueError, ServingError) as error:
                sent += self._write_stream_line(
                    {"kind": "error", "error": str(error)})
            # Close (idempotent) before the terminal chunk: when the client
            # unblocks, the active-streams gauge has already dropped.
            scorer.close()
            self.wfile.write(b"0\r\n\r\n")  # terminate the chunked body
        except (BrokenPipeError, ConnectionResetError, TimeoutError) as error:
            # Client hung up mid-stream; nothing left to answer, but the
            # hangup itself is signal.
            self.service.record_client_disconnect(
                client=self.client_address[0], method=self.command,
                path=self.path, status=200, error=type(error).__name__)
        finally:
            scorer.close()
            self._settle_session(session, epoch, resumable=resumable)
        self.service.record_response(200)
        if self.access_log:
            self._log_access(200, sent)

    def _settle_session(self, session, epoch: int = 0, *,
                        resumable: bool) -> None:
        """Detach or retire *session* when its stream ends (None is fine).

        *epoch* is the attachment this handler holds; the store ignores
        the call if a takeover moved the session to a newer owner.
        """
        if session is None:
            return
        store = self.service.sessions
        if resumable:
            store.suspend(session, epoch or None)
        else:
            store.finish(session, epoch or None)

    def _prepare_windows(self, results, session, store,
                         with_proba: bool) -> list[dict]:
        """Build a batch's wire payloads; session lines gain token/ack.

        In session mode every line is cached (and the snapshot saved —
        the pool's replication point) *before* the first byte is
        written: the scorer has already advanced the resume token for
        the whole batch, so a wire failure halfway through must leave
        the replay cache covering everything the token claims.  The
        caller writes the returned payloads outside the session guard.
        """
        payloads = []
        for result in results:
            payload = result.as_dict(with_proba=with_proba)
            if session is not None:
                payload["token"] = result.index + 1
                if result.samples is not None:
                    payload["samples"] = result.samples
                session.remember(payload)
            payloads.append(payload)
        if session is not None and payloads:
            store.save(session)
        return payloads

    def _write_stream_line(self, payload: dict) -> int:
        """Write one NDJSON line as its own chunk; returns the byte count."""
        data = json.dumps(payload).encode() + b"\n"
        self.wfile.write(b"%x\r\n" % len(data) + data + b"\r\n")
        self.wfile.flush()
        return len(data)

    def _open_body_lines(self):
        """Validate the request framing and return the body line iterator."""
        encoding = (self.headers.get("Transfer-Encoding") or "").lower()
        if "chunked" in encoding:
            return self._iter_lines(self._iter_chunked_body())
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServingError(
                400, "a stream body needs chunked transfer encoding or a "
                     "Content-Length"
            )
        if self.max_body_bytes and length > self.max_body_bytes:
            # Same admission control as predict; see _read_json.
            self.close_connection = True
            self._discard_body(length)
            raise ServingError(
                413, f"request body of {length} bytes exceeds the "
                     f"{self.max_body_bytes}-byte limit"
            )
        return self._iter_lines(self._iter_sized_body(length))

    def _iter_chunked_body(self):
        while True:
            size_line = self.rfile.readline(1024)
            try:
                size = int(size_line.split(b";")[0].strip() or b"", 16)
            except ValueError:
                raise ServingError(400, "malformed chunked encoding") from None
            if size == 0:
                while True:  # trailer section, ends at the blank line
                    trailer = self.rfile.readline(1024)
                    if trailer in (b"\r\n", b"\n", b""):
                        return
            data = self.rfile.read(size)
            self.rfile.read(2)  # the chunk's trailing CRLF
            if len(data) < size:
                # Connection died mid-chunk: not a clean end-of-body —
                # session streams must stay resumable, not summarise.
                self._body_truncated = True
                return
            yield data

    def _iter_sized_body(self, length: int):
        remaining = length
        while remaining > 0:
            data = self.rfile.read(min(65536, remaining))
            if not data:
                self._body_truncated = True  # died short of Content-Length
                return
            remaining -= len(data)
            yield data

    def _iter_lines(self, chunks):
        buffer = b""
        for data in chunks:
            buffer += data
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                yield line
            if len(buffer) > self._MAX_STREAM_LINE:
                raise ServingError(
                    400, f"stream line exceeds {self._MAX_STREAM_LINE} bytes")
        if buffer.strip():
            yield buffer

    # ------------------------------------------------------------------ #

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServingError(400, "empty request body")
        if self.max_body_bytes and length > self.max_body_bytes:
            # Refuse without buffering, but *drain* the wire (bounded):
            # closing a socket with unread data makes the kernel send RST,
            # which can destroy the 413 response before the client reads
            # it.  The bytes are discarded chunk by chunk, never held.
            self.close_connection = True
            self._discard_body(length)
            raise ServingError(
                413, f"request body of {length} bytes exceeds the "
                     f"{self.max_body_bytes}-byte limit"
            )
        try:
            return json.loads(self.rfile.read(length))
        except json.JSONDecodeError as error:
            raise ServingError(400, f"invalid JSON body: {error}") from error

    #: stop draining a refused body past this; a sender lying about a
    #: colossal Content-Length gets the RST instead of our time
    _DISCARD_LIMIT = 64 * 1024 * 1024

    def _discard_body(self, length: int) -> None:
        remaining = min(length, self._DISCARD_LIMIT)
        try:
            while remaining > 0:
                chunk = self.rfile.read(min(65536, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
        except (ConnectionResetError, TimeoutError):
            pass  # sender already gave up; nothing left to protect

    def _reply(self, status: int, payload: dict,
               headers: dict[str, str] | None = None) -> None:
        self._send(status, json.dumps(payload).encode(), "application/json",
                   headers)

    def _send(self, status: int, body: bytes, content_type: str,
              headers: dict[str, str] | None = None) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, TimeoutError) as error:
            # The client hung up before reading its answer.  That is the
            # client's problem, not a server error: swallow it so the
            # handler thread survives instead of dying with a traceback —
            # but count and log it, because a burst of disconnects is a
            # latency or client-timeout story someone needs to see.
            self.close_connection = True
            self.service.record_client_disconnect(
                client=self.client_address[0], method=self.command,
                path=self.path, status=status, error=type(error).__name__)
        span = getattr(self, "_span", None)
        if span is not None:
            span.set("status", status)
        self.service.record_response(status)
        if self.access_log:
            self._log_access(status, len(body))

    def _log_access(self, status: int, n_bytes: int) -> None:
        """One structured ``access`` event per request, via the shared
        logger — same ``time``/``client``/``method``/``path``/``status``
        /``bytes``/``ms`` keys the ad-hoc JSON lines always carried."""
        elapsed = time.monotonic() - getattr(self, "_started", time.monotonic())
        self.service.logger.event(
            "access",
            time=round(time.time(), 3),
            client=self.client_address[0],
            method=self.command,
            path=self.path,
            status=status,
            bytes=n_bytes,
            ms=round(elapsed * 1000, 2),
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)


class PredictionServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` owning a :class:`PredictionService`.

    With ``bind_and_activate=False`` the server is built around a socket
    the caller supplies afterwards (``adopt_socket``) — the pre-fork
    worker pool uses this to serve from a listener bound before the
    fork, or from its own ``SO_REUSEPORT`` socket.
    """

    daemon_threads = True

    def __init__(self, address, handler, service: PredictionService, *,
                 bind_and_activate: bool = True):
        super().__init__(address, handler, bind_and_activate)
        self.service = service

    def adopt_socket(self, sock) -> None:
        """Serve from *sock*, an already-bound listener, instead of the
        placeholder socket ``bind_and_activate=False`` left us with.

        The placeholder is closed, the adopted socket's address becomes
        the server address, and the listener is (re-)activated —
        ``listen`` on an already-listening socket is a no-op.
        """
        self.socket.close()
        self.socket = sock
        self.server_address = sock.getsockname()
        self.server_activate()

    def server_close(self) -> None:
        """Graceful stop: drain in-flight predicts and every batcher
        queue before the listening socket is torn down, so a stop never
        abandons an admitted request."""
        self.service.close()
        super().server_close()

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0`` ephemeral binds)."""
        return self.server_address[1]


def build_service(registry: ModelRegistry | str, *, max_batch: int = 64,
                  max_latency: float = 0.005, batch_workers: int = 1,
                  max_queue: int = 1024, max_loaded_models: int = 0,
                  compute_policy: ComputePolicy | None = None,
                  tracer=None) -> PredictionService:
    """Build the :class:`PredictionService` ``create_server`` wires up.

    Shared by the single-process server and the pre-fork worker pool
    (each pool worker builds its own service after the fork — shared
    nothing), so the two tiers can never drift in how a service is
    configured.
    """
    if not isinstance(registry, ModelRegistry):
        registry = ModelRegistry(registry)
    return PredictionService(registry, max_batch=max_batch,
                             max_latency=max_latency, workers=batch_workers,
                             max_queue=max_queue,
                             max_loaded_models=max_loaded_models,
                             compute_policy=compute_policy,
                             tracer=tracer)


def create_server(registry: ModelRegistry | str, *, host: str = "127.0.0.1",
                  port: int = 0, max_batch: int = 64, max_latency: float = 0.005,
                  batch_workers: int = 1, quiet: bool = True,
                  max_queue: int = 1024, max_loaded_models: int = 0,
                  max_body_bytes: int = 10_000_000,
                  access_log: bool = False,
                  compute_policy: ComputePolicy | None = None,
                  tracer=None) -> PredictionServer:
    """Build a ready-to-run prediction server (``port=0`` picks a free one).

    Run it with ``server.serve_forever()`` (blocking) or from a thread;
    ``server.server_close()`` drains in-flight work and shuts down the
    per-model batchers.  The defaults are load-safe: a bounded per-model
    queue (429 on overflow) and a 10 MB body cap (413 above it);
    ``max_loaded_models`` bounds resident models with LRU eviction.
    ``compute_policy`` overrides every model's published policy (e.g.
    ``ComputePolicy("float64")`` to force the bit-pinned reference path);
    ``None`` honours each record's metadata with a float32 default.
    """
    service = build_service(registry, max_batch=max_batch,
                            max_latency=max_latency,
                            batch_workers=batch_workers, max_queue=max_queue,
                            max_loaded_models=max_loaded_models,
                            compute_policy=compute_policy, tracer=tracer)
    handler = type("Handler", (_Handler,), {
        "service": service, "quiet": quiet,
        "max_body_bytes": int(max_body_bytes), "access_log": bool(access_log),
    })
    return PredictionServer((host, port), handler, service)
