"""Stdlib HTTP prediction server over a model registry.

Routes (JSON in, JSON out)::

    GET  /healthz                        liveness + model count
    GET  /v1/models                      latest record per published name
    POST /v1/models/<name>/predict       classify one series or a list

A predict body carries either one series (``{"series": [[...], ...]}`` —
a ``channels x length`` matrix) or several (``{"instances": [series,
...]}``); ``{"version": 2}`` or ``{"version": "prod"}`` selects a
non-latest version or a tag.  The response echoes the model identity and
returns ``"label"`` (or ``"labels"``).

The server is a ``ThreadingHTTPServer``: each connection gets a thread,
and all threads funnel their series into one shared
:class:`~repro.serving.batcher.MicroBatcher` per model version, so
concurrent clients are answered from coalesced panels.  Models are
loaded from the registry lazily and memoised.  Input series are
preprocessed exactly as the training protocol preprocesses panels
(per-series z-normalisation, then imputation) when the published
metadata says the model was trained that way.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..data.dataset import TimeSeriesDataset
from ..experiments.protocol import _prepare as _protocol_prepare
from .batcher import MicroBatcher
from .registry import ModelRecord, ModelRegistry

__all__ = ["PredictionService", "PredictionServer", "ServingError",
           "create_server", "prepare_panel", "PROTOCOL_PREPROCESSING"]

#: metadata value written by ``repro train`` — the training-protocol
#: preprocessing (znormalize + impute) the server must mirror
PROTOCOL_PREPROCESSING = "znormalize+impute"


def prepare_panel(X: np.ndarray) -> np.ndarray:
    """Apply the training protocol's preprocessing to a raw panel.

    Delegates to the protocol's own ``_prepare`` so the serving path can
    never drift from what published models were trained on.
    """
    dataset = TimeSeriesDataset(X, np.zeros(len(X), dtype=np.int64))
    return _protocol_prepare(dataset).X


class ServingError(Exception):
    """A client-visible failure with an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class PredictionService:
    """Registry-backed prediction with one micro-batcher per model version.

    The service is the transport-free core of the server: the HTTP layer,
    the CLI ``predict`` command and in-process tests all call the same
    :meth:`predict`.
    """

    def __init__(self, registry: ModelRegistry, *, max_batch: int = 64,
                 max_latency: float = 0.005, workers: int = 1,
                 predict_timeout: float = 30.0):
        self.registry = registry
        self.max_batch = max_batch
        self.max_latency = max_latency
        self.workers = workers
        self.predict_timeout = predict_timeout
        self._loaded: dict[tuple[str, int], tuple[ModelRecord, MicroBatcher]] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: per-version load locks, so a cold load of one model never blocks
        #: requests that only need the cache
        self._loading: dict[tuple[str, int], threading.Lock] = {}

    # ------------------------------------------------------------------ #

    def models(self) -> list[dict]:
        """Latest record per name, with the total version count."""
        out = []
        for name in self.registry.list_models():
            versions = self.registry.versions(name)
            latest = versions[-1].describe()
            latest["n_versions"] = len(versions)
            out.append(latest)
        return out

    def predict(self, name: str, instances, version=None) -> dict:
        """Classify *instances* — a sequence of series, each ``(channels,
        length)`` or 1-D univariate.  A single 2-D array is accepted as a
        one-series convenience; everything else is validated per series,
        so e.g. a list of 1-D univariate series yields one label each
        rather than being misread as one multivariate series.

        Returns ``{"model", "version", "labels"}``; labels come back in
        request order whatever batches the series landed in.
        """
        record, batcher = self._resolve(name, version)
        if isinstance(instances, np.ndarray):
            if instances.ndim in (1, 2):
                instances = instances[None]
        elif isinstance(instances, (list, tuple)) and instances \
                and np.isscalar(instances[0]):
            instances = [instances]  # one flat univariate series
        try:
            futures = [batcher.submit(series) for series in instances]
        except (TypeError, ValueError) as error:
            raise ServingError(400, str(error)) from error
        try:
            labels = [_jsonable(future.result(timeout=self.predict_timeout))
                      for future in futures]
        except FutureTimeoutError as error:
            # Fail fast instead of parking a handler thread forever on a
            # stalled batcher.
            raise ServingError(
                503, f"prediction timed out after {self.predict_timeout}s"
            ) from error
        return {"model": record.name, "version": record.version, "labels": labels}

    def close(self) -> None:
        with self._lock:
            self._closed = True
            batchers = [batcher for _, batcher in self._loaded.values()]
            self._loaded.clear()
        for batcher in batchers:
            batcher.close()

    # ------------------------------------------------------------------ #

    def _resolve(self, name: str, version) -> tuple[ModelRecord, MicroBatcher]:
        try:
            record = self.registry.record(name, version)
        except KeyError as error:
            # KeyError.__str__ repr-quotes its message; unwrap it.
            raise ServingError(404, error.args[0]) from error
        key = (record.name, record.version)
        with self._lock:
            if self._closed:
                raise ServingError(503, "service is shutting down")
            entry = self._loaded.get(key)
            if entry is not None:
                return entry
            load_lock = self._loading.setdefault(key, threading.Lock())
        # Deserialisation can take seconds for deep ensembles; hold only this
        # version's lock so other models keep answering from the cache.
        with load_lock:
            with self._lock:
                entry = self._loaded.get(key)
            if entry is not None:
                return entry
            model, record = self.registry.load(record.name, record.version)
            predict_fn = model.predict
            if record.metadata.get("preprocessing") == PROTOCOL_PREPROCESSING:
                predict_fn = lambda panel, _m=model: _m.predict(prepare_panel(panel))  # noqa: E731
            shape = record.metadata.get("input_shape")
            entry = (record, MicroBatcher(
                predict_fn,
                input_shape=tuple(shape) if shape else None,
                max_batch=self.max_batch, max_latency=self.max_latency,
                workers=self.workers,
            ))
            with self._lock:
                if self._closed:
                    # close() ran while we were loading; don't resurrect.
                    entry[1].close()
                    raise ServingError(503, "service is shutting down")
                self._loaded[key] = entry
        return entry


def _jsonable(value):
    """Numpy scalars -> plain python for json.dumps."""
    if isinstance(value, np.generic):
        return value.item()
    return value


# --------------------------------------------------------------------------- #
# HTTP layer
# --------------------------------------------------------------------------- #


class _Handler(BaseHTTPRequestHandler):
    service: PredictionService  # injected by create_server
    quiet = True
    # Keep-alive: _reply always sends Content-Length, so clients can reuse
    # one connection for a burst instead of a TCP handshake per request.
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._reply(200, {"status": "ok",
                              "models": len(self.service.registry.list_models())})
        elif self.path == "/v1/models":
            self._reply(200, {"models": self.service.models()})
        else:
            self._reply(404, {"error": f"no route for GET {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parts = self.path.strip("/").split("/")
        if len(parts) != 4 or parts[:2] != ["v1", "models"] or parts[3] != "predict":
            self._reply(404, {"error": f"no route for POST {self.path}"})
            return
        try:
            body = self._read_json()
            result = self._predict(parts[2], body)
        except ServingError as error:
            self._reply(error.status, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - must answer the client
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._reply(200, result)

    def _predict(self, name: str, body: dict) -> dict:
        if not isinstance(body, dict):
            raise ServingError(400, "request body must be a JSON object")
        single = "series" in body
        if single == ("instances" in body):
            raise ServingError(400, "provide exactly one of 'series' or 'instances'")
        instances = [body["series"]] if single else body["instances"]
        try:
            result = self.service.predict(name, instances, body.get("version"))
        except ValueError as error:
            raise ServingError(400, str(error)) from error
        if single:
            result["label"] = result.pop("labels")[0]
        return result

    # ------------------------------------------------------------------ #

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServingError(400, "empty request body")
        try:
            return json.loads(self.rfile.read(length))
        except json.JSONDecodeError as error:
            raise ServingError(400, f"invalid JSON body: {error}") from error

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)


class PredictionServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` owning a :class:`PredictionService`."""

    daemon_threads = True

    def __init__(self, address, handler, service: PredictionService):
        super().__init__(address, handler)
        self.service = service

    def server_close(self) -> None:
        super().server_close()
        self.service.close()

    @property
    def port(self) -> int:
        return self.server_address[1]


def create_server(registry: ModelRegistry | str, *, host: str = "127.0.0.1",
                  port: int = 0, max_batch: int = 64, max_latency: float = 0.005,
                  batch_workers: int = 1, quiet: bool = True) -> PredictionServer:
    """Build a ready-to-run prediction server (``port=0`` picks a free one).

    Run it with ``server.serve_forever()`` (blocking) or from a thread;
    ``server.server_close()`` also shuts down the per-model batchers.
    """
    if not isinstance(registry, ModelRegistry):
        registry = ModelRegistry(registry)
    service = PredictionService(registry, max_batch=max_batch,
                                max_latency=max_latency, workers=batch_workers)
    handler = type("Handler", (_Handler,), {"service": service, "quiet": quiet})
    return PredictionServer((host, port), handler, service)
