"""Pre-fork, shared-nothing worker pool behind one listening port.

One supervisor process owns the TCP port and N forked workers each own a
full serving stack — :class:`~repro.serving.server.PredictionService`,
micro-batcher, flight recorder, trace buffer — with **nothing shared**
between them but the listener.  That buys true multi-core scaling for a
GIL-bound server without any cross-process locks: the kernel does the
load balancing, and a worker that dies takes only its own in-flight
requests with it.

Two listener strategies, picked automatically:

* **SO_REUSEPORT** (Linux, modern BSD): the supervisor binds the port
  *without listening* — a pure port reservation — and every worker binds
  its own ``SO_REUSEPORT`` listener to the resolved port.  The kernel
  hashes connections across the listening sockets, so load spreads
  evenly and a dead worker's backlog dies with it instead of stranding
  connections nobody will accept.
* **bind-then-fork** (everywhere else): the supervisor binds *and*
  listens, puts the listener in non-blocking mode, and the workers
  inherit it across ``fork`` — classic pre-fork accept sharing.  The
  non-blocking listener keeps the thundering herd harmless: a worker
  that loses the accept race gets ``EAGAIN`` and goes back to waiting.

The supervisor is deliberately boring: it forks, reaps, respawns dead
workers with per-slot exponential backoff, forwards ``SIGTERM``/
``SIGINT``, and publishes pool state to ``pool.json``.  It never touches
a model, numpy, or a request — everything interesting happens in the
workers, so supervisor uptime is decoupled from serving bugs.

Cross-worker observability rides a per-worker **unix-socket side
channel** (``worker-<slot>.sock`` next to ``pool.json``): any worker
answering ``GET /metrics`` scrapes its peers over the side channel and
merges the expositions with
:func:`~repro.serving.metrics.merge_expositions` — counters summed,
gauges labelled ``worker="<slot>"`` — plus ``repro_pool_*`` families for
the pool itself.  ``GET /healthz`` likewise reports supervisor-published
pool state alongside the answering worker's own liveness.

Canary promotion needs no pool plumbing at all: each worker's registry
re-stats the model manifest on every request, so a tag move published by
``repro promote`` (or the adaptation controller) is visible on every
worker within one manifest ``stat`` — the side channel's ``resolve``
command exists precisely so tests can prove that.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import tempfile
import threading
import time
import traceback
import urllib.parse

from .metrics import format_sample, merge_expositions
from .registry import ModelRegistry
from .server import _Handler, PredictionServer, build_service

__all__ = ["ServingPool"]


#: a worker that dies this soon after spawning is "crash looping" for
#: backoff purposes; one that served longer resets its slot's backoff
_FAST_FAIL_WINDOW = 5.0

#: side-channel request/response deadline — scrapes are small and local,
#: so anything slower than this means the peer is wedged, not busy
_SIDE_CHANNEL_TIMEOUT = 2.0


def _atomic_write_json(path: str, payload: dict) -> None:
    """Write *payload* as JSON via rename so readers never see a torn file."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=0, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def _scrape(sock_path: str, command: dict,
            timeout: float = _SIDE_CHANNEL_TIMEOUT) -> bytes:
    """One side-channel round trip: send a JSON command line, read the
    full response (the peer half-closes after writing)."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
        client.settimeout(timeout)
        client.connect(sock_path)
        client.sendall(json.dumps(command).encode() + b"\n")
        client.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            data = client.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks)


class _SideChannel:
    """Per-worker unix-socket command server for peer scrapes.

    Protocol: one JSON object per connection —
    ``{"cmd": "metrics"}`` answers the worker's raw exposition text,
    ``{"cmd": "health"}`` its liveness JSON, and
    ``{"cmd": "resolve", "name": ..., "version": ...}`` the model record
    this worker's registry resolves *right now* (how tests observe that
    a promotion reached every worker).  The responder half-closes after
    writing, which is the client's end-of-response signal.
    """

    def __init__(self, path: str, service, slot: int):
        self.path = path
        self.service = service
        self.slot = slot
        self._closed = False
        try:
            os.unlink(path)  # a previous occupant of this slot
        except FileNotFoundError:
            pass
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(path)
        self._sock.listen(8)
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"side-channel-{slot}", daemon=True)
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # closed under us: shutdown
            threading.Thread(target=self._serve_one, args=(conn,),
                             daemon=True).start()

    def _serve_one(self, conn) -> None:
        try:
            with conn:
                conn.settimeout(_SIDE_CHANNEL_TIMEOUT)
                request = b""
                while b"\n" not in request and len(request) < 65536:
                    data = conn.recv(4096)
                    if not data:
                        break
                    request += data
                command = json.loads(request.decode() or "{}")
                conn.sendall(self._respond(command))
        except (OSError, ValueError):
            pass  # a torn scrape hurts nobody; the scraper times out

    def _respond(self, command: dict) -> bytes:
        verb = command.get("cmd")
        if verb == "metrics":
            return self.service.metrics_text().encode()
        if verb == "health":
            payload = self.service.healthz()
            payload["worker"] = self.slot
            payload["pid"] = os.getpid()
            return json.dumps(payload).encode()
        if verb == "resolve":
            try:
                record = self.service.registry.record(
                    command.get("name"), command.get("version"))
                payload = record.describe()
                payload["worker"] = self.slot
            except KeyError as error:
                payload = {"error": str(error), "worker": self.slot}
            return json.dumps(payload).encode()
        if verb == "session_put":
            # A peer replicating a session blob to us for durability.
            try:
                ok = self.service.sessions.adopt(command.get("blob") or {})
            except Exception:  # noqa: BLE001 - a bad blob must not kill us
                ok = False
            return json.dumps({"ok": bool(ok)}).encode()
        if verb == "session_take":
            # A peer resuming a stream whose session lives here: hand the
            # blob over (removed locally, so exactly one worker owns it).
            try:
                blob = self.service.sessions.take(
                    str(command.get("id") or ""),
                    int(command.get("token") or 0))
            except Exception:  # noqa: BLE001 - answer, never wedge a resume
                blob = None
            return json.dumps({"blob": blob}).encode()
        return json.dumps({"error": f"unknown command {verb!r}"}).encode()

    def close(self) -> None:
        """Stop accepting and remove the socket file."""
        self._closed = True
        try:
            self._sock.close()
        finally:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass


def _build_pool_session_store(pool_dir: str, slot: int, workers: int):
    """A worker's :class:`~repro.streaming.session.SessionStore` whose
    durability hooks ride the pool's unix-socket side channel.

    Every session save replicates the blob to one deterministic peer —
    the rendezvous hash of the stream id over the *other* worker slots —
    so when this worker dies mid-stream, exactly one survivor holds the
    state.  A resume landing on any worker that lacks the session asks
    the rendezvous peer first (then the rest), adopting and removing the
    blob from whoever answers, so exactly one worker serves the resumed
    stream.  Both directions are best-effort: a dead peer fails the
    scrape, and the client's retry loop covers the respawn window.
    """
    from ..streaming.session import SessionStore, rendezvous_slot

    peers = [s for s in range(int(workers)) if s != int(slot)]

    class _PoolSessionStore(SessionStore):
        """Session store with side-channel replication (one per worker)."""

        def _peer_sock(self, peer: int) -> str:
            return os.path.join(pool_dir, f"worker-{peer}.sock")

        def _replicate(self, session) -> None:
            if not peers:
                return
            peer = rendezvous_slot(session.id, peers)
            try:
                _scrape(self._peer_sock(peer),
                        {"cmd": "session_put", "blob": session.to_blob()})
            except (OSError, ValueError):
                pass  # peer down or respawning; replication is best-effort

        def _fetch(self, session_id: str, token: int):
            preferred = rendezvous_slot(session_id, peers)
            order = ([] if preferred is None else [preferred]) \
                + [p for p in peers if p != preferred]
            for peer in order:
                try:
                    raw = _scrape(self._peer_sock(peer),
                                  {"cmd": "session_take", "id": session_id,
                                   "token": int(token)})
                    payload = json.loads(raw.decode() or "null")
                except (OSError, ValueError):
                    continue
                blob = payload.get("blob") \
                    if isinstance(payload, dict) else None
                if blob:
                    return blob
            return None

    return _PoolSessionStore()


class _WorkerServer(PredictionServer):
    """A worker's :class:`PredictionServer` plus drain bookkeeping.

    Tracks in-flight requests so a terminating worker can finish what it
    has admitted before ``server_close`` tears the batchers down, and
    carries the ``draining`` flag that makes keep-alive connections wind
    down (the handler closes each connection after the response in
    flight instead of serving new requests forever).
    """

    def __init__(self, address, handler, service, **kwargs):
        super().__init__(address, handler, service, **kwargs)
        self.draining = False
        self._in_flight = 0
        self._idle = threading.Condition()

    def request_started(self) -> None:
        """Count one admitted request toward the drain barrier."""
        with self._idle:
            self._in_flight += 1

    def request_finished(self) -> None:
        """Release one request; wakes a drain waiting for idle."""
        with self._idle:
            self._in_flight -= 1
            if self._in_flight <= 0:
                self._idle.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Block until no requests are in flight (or *timeout* passes)."""
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True


class _PoolHandler(_Handler):
    """The worker-pool request handler: ``_Handler`` plus pool awareness.

    Adds the ``X-Worker`` response header (which worker answered — the
    tests' load-balance oracle), intercepts ``/metrics`` to serve the
    pool-wide merged exposition, folds supervisor-published pool state
    into ``/healthz``, and participates in graceful drain by counting
    in-flight requests and closing keep-alive connections once the
    worker is draining.
    """

    worker_slot: int = -1
    pool_dir: str = ""

    def send_response(self, code, message=None):  # noqa: A002
        """Stamp every response with the answering worker's slot."""
        super().send_response(code, message)
        self.send_header("X-Worker", str(self.worker_slot))

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self.server.request_started()
        try:
            super().do_GET()
        finally:
            self.server.request_finished()
            if self.server.draining:
                self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self.server.request_started()
        try:
            super().do_POST()
        finally:
            self.server.request_finished()
            if self.server.draining:
                self.close_connection = True

    def _handle_get(self) -> None:
        """Route pool-level endpoints; defer everything else upstream."""
        url = urllib.parse.urlsplit(self.path)
        if url.path == "/metrics":
            try:
                text = self._pool_metrics()
            except Exception as error:  # noqa: BLE001 - must answer
                self._reply(500, {"error": f"{type(error).__name__}: {error}"})
                return
            self._send(200, text.encode(),
                       "text/plain; version=0.0.4; charset=utf-8")
        elif url.path == "/healthz":
            self._reply(200, self._pool_healthz())
        else:
            super()._handle_get()

    # ------------------------------------------------------------------ #

    def _pool_state(self) -> dict:
        """The supervisor's last published ``pool.json`` snapshot."""
        with open(os.path.join(self.pool_dir, "pool.json"),
                  encoding="utf-8") as handle:
            return json.load(handle)

    def _pool_metrics(self) -> str:
        """The pool-wide exposition: every worker scraped and merged,
        plus ``repro_pool_*`` families describing the pool itself."""
        state = self._pool_state()
        texts: dict[str, str] = {}
        up: dict[str, int] = {}
        for slot in sorted(state["slots"]):
            if int(slot) == self.worker_slot:
                texts[slot] = self.service.metrics_text()
                up[slot] = 1
                continue
            sock_path = os.path.join(self.pool_dir, f"worker-{slot}.sock")
            try:
                texts[slot] = _scrape(sock_path, {"cmd": "metrics"}).decode()
                up[slot] = 1
            except OSError:
                up[slot] = 0  # dead or respawning; supervisor will report it
        alive = sum(1 for info in state["slots"].values() if info.get("alive"))
        lines = [
            "# HELP repro_pool_workers Worker processes the pool is "
            "configured to run.",
            "# TYPE repro_pool_workers gauge",
            format_sample("repro_pool_workers", {}, state["workers"]),
            "# HELP repro_pool_workers_alive Workers currently alive per "
            "the supervisor.",
            "# TYPE repro_pool_workers_alive gauge",
            format_sample("repro_pool_workers_alive", {}, alive),
            "# HELP repro_pool_worker_up Whether each worker slot answered "
            "the metrics scrape.",
            "# TYPE repro_pool_worker_up gauge",
        ]
        for slot in sorted(up):
            lines.append(format_sample("repro_pool_worker_up",
                                       {"worker": slot}, up[slot]))
        lines += [
            "# HELP repro_pool_respawns_total Worker processes respawned "
            "after dying.",
            "# TYPE repro_pool_respawns_total counter",
            format_sample("repro_pool_respawns_total", {},
                          state["respawns"]),
        ]
        return merge_expositions(texts) + "\n".join(lines) + "\n"

    def _pool_healthz(self) -> dict:
        """This worker's liveness plus the supervisor's pool state."""
        payload = self.service.healthz()
        payload["worker"] = self.worker_slot
        try:
            state = self._pool_state()
        except (OSError, ValueError):
            payload["pool"] = {"error": "pool state unavailable"}
            return payload
        alive = sum(1 for info in state["slots"].values() if info.get("alive"))
        payload["pool"] = {
            "workers": state["workers"],
            "alive": alive,
            "degraded": alive < state["workers"],
            "respawns": state["respawns"],
            "supervisor_pid": state.get("supervisor_pid"),
            "slots": state["slots"],
        }
        return payload


class ServingPool:
    """Supervisor for a pre-fork pool of shared-nothing serving workers.

    ``start()`` binds the listener, forks ``workers`` children — each
    running a complete :class:`~repro.serving.server.PredictionServer`
    stack built *after* the fork, so no Python object is ever shared —
    and starts a monitor thread that reaps dead workers and respawns
    them with per-slot exponential backoff (immediate on a first death
    under load, backing off only when a slot crash-loops).  ``stop()``
    forwards ``SIGTERM`` so every worker drains in-flight requests
    before exiting; workers that outlive ``drain_timeout`` are killed.

    The pool's working state lives in ``pool_dir``: ``pool.json``
    (atomic snapshots of slots, pids, respawn counts) and one
    ``worker-<slot>.sock`` side channel per worker, which is how
    ``/metrics`` aggregates across the pool.  All constructor knobs
    after *workers* mirror :func:`~repro.serving.server.create_server`.
    """

    def __init__(self, registry, *, workers: int = 2,
                 host: str = "127.0.0.1", port: int = 0,
                 max_batch: int = 64, max_latency: float = 0.005,
                 batch_workers: int = 1, quiet: bool = True,
                 max_queue: int = 1024, max_loaded_models: int = 0,
                 max_body_bytes: int = 10_000_000, access_log: bool = False,
                 compute_policy=None, reuse_port: bool | None = None,
                 drain_timeout: float = 10.0, respawn_backoff: float = 0.25,
                 max_respawn_backoff: float = 8.0, trace: bool = False,
                 trace_capacity: int = 128, trace_export=None,
                 pool_dir: str | None = None):
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        if not hasattr(os, "fork"):
            raise RuntimeError("the worker pool needs os.fork "
                               "(POSIX only); use create_server instead")
        # Workers re-open the registry *after* the fork (shared nothing),
        # so all the supervisor keeps is the path.
        if isinstance(registry, ModelRegistry):
            registry = registry.root
        self.registry = os.fspath(registry)
        self.workers = int(workers)
        self.host = host
        self.port = int(port)  # resolved to the real port by start()
        self._service_options = dict(
            max_batch=max_batch, max_latency=max_latency,
            batch_workers=batch_workers, max_queue=max_queue,
            max_loaded_models=max_loaded_models,
            compute_policy=compute_policy)
        self._handler_options = dict(
            quiet=quiet, max_body_bytes=int(max_body_bytes),
            access_log=bool(access_log))
        if reuse_port is None:
            reuse_port = hasattr(socket, "SO_REUSEPORT")
        self.reuse_port = bool(reuse_port)
        self.drain_timeout = float(drain_timeout)
        self.respawn_backoff = float(respawn_backoff)
        self.max_respawn_backoff = float(max_respawn_backoff)
        self._trace = dict(trace=trace, trace_capacity=trace_capacity,
                           trace_export=trace_export)
        self.pool_dir = pool_dir
        self._own_pool_dir = pool_dir is None
        self.respawns = 0
        self._listener: socket.socket | None = None
        self._slots: dict[int, dict] = {}
        self._stopping = threading.Event()
        self._done = threading.Event()
        self._stop_deadline: float | None = None
        self._monitor_thread: threading.Thread | None = None
        self._supervisor_pid = os.getpid()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # supervisor side
    # ------------------------------------------------------------------ #

    def start(self, *, ready_timeout: float = 30.0) -> None:
        """Bind the listener, fork the workers, start the monitor.

        Blocks (up to *ready_timeout*) until every initial worker has
        its listener active — callers can connect the moment this
        returns.  Raises ``RuntimeError`` if the pool fails to come up.
        """
        if self.pool_dir is None:
            self.pool_dir = tempfile.mkdtemp(prefix="repro-pool-")
        else:
            os.makedirs(self.pool_dir, exist_ok=True)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.reuse_port:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        listener.bind((self.host, self.port))
        if not self.reuse_port:
            # Classic pre-fork: children inherit this listening socket.
            # Non-blocking, so a worker losing the accept race gets
            # EAGAIN (socketserver swallows it) instead of blocking a
            # serve loop that select() said was ready.
            listener.listen(128)
            os.set_blocking(listener.fileno(), False)
        # With SO_REUSEPORT the supervisor's socket stays *unlistening*:
        # a pure port reservation.  A listening-but-never-accepting
        # socket would receive a kernel-balanced share of connections
        # and black-hole them.
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._publish_state()
        for slot in range(self.workers):
            self._spawn(slot)
        self._publish_state()
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="pool-monitor", daemon=True)
        self._monitor_thread.start()
        deadline = time.monotonic() + ready_timeout
        for slot in range(self.workers):
            sock_path = os.path.join(self.pool_dir, f"worker-{slot}.sock")
            while not os.path.exists(sock_path):
                if time.monotonic() > deadline:
                    self.close()
                    raise RuntimeError(
                        f"worker {slot} did not come up within "
                        f"{ready_timeout:.0f}s")
                if self._slots.get(slot, {}).get("alive") is False \
                        and self.respawns == 0:
                    self.close()
                    raise RuntimeError(f"worker {slot} died during startup")
                time.sleep(0.02)

    def _spawn(self, slot: int) -> None:
        pid = os.fork()
        if pid == 0:
            # Child: never return into the supervisor's world — not the
            # monitor thread, not pytest's atexit machinery.
            status = 0
            try:
                self._worker_main(slot)
            except BaseException:  # noqa: BLE001 - report, then _exit
                traceback.print_exc()
                status = 1
            finally:
                sys.stdout.flush()
                sys.stderr.flush()
                os._exit(status)
        with self._lock:
            info = self._slots.setdefault(slot, {
                "respawns": 0, "consecutive_fast_fails": 0})
            info.update(pid=pid, alive=True, started=time.monotonic(),
                        respawn_at=None)

    def _publish_state(self) -> None:
        """Atomically publish the pool snapshot workers read back."""
        with self._lock:
            slots = {
                str(slot): {
                    "pid": info.get("pid"),
                    "alive": bool(info.get("alive")),
                    "respawns": info.get("respawns", 0),
                }
                for slot, info in self._slots.items()
            }
            payload = {
                "host": self.host,
                "port": self.port,
                "workers": self.workers,
                "supervisor_pid": self._supervisor_pid,
                "respawns": self.respawns,
                "reuse_port": self.reuse_port,
                "slots": slots,
            }
        _atomic_write_json(os.path.join(self.pool_dir, "pool.json"), payload)

    def _monitor(self) -> None:
        """Reap dead workers, schedule respawns with backoff, enforce
        the stop deadline; exits once stopping and every worker is gone."""
        while True:
            changed = self._reap_once()
            now = time.monotonic()
            if self._stopping.is_set():
                if self._stop_deadline is not None \
                        and now > self._stop_deadline:
                    self._kill_stragglers()
                    self._stop_deadline = None
                    changed = True
                with self._lock:
                    any_alive = any(info.get("alive")
                                    for info in self._slots.values())
                if not any_alive:
                    if changed:
                        self._publish_state()
                    self._done.set()
                    return
            else:
                for slot in list(self._slots):
                    info = self._slots[slot]
                    due = info.get("respawn_at")
                    if not info.get("alive") and due is not None \
                            and now >= due:
                        self._spawn(slot)
                        changed = True
            if changed:
                self._publish_state()
            time.sleep(0.05)

    def _reap_once(self) -> bool:
        """``waitpid`` each live worker non-blockingly; mark the dead
        and schedule their respawns.  Returns whether anything changed."""
        changed = False
        with self._lock:
            live = [(slot, info["pid"]) for slot, info in self._slots.items()
                    if info.get("alive")]
        for slot, pid in live:
            try:
                reaped, _status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                reaped = pid  # someone reaped it for us; treat as dead
            if reaped == 0:
                continue
            changed = True
            with self._lock:
                info = self._slots[slot]
                info["alive"] = False
                if self._stopping.is_set():
                    info["respawn_at"] = None
                    continue
                self.respawns += 1
                info["respawns"] = info.get("respawns", 0) + 1
                uptime = time.monotonic() - info.get("started", 0.0)
                if uptime < _FAST_FAIL_WINDOW:
                    info["consecutive_fast_fails"] = \
                        info.get("consecutive_fast_fails", 0) + 1
                else:
                    info["consecutive_fast_fails"] = 0
                fails = info["consecutive_fast_fails"]
                delay = 0.0 if fails == 0 else min(
                    self.max_respawn_backoff,
                    self.respawn_backoff * (2 ** (fails - 1)))
                info["respawn_at"] = time.monotonic() + delay
        return changed

    def _kill_stragglers(self) -> None:
        with self._lock:
            live = [info["pid"] for info in self._slots.values()
                    if info.get("alive")]
        for pid in live:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass

    def stop(self) -> None:
        """Begin a graceful shutdown: SIGTERM every worker (they drain
        in-flight requests), SIGKILL whatever outlives ``drain_timeout``.
        Safe to call from a signal handler; returns immediately — use
        ``wait()`` to block until the pool is down."""
        if self._stopping.is_set():
            return
        self._stop_deadline = time.monotonic() + self.drain_timeout
        self._stopping.set()
        with self._lock:
            live = [info["pid"] for info in self._slots.values()
                    if info.get("alive")]
        for pid in live:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        if self._monitor_thread is None or not self._monitor_thread.is_alive():
            self._done.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every worker has exited (or *timeout* passes)."""
        return self._done.wait(timeout)

    def close(self) -> None:
        """Stop the pool, wait for the workers, release the listener,
        and (when the pool made its own ``pool_dir``) remove the state
        directory.  Idempotent."""
        self.stop()
        self.wait(self.drain_timeout + 5.0)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._own_pool_dir and self.pool_dir \
                and os.path.isdir(self.pool_dir):
            import shutil
            shutil.rmtree(self.pool_dir, ignore_errors=True)

    def __enter__(self):
        """Context-manager entry: start the pool and return it."""
        self.start()
        return self

    def __exit__(self, *exc_info):
        """Context-manager exit: close the pool, workers and all."""
        self.close()
        return False

    def alive_workers(self) -> list[int]:
        """The slots whose worker process is currently alive."""
        with self._lock:
            return sorted(slot for slot, info in self._slots.items()
                          if info.get("alive"))

    def worker_pids(self) -> dict[int, int]:
        """Slot -> pid for every currently-alive worker."""
        with self._lock:
            return {slot: info["pid"] for slot, info in self._slots.items()
                    if info.get("alive")}

    # ------------------------------------------------------------------ #
    # worker side (runs in the forked child, never returns)
    # ------------------------------------------------------------------ #

    def _drain_backlog(self, server) -> None:
        """Serve connections already queued on a stopping worker's
        ``SO_REUSEPORT`` listener.

        The kernel keeps balancing new connections onto this listener
        right up to the moment it closes — and closing resets whatever
        its accept queue still holds.  A graceful stop therefore accepts
        and answers the stragglers (each response closes its connection,
        since ``draining`` is set) instead of letting ``close`` turn
        them into client-visible connection resets.  Only needed with
        ``SO_REUSEPORT``: the fallback mode shares one accept queue that
        the surviving workers keep draining.
        """
        import selectors

        with selectors.DefaultSelector() as selector:
            try:
                selector.register(server.socket, selectors.EVENT_READ)
            except (OSError, ValueError):
                return
            deadline = time.monotonic() + min(1.0, self.drain_timeout)
            while time.monotonic() < deadline:
                if not selector.select(timeout=0.05):
                    return  # accept queue empty
                try:
                    server._handle_request_noblock()
                except OSError:
                    return

    def _worker_main(self, slot: int) -> None:
        """Everything one worker is: build the stack, serve, drain."""
        drained = threading.Event()
        server_box: list = []

        def _begin_drain(signum=None, frame=None):
            if drained.is_set():
                return
            drained.set()
            if server_box:
                server = server_box[0]
                server.draining = True
                # shutdown() blocks until serve_forever's loop notices;
                # calling it on the interrupted thread would deadlock.
                threading.Thread(target=server.shutdown,
                                 daemon=True).start()

        signal.signal(signal.SIGTERM, _begin_drain)
        signal.signal(signal.SIGINT, _begin_drain)

        if self.reuse_port:
            # Our own kernel-balanced listener; drop the reservation fd.
            if self._listener is not None:
                self._listener.close()
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            listener.bind((self.host, self.port))
            listener.listen(128)
        else:
            listener = self._listener  # inherited, already listening

        tracer = None
        if self._trace["trace"] or self._trace["trace_export"]:
            from ..observability import (configure_tracing, get_tracer,
                                         worker_export_path)
            export = self._trace["trace_export"]
            configure_tracing(
                enabled=True, capacity=self._trace["trace_capacity"],
                export_path=(worker_export_path(export, slot)
                             if export else None))
            tracer = get_tracer()

        service = build_service(self.registry, tracer=tracer,
                                **self._service_options)
        # Durable stream sessions survive this worker's death: the pool
        # store replicates blobs to a rendezvous peer over the side
        # channel and pulls them back when a resume lands here.
        service.sessions = _build_pool_session_store(
            self.pool_dir, slot, self.workers)
        handler = type("PoolHandler", (_PoolHandler,), {
            "service": service,
            "worker_slot": slot,
            "pool_dir": self.pool_dir,
            **self._handler_options,
        })
        server = _WorkerServer((self.host, self.port), handler, service,
                               bind_and_activate=False)
        server.adopt_socket(listener)
        server_box.append(server)
        if drained.is_set():
            # A SIGTERM raced our startup; don't start serving.
            server.server_close()
            return

        side = _SideChannel(
            os.path.join(self.pool_dir, f"worker-{slot}.sock"),
            service, slot)

        def _watch_parent() -> None:
            # Orphan protection: if the supervisor dies without signaling
            # us (SIGKILL, OOM), our ppid changes — drain and leave
            # rather than serve forever unsupervised.
            while not drained.is_set():
                if os.getppid() != self._supervisor_pid:
                    _begin_drain()
                    return
                time.sleep(1.0)

        threading.Thread(target=_watch_parent, daemon=True,
                         name=f"parent-watch-{slot}").start()

        try:
            server.serve_forever(poll_interval=0.05)
        finally:
            if self.reuse_port:
                self._drain_backlog(server)
            # Finish what we admitted, then tear down batchers + models.
            server.wait_idle(self.drain_timeout)
            side.close()
            server.server_close()
            if tracer is not None:
                flush = getattr(tracer, "flush", None)
                if callable(flush):
                    flush()
