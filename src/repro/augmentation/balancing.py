"""The paper's augmentation protocol: augment until perfectly balanced.

Section IV-C: "For each class, we extract a time series randomly and add
noise until the dataset is perfectly balanced" — and analogously for SMOTE
and TimeGAN (trained per class).  :func:`augment_to_balance` implements
that protocol for any :class:`~repro.augmentation.base.Augmenter`, and
:func:`augment_by_factor` supports oversampling beyond balance (used by
ablation benchmarks).
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from ..data.dataset import TimeSeriesDataset
from .base import Augmenter

__all__ = ["augment_to_balance", "augment_by_factor", "balance_deficits"]


def balance_deficits(dataset: TimeSeriesDataset) -> np.ndarray:
    """Samples each class needs to reach the majority-class count."""
    counts = dataset.class_counts()
    return counts.max() - counts


def augment_to_balance(
    dataset: TimeSeriesDataset,
    augmenter: Augmenter,
    *,
    rng: int | np.random.Generator | None = None,
) -> TimeSeriesDataset:
    """Return a perfectly-balanced dataset, filling deficits with *augmenter*.

    Already-balanced datasets still receive one extra synthetic sample per
    class so that augmentation has an effect (this matches the paper, whose
    balanced datasets — FingerMovements, SelfRegulationSCP1,
    SpokenArabicDigits — nevertheless show augmented-model deltas in
    Tables IV-V).
    """
    rng = ensure_rng(rng)
    deficits = balance_deficits(dataset)
    if deficits.sum() == 0:
        deficits = np.ones_like(deficits)
    return _fill(dataset, augmenter, deficits, rng)


def augment_by_factor(
    dataset: TimeSeriesDataset,
    augmenter: Augmenter,
    *,
    factor: float = 2.0,
    rng: int | np.random.Generator | None = None,
) -> TimeSeriesDataset:
    """Balance the dataset, then oversample every class to ``factor * max``."""
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1; got {factor}")
    rng = ensure_rng(rng)
    counts = dataset.class_counts()
    target = int(round(counts.max() * factor))
    deficits = np.maximum(target - counts, 0)
    return _fill(dataset, augmenter, deficits, rng)


def _fill(dataset: TimeSeriesDataset, augmenter: Augmenter,
          deficits: np.ndarray, rng: np.random.Generator) -> TimeSeriesDataset:
    new_X, new_y = [], []
    for label, deficit in enumerate(deficits):
        if deficit == 0:
            continue
        X_class = dataset.series_of_class(label)
        if len(X_class) == 0:
            raise ValueError(f"class {label} has no series to augment from")
        X_other = dataset.X[dataset.y != label]
        synthetic = augmenter.generate(X_class, int(deficit), rng=rng, X_other=X_other)
        new_X.append(synthetic)
        new_y.append(np.full(int(deficit), label, dtype=np.int64))
    if not new_X:
        return dataset
    return dataset.with_samples(np.concatenate(new_X, axis=0), np.concatenate(new_y))
