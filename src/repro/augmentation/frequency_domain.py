"""Frequency-domain augmentation techniques (basic branch of the taxonomy).

Covers the Figure-1 leaves *Fourier Transform* (amplitude & phase
perturbation, APP of RobustTAD), *Frequency Warping* (a VTLP-style
piecewise-linear frequency-axis remap), *Frequency Masking* (SpecAugment's
frequency mask applied to the rFFT) and *Mixing* (EMDA-style weighted
spectral averaging of same-class examples).
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from .._validation import check_panel, check_positive, check_probability
from .base import Augmenter, TransformAugmenter, register_augmenter

__all__ = [
    "FourierPerturbation",
    "FrequencyMasking",
    "FrequencyWarping",
    "SpectralMixing",
]


def _rfft_nan_safe(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """rFFT of a panel after zero-filling NaNs; returns (spectrum, nan mask)."""
    mask = np.isnan(X)
    filled = np.where(mask, 0.0, X)
    return np.fft.rfft(filled, axis=2), mask


def _irfft_restore(spectrum: np.ndarray, mask: np.ndarray, length: int) -> np.ndarray:
    out = np.fft.irfft(spectrum, n=length, axis=2)
    out[mask] = np.nan
    return out


class FourierPerturbation(TransformAugmenter):
    """Perturb rFFT amplitude and phase (APP, Gao et al. RobustTAD).

    Amplitudes are multiplied by ``N(1, amplitude_sigma^2)`` and phases
    shifted by ``N(0, phase_sigma^2)`` on a random subset of frequency bins.
    """

    taxonomy = ("basic", "frequency_domain", "fourier_transform")
    name = "fourier"

    def __init__(self, amplitude_sigma: float = 0.1, phase_sigma: float = 0.2,
                 perturb_fraction: float = 0.5):
        check_positive(amplitude_sigma, name="amplitude_sigma")
        check_positive(phase_sigma, name="phase_sigma")
        check_probability(perturb_fraction, name="perturb_fraction")
        self.amplitude_sigma = float(amplitude_sigma)
        self.phase_sigma = float(phase_sigma)
        self.perturb_fraction = float(perturb_fraction)

    def transform(self, X, *, rng):
        spectrum, mask = _rfft_nan_safe(X)
        amplitude = np.abs(spectrum)
        phase = np.angle(spectrum)
        chosen = rng.random(spectrum.shape) < self.perturb_fraction
        amplitude = np.where(
            chosen, amplitude * rng.normal(1.0, self.amplitude_sigma, spectrum.shape), amplitude
        )
        phase = np.where(chosen, phase + rng.normal(0.0, self.phase_sigma, spectrum.shape), phase)
        return _irfft_restore(amplitude * np.exp(1j * phase), mask, X.shape[2])


class FrequencyMasking(TransformAugmenter):
    """Zero a random contiguous band of frequency bins (SpecAugment)."""

    taxonomy = ("basic", "frequency_domain", "frequency_masking")
    name = "frequency_masking"

    def __init__(self, mask_fraction: float = 0.15):
        check_probability(mask_fraction, name="mask_fraction")
        self.mask_fraction = float(mask_fraction)

    def transform(self, X, *, rng):
        spectrum, mask = _rfft_nan_safe(X)
        n_bins = spectrum.shape[2]
        width = max(1, int(round(n_bins * self.mask_fraction)))
        for i in range(X.shape[0]):
            start = rng.integers(0, max(1, n_bins - width + 1))
            spectrum[i, :, start : start + width] = 0.0
        return _irfft_restore(spectrum, mask, X.shape[2])


class FrequencyWarping(TransformAugmenter):
    """VTLP-style piecewise-linear warp of the frequency axis.

    A random warp factor ``alpha ~ U(1-range, 1+range)`` remaps bin k to
    ``alpha * k`` below a cutoff and linearly back above it, then spectra
    are re-sampled onto the original bins.
    """

    taxonomy = ("basic", "frequency_domain", "frequency_warping")
    name = "frequency_warping"

    def __init__(self, warp_range: float = 0.2, cutoff: float = 0.8):
        check_probability(warp_range, name="warp_range")
        check_probability(cutoff, name="cutoff")
        self.warp_range = float(warp_range)
        self.cutoff = float(cutoff)

    def transform(self, X, *, rng):
        spectrum, mask = _rfft_nan_safe(X)
        n, m, n_bins = spectrum.shape
        bins = np.arange(n_bins, dtype=float)
        boundary = self.cutoff * (n_bins - 1)
        out = np.empty_like(spectrum)
        for i in range(n):
            alpha = 1.0 + rng.uniform(-self.warp_range, self.warp_range)
            warped = np.where(
                bins <= boundary,
                bins * alpha,
                boundary * alpha
                + (bins - boundary) * (n_bins - 1 - boundary * alpha) / max(n_bins - 1 - boundary, 1e-9),
            )
            warped = np.clip(warped, 0, n_bins - 1)
            for channel in range(m):
                out[i, channel] = np.interp(bins, warped, spectrum[i, channel].real) + 1j * np.interp(
                    bins, warped, spectrum[i, channel].imag
                )
        return _irfft_restore(out, mask, X.shape[2])


class SpectralMixing(Augmenter):
    """EMDA-style mixing: average the spectra of two same-class examples.

    New sample = irFFT of ``w * F(x_a) + (1 - w) * F(x_b)`` with a random
    weight, which mixes frequency characteristics while staying inside the
    class (Takahashi et al., 2016).
    """

    taxonomy = ("basic", "frequency_domain", "mixing")
    name = "spectral_mixing"

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        k = len(X_class)
        first = X_class[rng.integers(0, k, size=n)]
        second = X_class[rng.integers(0, k, size=n)]
        spec_a, mask_a = _rfft_nan_safe(first)
        spec_b, _ = _rfft_nan_safe(second)
        weights = rng.uniform(0.3, 0.7, size=(n, 1, 1))
        mixed = weights * spec_a + (1.0 - weights) * spec_b
        return _irfft_restore(mixed, mask_a, X_class.shape[2])


register_augmenter("fourier", FourierPerturbation)
register_augmenter("frequency_masking", FrequencyMasking)
register_augmenter("frequency_warping", FrequencyWarping)
register_augmenter("spectral_mixing", SpectralMixing)
