"""Augmenter interfaces and the technique registry.

The paper's protocol (Sec. IV-C) needs one operation from every technique:
*given the training series of one class, produce n new series of that
class*.  :class:`Augmenter.generate` is that operation.  Transform-style
techniques (noise, warping, ...) derive from :class:`TransformAugmenter`
which resamples source series and perturbs them; oversamplers and generative
models implement :meth:`generate` directly (fitting per class, exactly as
the paper trains TimeGAN per class).

Every concrete augmenter registers itself under a short name so experiment
configuration is data-driven (``make_augmenter("noise3")``); the registry is
also what links the Figure-1 taxonomy to implementations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

import numpy as np

from .._rng import ensure_rng
from .._validation import check_panel, check_positive

__all__ = [
    "Augmenter",
    "TransformAugmenter",
    "register_augmenter",
    "make_augmenter",
    "available_augmenters",
]

_REGISTRY: dict[str, Callable[[], "Augmenter"]] = {}


def register_augmenter(name: str, factory: Callable[[], "Augmenter"]) -> None:
    """Register *factory* under *name* (lower-case, unique)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"augmenter name already registered: {name!r}")
    _REGISTRY[key] = factory


def make_augmenter(name: str) -> "Augmenter":
    """Instantiate a registered augmenter by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown augmenter {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]()


def available_augmenters() -> list[str]:
    """Sorted names of every registered augmentation technique."""
    return sorted(_REGISTRY)


class Augmenter(ABC):
    """Base class: produce synthetic series for one class of a dataset."""

    #: short identifier used in experiment configs and result tables
    name: str = "augmenter"
    #: taxonomy path, e.g. ("basic", "time_domain") — links to Figure 1
    taxonomy: tuple[str, ...] = ()
    #: whether synthetic series may carry the source class's label.  Every
    #: technique here generates from one class's panel, so the default is
    #: True; a subclass mixing classes must declare False, and the
    #: balancing protocol (and its contract tests) key off the flag.
    label_preserving: bool = True

    @abstractmethod
    def generate(
        self,
        X_class: np.ndarray,
        n: int,
        *,
        rng: int | np.random.Generator | None = None,
        X_other: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return *n* new series shaped like ``X_class[0]``.

        The output contract, shared by every registered technique and
        asserted registry-wide by the contract tests: a float64 panel of
        shape ``(n, M, T)`` matching ``X_class``'s (validated) channel
        count and length — including ``n = 0``, which yields an empty
        float64 panel — identical for identical ``rng`` seeds, and a
        ``ValueError`` for negative ``n``.

        Parameters
        ----------
        X_class:
            Panel ``(k, M, T)`` of the target class's training series.
        n:
            Number of synthetic series to produce.
        rng:
            Seed or generator for reproducibility.
        X_other:
            Optional panel of the remaining classes; used by techniques that
            need boundary information (ADASYN, Borderline-SMOTE, the range
            technique of Fig. 5).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class TransformAugmenter(Augmenter):
    """Augmenter that perturbs randomly-resampled source series.

    Subclasses implement :meth:`transform`, mapping a batch of source series
    to an equally-shaped batch of perturbed series.  :meth:`generate` draws
    source series with replacement — the paper's protocol ("for each class,
    we extract a time series randomly and add noise until the dataset is
    perfectly balanced").
    """

    def generate(self, X_class, n, *, rng=None, X_other=None) -> np.ndarray:
        X_class = check_panel(X_class)
        check_positive(n, name="n", strict=False)
        rng = ensure_rng(rng)
        if n == 0:
            # Explicit dtype: check_panel normalises to float64, and the
            # empty panel must match what n > 0 would return.
            return np.empty((0,) + X_class.shape[1:], dtype=X_class.dtype)
        sources = X_class[rng.integers(0, len(X_class), size=n)]
        out = self.transform(sources, rng=rng)
        if out.shape != sources.shape:
            raise RuntimeError(
                f"{type(self).__name__}.transform changed the panel shape: "
                f"{sources.shape} -> {out.shape}"
            )
        return out

    @abstractmethod
    def transform(self, X: np.ndarray, *, rng: np.random.Generator) -> np.ndarray:
        """Perturb a batch ``(n, M, T)`` and return the same shape."""
