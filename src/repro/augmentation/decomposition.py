"""Decomposition-based augmentation (basic branch of the taxonomy).

Covers the Figure-1 leaves *STL*, *EMD*, *RobustTAD-style* residual
bootstrap and *ICA*:

* :func:`stl_decompose` — trend (centred moving average), seasonal
  (periodic means) and residual components;
* :class:`STLRecombination` — bootstrap the residual across same-class
  series, keeping trend and seasonality;
* :func:`emd` — empirical mode decomposition via cubic-spline-envelope
  sifting, from scratch;
* :class:`EMDRecombination` — rescale/recombine intrinsic mode functions;
* :class:`ICAMixing` — FastICA (from scratch) on the channel space, with
  new samples synthesised by perturbing independent-component activations.
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import CubicSpline

from .._validation import check_positive
from .base import TransformAugmenter, register_augmenter

__all__ = [
    "stl_decompose",
    "STLRecombination",
    "emd",
    "EMDRecombination",
    "fast_ica",
    "ICAMixing",
]


# --------------------------------------------------------------------------- #
# STL
# --------------------------------------------------------------------------- #


def stl_decompose(x: np.ndarray, period: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Additive decomposition of a 1-D series into (trend, seasonal, residual).

    Trend is a centred moving average of window *period* (edges extended);
    seasonality is the periodic mean of the detrended series, centred to sum
    to zero; the residual is the remainder.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"stl_decompose expects a 1-D series; got ndim={x.ndim}")
    check_positive(period, name="period")
    t = x.size
    period = max(2, min(period, t))
    kernel = np.ones(period) / period
    padded = np.concatenate([np.full(period // 2, x[0]), x, np.full(period - 1 - period // 2, x[-1])])
    trend = np.convolve(padded, kernel, mode="valid")[:t]
    detrended = x - trend
    seasonal_means = np.array([
        detrended[phase::period].mean() for phase in range(period)
    ])
    seasonal_means -= seasonal_means.mean()
    seasonal = np.resize(seasonal_means, t)
    residual = detrended - seasonal
    return trend, seasonal, residual


class STLRecombination(TransformAugmenter):
    """Keep trend + seasonality, bootstrap the residual (RobustTAD-style).

    Residuals are resampled in blocks (moving-block bootstrap) so short-range
    autocorrelation survives; this is the classic decomposition augmentation
    for anomaly-detection training sets.
    """

    taxonomy = ("basic", "decomposition", "stl")
    name = "stl"

    def __init__(self, period: int | None = None, block: int = 5):
        if period is not None:
            check_positive(period, name="period")
        check_positive(block, name="block")
        self.period = period
        self.block = int(block)

    def transform(self, X, *, rng):
        n, m, t = X.shape
        period = self.period or max(2, t // 8)
        out = np.empty_like(X)
        for i in range(n):
            for channel in range(m):
                series = np.nan_to_num(X[i, channel], nan=0.0)
                trend, seasonal, residual = stl_decompose(series, period)
                out[i, channel] = trend + seasonal + _block_bootstrap(residual, self.block, rng)
        out[np.isnan(X)] = np.nan
        return out


def _block_bootstrap(residual: np.ndarray, block: int, rng: np.random.Generator) -> np.ndarray:
    t = residual.size
    block = max(1, min(block, t))
    n_blocks = int(np.ceil(t / block))
    starts = rng.integers(0, t - block + 1, size=n_blocks)
    pieces = [residual[s : s + block] for s in starts]
    return np.concatenate(pieces)[:t]


# --------------------------------------------------------------------------- #
# EMD
# --------------------------------------------------------------------------- #


def _envelope(x: np.ndarray, extrema: np.ndarray) -> np.ndarray:
    t = np.arange(x.size)
    if extrema.size < 2:
        return np.full_like(x, x[extrema[0]] if extrema.size else 0.0)
    # Anchor the ends so the spline doesn't diverge.
    knots = np.concatenate([[0], extrema, [x.size - 1]]) if extrema[0] != 0 or extrema[-1] != x.size - 1 else extrema
    knots = np.unique(knots)
    return CubicSpline(knots, x[knots])(t)


def emd(x: np.ndarray, *, max_imfs: int = 6, max_siftings: int = 30,
        tolerance: float = 0.05) -> list[np.ndarray]:
    """Empirical mode decomposition (Huang et al., 1998) by envelope sifting.

    Returns a list of intrinsic mode functions followed by the final
    residual trend; their sum reconstructs *x* exactly.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"emd expects a 1-D series; got ndim={x.ndim}")
    components: list[np.ndarray] = []
    residue = x.copy()
    for _ in range(max_imfs):
        candidate = residue.copy()
        for _ in range(max_siftings):
            maxima = _local_extrema(candidate, kind="max")
            minima = _local_extrema(candidate, kind="min")
            if maxima.size + minima.size < 4:
                break
            mean_env = (_envelope(candidate, maxima) + _envelope(candidate, minima)) / 2.0
            next_candidate = candidate - mean_env
            denom = float((candidate**2).sum()) or 1.0
            if float(((candidate - next_candidate) ** 2).sum()) / denom < tolerance:
                candidate = next_candidate
                break
            candidate = next_candidate
        maxima = _local_extrema(candidate, kind="max")
        minima = _local_extrema(candidate, kind="min")
        if maxima.size + minima.size < 4:
            break
        components.append(candidate)
        residue = residue - candidate
    components.append(residue)
    return components


def _local_extrema(x: np.ndarray, *, kind: str) -> np.ndarray:
    interior = np.arange(1, x.size - 1)
    if kind == "max":
        hits = (x[interior] > x[interior - 1]) & (x[interior] >= x[interior + 1])
    else:
        hits = (x[interior] < x[interior - 1]) & (x[interior] <= x[interior + 1])
    return interior[hits]


class EMDRecombination(TransformAugmenter):
    """Randomly rescale intrinsic mode functions and resum (Nam et al., 2020).

    Each IMF is multiplied by an independent factor ``N(1, sigma^2)``; the
    final residue (trend) is kept intact so the global shape survives.
    """

    taxonomy = ("basic", "decomposition", "emd")
    name = "emd"

    def __init__(self, sigma: float = 0.2, max_imfs: int = 5):
        check_positive(sigma, name="sigma")
        check_positive(max_imfs, name="max_imfs")
        self.sigma = float(sigma)
        self.max_imfs = int(max_imfs)

    def transform(self, X, *, rng):
        n, m, _ = X.shape
        out = np.empty_like(X)
        for i in range(n):
            for channel in range(m):
                series = np.nan_to_num(X[i, channel], nan=0.0)
                components = emd(series, max_imfs=self.max_imfs)
                rebuilt = components[-1].copy()  # keep trend
                for imf in components[:-1]:
                    rebuilt += imf * rng.normal(1.0, self.sigma)
                out[i, channel] = rebuilt
        out[np.isnan(X)] = np.nan
        return out


# --------------------------------------------------------------------------- #
# ICA
# --------------------------------------------------------------------------- #


def fast_ica(X: np.ndarray, *, n_components: int | None = None, max_iter: int = 200,
             tol: float = 1e-5, rng: np.random.Generator | None = None
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """FastICA with the tanh non-linearity and symmetric decorrelation.

    *X* is ``(n_signals, n_observations)``.  Returns ``(S, W, mean)`` with
    sources ``S = W @ (X - mean)``; ``n_components`` defaults to full rank.
    """
    rng = rng or np.random.default_rng()
    X = np.asarray(X, dtype=float)
    n_signals, n_obs = X.shape
    n_components = n_components or n_signals
    mean = X.mean(axis=1, keepdims=True)
    centered = X - mean
    cov = centered @ centered.T / n_obs
    eigvals, eigvecs = np.linalg.eigh(cov)
    order = np.argsort(eigvals)[::-1][:n_components]
    eigvals = np.maximum(eigvals[order], 1e-12)
    whitening = (eigvecs[:, order] / np.sqrt(eigvals)).T  # (k, n_signals)
    Z = whitening @ centered

    W = rng.standard_normal((n_components, n_components))
    W = _sym_decorrelate(W)
    for _ in range(max_iter):
        WZ = W @ Z
        g = np.tanh(WZ)
        g_prime = 1.0 - g**2
        W_new = (g @ Z.T) / n_obs - np.diag(g_prime.mean(axis=1)) @ W
        W_new = _sym_decorrelate(W_new)
        if np.max(np.abs(np.abs(np.diag(W_new @ W.T)) - 1.0)) < tol:
            W = W_new
            break
        W = W_new
    unmixing = W @ whitening
    return unmixing @ centered, unmixing, mean


def _sym_decorrelate(W: np.ndarray) -> np.ndarray:
    eigvals, eigvecs = np.linalg.eigh(W @ W.T)
    eigvals = np.maximum(eigvals, 1e-12)
    return eigvecs @ np.diag(1.0 / np.sqrt(eigvals)) @ eigvecs.T @ W


class ICAMixing(TransformAugmenter):
    """Perturb independent-component activations (Eltoft, 2002).

    Channels of each series are unmixed with FastICA; component activations
    are rescaled by ``N(1, sigma^2)`` factors and remixed.  Univariate input
    falls back to mild amplitude scaling (a 1-channel ICA is degenerate).
    """

    taxonomy = ("basic", "decomposition", "ica")
    name = "ica"

    def __init__(self, sigma: float = 0.2):
        check_positive(sigma, name="sigma")
        self.sigma = float(sigma)

    def transform(self, X, *, rng):
        n, m, _ = X.shape
        if m == 1:
            return X * rng.normal(1.0, self.sigma, size=(n, 1, 1))
        out = np.empty_like(X)
        for i in range(n):
            signals = np.nan_to_num(X[i], nan=0.0)
            try:
                sources, unmixing, mean = fast_ica(signals, rng=rng)
                mixing = np.linalg.pinv(unmixing)
                factors = rng.normal(1.0, self.sigma, size=(sources.shape[0], 1))
                out[i] = mixing @ (sources * factors) + mean
            except np.linalg.LinAlgError:
                out[i] = signals * rng.normal(1.0, self.sigma)
        out[np.isnan(X)] = np.nan
        return out


register_augmenter("stl", STLRecombination)
register_augmenter("emd", EMDRecombination)
register_augmenter("ica", ICAMixing)
