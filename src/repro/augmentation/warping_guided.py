"""Guided warping via dynamic time warping (the taxonomy's DTW leaf).

Guided warping (Iwana & Uchida, 2020) warps a sample's time axis onto the
alignment path of a randomly-chosen same-class *teacher*, transplanting the
teacher's temporal dynamics while keeping the sample's feature values.
Also includes DTW barycenter averaging (Petitjean et al., 2011), used both
as an augmenter (jittered barycenters are class-faithful prototypes) and by
downstream analysis.
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from .._validation import check_panel, check_positive
from .base import Augmenter, register_augmenter

__all__ = ["GuidedWarping", "DBAAugmenter", "dtw_path", "dba_average"]


def dtw_path(a: np.ndarray, b: np.ndarray, *, window: int | None = None
             ) -> list[tuple[int, int]]:
    """Optimal DTW alignment path between two ``(M, T)`` series.

    Squared-Euclidean local cost over channels, optional Sakoe-Chiba band.
    Returns index pairs from (0, 0) to (Ta-1, Tb-1).
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    ta, tb = a.shape[1], b.shape[1]
    if window is None:
        window = max(ta, tb)
    window = max(window, abs(ta - tb))
    cost = np.full((ta + 1, tb + 1), np.inf)
    cost[0, 0] = 0.0
    for i in range(1, ta + 1):
        lo = max(1, i - window)
        hi = min(tb, i + window)
        local = ((b[:, lo - 1 : hi] - a[:, i - 1 : i]) ** 2).sum(axis=0)
        for offset, j in enumerate(range(lo, hi + 1)):
            cost[i, j] = local[offset] + min(cost[i - 1, j], cost[i, j - 1], cost[i - 1, j - 1])

    path = [(ta - 1, tb - 1)]
    i, j = ta, tb
    while (i, j) != (1, 1):
        moves = [(i - 1, j - 1), (i - 1, j), (i, j - 1)]
        i, j = min(moves, key=lambda m: cost[m])
        path.append((i - 1, j - 1))
    return path[::-1]


def dba_average(panel: np.ndarray, *, iterations: int = 5,
                window: int | None = None) -> np.ndarray:
    """DTW barycenter average of a ``(k, M, T)`` panel.

    Starts from the medoid-ish first series and iteratively re-averages the
    values aligned to each barycenter position.
    """
    panel = check_panel(panel)
    barycenter = np.nan_to_num(panel[0], nan=0.0).copy()
    filled = np.nan_to_num(panel, nan=0.0)
    for _ in range(iterations):
        sums = np.zeros_like(barycenter)
        counts = np.zeros(barycenter.shape[1])
        for series in filled:
            for i, j in dtw_path(barycenter, series, window=window):
                sums[:, i] += series[:, j]
                counts[i] += 1
        counts[counts == 0] = 1
        updated = sums / counts[None, :]
        if np.allclose(updated, barycenter, atol=1e-10):
            break
        barycenter = updated
    return barycenter


class GuidedWarping(Augmenter):
    """Discriminative guided warping with a random same-class teacher."""

    taxonomy = ("basic", "time_domain", "warping")
    name = "guided_warping"

    def __init__(self, window_fraction: float = 0.25):
        if not 0.0 < window_fraction <= 1.0:
            raise ValueError(f"window_fraction must be in (0, 1]; got {window_fraction}")
        self.window_fraction = float(window_fraction)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        k, m, t = X_class.shape
        filled = np.nan_to_num(X_class, nan=0.0)
        window = max(1, int(round(t * self.window_fraction)))
        out = np.empty((n, m, t))
        for index in range(n):
            student = filled[rng.integers(0, k)]
            teacher = filled[rng.integers(0, k)]
            path = dtw_path(teacher, student, window=window)
            # For each teacher position, average the aligned student values:
            # the student's content re-paced to the teacher's timing.
            sums = np.zeros((m, t))
            counts = np.zeros(t)
            for i, j in path:
                sums[:, i] += student[:, j]
                counts[i] += 1
            counts[counts == 0] = 1
            out[index] = sums / counts[None, :]
        return out


class DBAAugmenter(Augmenter):
    """Sample around the class's DTW barycenter.

    Computes the barycenter of a random subset and adds noise scaled by the
    subset's aligned residual spread — synthetic prototypes that respect the
    class's time-warped average shape.
    """

    taxonomy = ("basic", "time_domain", "warping")
    name = "dba"

    def __init__(self, subset_size: int = 5, iterations: int = 3,
                 noise_scale: float = 0.3):
        check_positive(subset_size, name="subset_size")
        check_positive(iterations, name="iterations")
        self.subset_size = int(subset_size)
        self.iterations = int(iterations)
        self.noise_scale = float(noise_scale)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        k = len(X_class)
        out = np.empty((n,) + X_class.shape[1:])
        spread = np.nanstd(X_class, axis=0)
        for index in range(n):
            size = min(self.subset_size, k)
            subset = X_class[rng.choice(k, size=size, replace=False)]
            barycenter = dba_average(subset, iterations=self.iterations)
            out[index] = barycenter + rng.standard_normal(barycenter.shape) * (
                self.noise_scale * spread
            )
        return out


register_augmenter("guided_warping", GuidedWarping)
register_augmenter("dba", DBAAugmenter)
