"""Composition of augmentation techniques.

The paper's Future Work section argues for "a conjunctive application of
multiple time series augmentation methods", analogous to computer-vision
pipelines.  :class:`Compose` chains transform augmenters sequentially;
:class:`RandomChoice` picks one technique per synthetic sample — the two
standard composition patterns.
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from .._validation import check_panel, check_positive
from .base import Augmenter, TransformAugmenter

__all__ = ["Compose", "RandomChoice", "make_specaugment"]


class Compose(TransformAugmenter):
    """Apply several transform augmenters in sequence.

    Only transform-style augmenters can be chained (a generative model has
    no meaningful "apply after"); passing anything else raises at
    construction time.
    """

    taxonomy = ("composition",)

    def __init__(self, augmenters: list[TransformAugmenter]):
        if not augmenters:
            raise ValueError("Compose requires at least one augmenter")
        for augmenter in augmenters:
            if not isinstance(augmenter, TransformAugmenter):
                raise TypeError(
                    f"Compose chains TransformAugmenters only; got {type(augmenter).__name__}"
                )
        self.augmenters = list(augmenters)
        self.name = "compose(" + "+".join(a.name for a in augmenters) + ")"

    def transform(self, X, *, rng):
        for augmenter in self.augmenters:
            X = augmenter.transform(X, rng=rng)
        return X


def make_specaugment(*, warp_sigma: float = 0.15, freq_mask: float = 0.15,
                     time_mask: float = 0.1) -> Compose:
    """SpecAugment (Park et al., 2019) as a Compose pipeline.

    The paper's Sec. III-A4 singles out SpecAugment's three operations —
    time warping, frequency masking and time masking — as a canonical
    combined policy; this builds exactly that chain from this library's
    primitives.
    """
    from .frequency_domain import FrequencyMasking
    from .time_domain import Masking, TimeWarping

    return Compose([
        TimeWarping(sigma=warp_sigma),
        FrequencyMasking(mask_fraction=freq_mask),
        Masking(mask_fraction=time_mask),
    ])


class RandomChoice(Augmenter):
    """Per-sample random selection among several augmenters.

    Each requested synthetic sample is produced by one technique drawn
    according to *weights* — the simplest "combination of methods" the
    paper's conclusion recommends exploring.
    """

    taxonomy = ("composition",)

    def __init__(self, augmenters: list[Augmenter], weights: list[float] | None = None):
        if not augmenters:
            raise ValueError("RandomChoice requires at least one augmenter")
        self.augmenters = list(augmenters)
        if weights is None:
            self.weights = np.full(len(augmenters), 1.0 / len(augmenters))
        else:
            # atleast_1d: a single-augmenter choice may pass a scalar weight.
            weights = np.atleast_1d(np.asarray(weights, dtype=float))
            if weights.shape != (len(augmenters),) or (weights < 0).any() or weights.sum() == 0:
                raise ValueError("weights must be non-negative, one per augmenter")
            self.weights = weights / weights.sum()
        self.name = "choice(" + "|".join(a.name for a in self.augmenters) + ")"

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        check_positive(n, name="n", strict=False)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:], dtype=X_class.dtype)
        assignment = rng.choice(len(self.augmenters), size=n, p=self.weights)
        pieces = []
        for index, augmenter in enumerate(self.augmenters):
            budget = int((assignment == index).sum())
            if budget:
                pieces.append(augmenter.generate(X_class, budget, rng=rng, X_other=X_other))
        return np.concatenate(pieces, axis=0)
