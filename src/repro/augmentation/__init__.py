"""Time-series data-augmentation techniques, organised as in Figure 1.

Importing this package registers every technique; use
:func:`make_augmenter` / :func:`available_augmenters` for data-driven
configuration, or the classes directly.  The paper's five experimental
configurations are ``noise1``, ``noise3``, ``noise5``, ``smote`` and
``timegan``; :func:`augment_to_balance` applies the paper's protocol.
"""

from . import generative  # noqa: F401  (registers generative techniques)
from .balancing import augment_by_factor, augment_to_balance, balance_deficits
from .base import (
    Augmenter,
    TransformAugmenter,
    available_augmenters,
    make_augmenter,
    register_augmenter,
)
from .decomposition import (
    EMDRecombination,
    ICAMixing,
    STLRecombination,
    emd,
    fast_ica,
    stl_decompose,
)
from .frequency_domain import (
    FourierPerturbation,
    FrequencyMasking,
    FrequencyWarping,
    SpectralMixing,
)
from .generative import (
    ARSampler,
    AutoencoderInterpolation,
    DiffusionSampler,
    GaussianPosteriorSampling,
    GMMSampler,
    GRATISMixtureAR,
    LGT,
    LSTMAutoencoder,
    MarkovChainSampler,
    MaximumEntropyBootstrap,
    NormalizingFlowSampler,
    TimeGAN,
    TimeGANConfig,
    VAESampler,
    WGAN,
)
from .warping_guided import DBAAugmenter, GuidedWarping, dba_average, dtw_path
from .oversampling import (
    ADASYN,
    BorderlineSMOTE,
    Interpolation,
    RandomOversampling,
    SMOTE,
    SMOTEFUNA,
    SWIM,
)
from .pipeline import Compose, RandomChoice, make_specaugment
from .preserving import INOS, MDO, OHIT, SPO, RangeTechnique, shrinkage_covariance, snn_clusters
from .time_domain import (
    Cropping,
    Drift,
    MagnitudeWarping,
    Masking,
    NoiseInjection,
    Permutation,
    Pooling,
    Rotation,
    Scaling,
    Slicing,
    TimeWarping,
    WindowWarping,
)

#: the paper's five experimental configurations (Sec. IV-C)
PAPER_TECHNIQUES = ("noise1", "noise3", "noise5", "smote", "timegan")

__all__ = [
    "Augmenter",
    "TransformAugmenter",
    "register_augmenter",
    "make_augmenter",
    "available_augmenters",
    "PAPER_TECHNIQUES",
    "augment_to_balance",
    "augment_by_factor",
    "balance_deficits",
    "Compose",
    "RandomChoice",
    "make_specaugment",
    # time domain
    "NoiseInjection", "Scaling", "Rotation", "Slicing", "Cropping",
    "Permutation", "Masking", "WindowWarping", "TimeWarping",
    "MagnitudeWarping", "Drift", "Pooling",
    # frequency domain
    "FourierPerturbation", "FrequencyMasking", "FrequencyWarping", "SpectralMixing",
    # oversampling
    "SMOTE", "BorderlineSMOTE", "ADASYN", "SMOTEFUNA", "SWIM",
    "RandomOversampling", "Interpolation",
    # decomposition
    "STLRecombination", "EMDRecombination", "ICAMixing",
    "stl_decompose", "emd", "fast_ica",
    # preserving
    "RangeTechnique", "SPO", "INOS", "MDO", "OHIT",
    "shrinkage_covariance", "snn_clusters",
    # generative
    "GaussianPosteriorSampling", "GMMSampler", "LGT", "GRATISMixtureAR",
    "MaximumEntropyBootstrap", "ARSampler", "MarkovChainSampler",
    "AutoencoderInterpolation", "VAESampler", "DiffusionSampler",
    "NormalizingFlowSampler", "LSTMAutoencoder", "WGAN",
    "TimeGAN", "TimeGANConfig",
    # DTW-guided warping
    "GuidedWarping", "DBAAugmenter", "dtw_path", "dba_average",
]
