"""Oversampling techniques (basic branch of the taxonomy).

SMOTE is one of the paper's five experimental configurations; its
neighbour count follows Sec. IV-C: ``k = min(5, n_class - 1)``.
Borderline-SMOTE, ADASYN, SMOTEFUNA, SWIM, random oversampling and plain
pairwise interpolation complete the Figure-1 oversampling leaves (Sec.
III-A3 names "SMOTE and its variants—ANSMOT and SMOTEFUNA—along with
ADASYN and SWIM" explicitly).

Series are treated as points in ``R^(M*T)`` ("oversampling treats time
series as spatial points"); NaN observations propagate through the convex
combinations so variable-length series stay variable-length.
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from .._validation import check_panel
from .base import Augmenter, register_augmenter

__all__ = ["SMOTE", "BorderlineSMOTE", "ADASYN", "SMOTEFUNA", "SWIM",
           "RandomOversampling", "Interpolation"]


def _flatten(X: np.ndarray) -> np.ndarray:
    """Zero-fill NaNs and flatten to (n, M*T) for distance computations."""
    return np.nan_to_num(X, nan=0.0).reshape(len(X), -1)


def _nearest_neighbors(points: np.ndarray, queries: np.ndarray, k: int,
                       *, exclude_self: bool) -> np.ndarray:
    """Indices of the k nearest *points* for each query (brute force)."""
    d2 = ((queries[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    if exclude_self:
        np.fill_diagonal(d2, np.inf)
    order = np.argsort(d2, axis=1)
    return order[:, :k]


class SMOTE(Augmenter):
    """Synthetic Minority Over-sampling Technique (Chawla et al., 2002).

    Each synthetic series is ``x + u * (neighbor - x)`` with ``u ~ U(0, 1)``
    and the neighbour drawn among the k nearest same-class series.
    """

    taxonomy = ("basic", "oversampling", "interpolation")
    name = "smote"

    def __init__(self, k_neighbors: int = 5):
        if k_neighbors < 1:
            raise ValueError(f"k_neighbors must be >= 1; got {k_neighbors}")
        self.k_neighbors = int(k_neighbors)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        if len(X_class) == 1:
            # Degenerate class: duplicate the single series.
            return np.repeat(X_class, n, axis=0)
        k = min(self.k_neighbors, len(X_class) - 1)  # paper's min(5, n-1)
        flat = _flatten(X_class)
        neighbors = _nearest_neighbors(flat, flat, k, exclude_self=True)
        base_idx = rng.integers(0, len(X_class), size=n)
        neighbor_choice = neighbors[base_idx, rng.integers(0, k, size=n)]
        gaps = rng.random((n, 1, 1))
        return X_class[base_idx] + gaps * (X_class[neighbor_choice] - X_class[base_idx])


class BorderlineSMOTE(Augmenter):
    """Borderline-SMOTE (Han et al., 2005): interpolate only "danger" points.

    A minority series is in danger if more than half (but not all) of its k
    nearest neighbours over the whole dataset belong to other classes; only
    those seeds are interpolated, concentrating synthesis near the boundary.
    Falls back to plain SMOTE when no danger points exist or no majority
    panel is supplied.
    """

    taxonomy = ("basic", "oversampling", "interpolation")
    name = "borderline_smote"

    def __init__(self, k_neighbors: int = 5):
        if k_neighbors < 1:
            raise ValueError(f"k_neighbors must be >= 1; got {k_neighbors}")
        self.k_neighbors = int(k_neighbors)
        self._fallback = SMOTE(k_neighbors)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        if X_other is None or len(X_other) == 0 or len(X_class) < 2:
            return self._fallback.generate(X_class, n, rng=rng)
        X_other = check_panel(X_other)
        flat_min = _flatten(X_class)
        flat_all = np.concatenate([flat_min, _flatten(X_other)], axis=0)
        k = min(self.k_neighbors, len(flat_all) - 1)
        neighbors = _nearest_neighbors(flat_all, flat_min, k + 1, exclude_self=False)
        danger = []
        for i, row in enumerate(neighbors):
            row = row[row != i][:k]  # drop self-match
            majority = (row >= len(flat_min)).sum()
            if k / 2 <= majority < k:
                danger.append(i)
        if not danger:
            return self._fallback.generate(X_class, n, rng=rng)
        seeds = np.asarray(danger)
        k_min = min(self.k_neighbors, len(X_class) - 1)
        same_class_nn = _nearest_neighbors(flat_min, flat_min, k_min, exclude_self=True)
        base_idx = seeds[rng.integers(0, len(seeds), size=n)]
        neighbor_choice = same_class_nn[base_idx, rng.integers(0, k_min, size=n)]
        gaps = rng.random((n, 1, 1))
        return X_class[base_idx] + gaps * (X_class[neighbor_choice] - X_class[base_idx])


class ADASYN(Augmenter):
    """ADASYN (He et al., 2008): density-adaptive synthetic sampling.

    Seeds are drawn proportionally to the fraction of majority samples among
    each minority point's k nearest neighbours, so harder regions receive
    more synthetic data.  Falls back to SMOTE without majority context.
    """

    taxonomy = ("basic", "oversampling", "density")
    name = "adasyn"

    def __init__(self, k_neighbors: int = 5):
        if k_neighbors < 1:
            raise ValueError(f"k_neighbors must be >= 1; got {k_neighbors}")
        self.k_neighbors = int(k_neighbors)
        self._fallback = SMOTE(k_neighbors)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        if X_other is None or len(X_other) == 0 or len(X_class) < 2:
            return self._fallback.generate(X_class, n, rng=rng)
        X_other = check_panel(X_other)
        flat_min = _flatten(X_class)
        flat_all = np.concatenate([flat_min, _flatten(X_other)], axis=0)
        k = min(self.k_neighbors, len(flat_all) - 1)
        neighbors = _nearest_neighbors(flat_all, flat_min, k + 1, exclude_self=False)
        hardness = np.empty(len(flat_min))
        for i, row in enumerate(neighbors):
            row = row[row != i][:k]
            hardness[i] = (row >= len(flat_min)).sum() / k
        if hardness.sum() == 0:
            return self._fallback.generate(X_class, n, rng=rng)
        weights = hardness / hardness.sum()
        k_min = min(self.k_neighbors, len(X_class) - 1)
        same_class_nn = _nearest_neighbors(flat_min, flat_min, k_min, exclude_self=True)
        base_idx = rng.choice(len(X_class), size=n, p=weights)
        neighbor_choice = same_class_nn[base_idx, rng.integers(0, k_min, size=n)]
        gaps = rng.random((n, 1, 1))
        return X_class[base_idx] + gaps * (X_class[neighbor_choice] - X_class[base_idx])


class SMOTEFUNA(Augmenter):
    """SMOTE based on the furthest-neighbour algorithm (Tarawneh et al., 2020).

    Each synthetic sample is drawn uniformly inside the hyper-rectangle
    spanned by a random seed and its *furthest* same-class neighbour —
    covering the class region more broadly than nearest-neighbour SMOTE,
    which concentrates around dense areas.
    """

    taxonomy = ("basic", "oversampling", "interpolation")
    name = "smotefuna"

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        if len(X_class) == 1:
            return np.repeat(X_class, n, axis=0)
        flat = _flatten(X_class)
        d2 = ((flat[:, None, :] - flat[None, :, :]) ** 2).sum(axis=2)
        furthest = d2.argmax(axis=1)
        seeds = rng.integers(0, len(X_class), size=n)
        partners = furthest[seeds]
        lo = np.minimum(X_class[seeds], X_class[partners])
        hi = np.maximum(X_class[seeds], X_class[partners])
        return lo + rng.random(lo.shape) * (hi - lo)


class SWIM(Augmenter):
    """Sampling WIth the Majority class (Bellinger et al., 2019).

    Uses the *majority* distribution's geometry: each synthetic minority
    sample keeps its seed's Mahalanobis depth with respect to the majority
    class, so extreme imbalance (where the minority alone carries almost no
    density information) still yields well-placed samples.  Falls back to
    SMOTE without majority context.
    """

    taxonomy = ("basic", "oversampling", "density")
    name = "swim"

    def __init__(self, spread: float = 0.25, shrinkage: float | None = None):
        if spread <= 0:
            raise ValueError(f"spread must be > 0; got {spread}")
        self.spread = float(spread)
        self.shrinkage = shrinkage
        self._fallback = SMOTE()

    def generate(self, X_class, n, *, rng=None, X_other=None):
        from .preserving import shrinkage_covariance  # local: avoid cycle

        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        if X_other is None or len(X_other) < 2:
            return self._fallback.generate(X_class, n, rng=rng)
        X_other = check_panel(X_other)
        flat_minority = _flatten(X_class)
        flat_majority = _flatten(X_other)
        mean, cov = shrinkage_covariance(flat_majority, shrinkage=self.shrinkage)
        eigvals, eigvecs = np.linalg.eigh(cov)
        eigvals = np.maximum(eigvals, 1e-12)

        # Whiten w.r.t. the majority, jitter direction on the radius shell.
        seeds = flat_minority[rng.integers(0, len(flat_minority), size=n)]
        whitened = (seeds - mean) @ eigvecs / np.sqrt(eigvals)
        radii = np.linalg.norm(whitened, axis=1, keepdims=True)
        radii[radii == 0] = 1e-12
        jittered = whitened + rng.standard_normal(whitened.shape) * self.spread
        norms = np.linalg.norm(jittered, axis=1, keepdims=True)
        norms[norms == 0] = 1e-12
        jittered *= radii / norms  # restore the majority-Mahalanobis depth
        samples = mean + (jittered * np.sqrt(eigvals)) @ eigvecs.T
        return samples.reshape((n,) + X_class.shape[1:])


class RandomOversampling(Augmenter):
    """Duplicate randomly-chosen minority series (the trivial baseline)."""

    taxonomy = ("basic", "oversampling", "interpolation")
    name = "random_oversampling"

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        return X_class[rng.integers(0, len(X_class), size=n)].copy()


class Interpolation(Augmenter):
    """Midpoint-free pairwise interpolation between random same-class pairs.

    Unlike SMOTE it ignores neighbourhood structure: any same-class pair can
    be mixed, which explores the class convex hull more aggressively.
    """

    taxonomy = ("basic", "oversampling", "interpolation")
    name = "interpolation"

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        if len(X_class) == 1:
            return np.repeat(X_class, n, axis=0)
        first = rng.integers(0, len(X_class), size=n)
        shift = rng.integers(1, len(X_class), size=n)
        second = (first + shift) % len(X_class)
        gaps = rng.random((n, 1, 1))
        return X_class[first] + gaps * (X_class[second] - X_class[first])


register_augmenter("smote", SMOTE)
register_augmenter("borderline_smote", BorderlineSMOTE)
register_augmenter("adasyn", ADASYN)
register_augmenter("smotefuna", SMOTEFUNA)
register_augmenter("swim", SWIM)
register_augmenter("random_oversampling", RandomOversampling)
register_augmenter("interpolation", Interpolation)
