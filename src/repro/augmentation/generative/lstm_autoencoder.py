"""LSTM autoencoder augmentation (the taxonomy's LSTM-AE leaf).

Tu et al. (2018) augment spatial-temporal data by perturbing the bottleneck
of an LSTM autoencoder.  This implementation encodes each ``(T, F)``
sequence with an LSTM whose final hidden state is the code, decodes by
unrolling a second LSTM from the code, trains on reconstruction, and
generates by Gaussian-jittering codes of real sequences before decoding —
a sequence-aware sibling of
:class:`~repro.augmentation.generative.autoencoder.AutoencoderInterpolation`.
"""

from __future__ import annotations

import numpy as np

from ... import nn
from ..._rng import ensure_rng
from ..._validation import check_panel, check_positive
from ...nn.lstm import LSTM
from ..base import Augmenter, register_augmenter

__all__ = ["LSTMAutoencoder"]


class LSTMAutoencoder(Augmenter):
    """Per-class LSTM autoencoder with latent-jitter generation."""

    taxonomy = ("generative", "neural_networks", "autoencoders")
    name = "lstm_ae"

    def __init__(self, hidden_size: int = 12, epochs: int = 60, lr: float = 2e-3,
                 batch_size: int = 16, jitter: float = 0.2,
                 max_sequence_length: int = 48):
        check_positive(hidden_size, name="hidden_size")
        check_positive(epochs, name="epochs")
        check_positive(jitter, name="jitter")
        self.hidden_size = int(hidden_size)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.batch_size = int(batch_size)
        self.jitter = float(jitter)
        self.max_sequence_length = int(max_sequence_length)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        k, m, t = X_class.shape

        stride = max(1, int(np.ceil(t / self.max_sequence_length)))
        sequences = np.nan_to_num(X_class, nan=0.0)[:, :, ::stride]
        t_red = sequences.shape[2]
        data = np.transpose(sequences, (0, 2, 1))  # (N, T, F)
        mean = data.mean(axis=(0, 1))
        std = data.std(axis=(0, 1))
        std[std == 0] = 1.0
        data = (data - mean) / std

        encoder = LSTM(m, self.hidden_size, rng=rng)
        decoder = LSTM(self.hidden_size, self.hidden_size, rng=rng)
        head = nn.Linear(self.hidden_size, m, rng=rng)
        params = encoder.parameters() + decoder.parameters() + head.parameters()
        optimizer = nn.Adam(params, lr=self.lr)

        def decode(codes: nn.Tensor) -> nn.Tensor:
            # Repeat the code along time and unroll the decoder LSTM.
            repeated = nn.Tensor.stack([codes] * t_red, axis=1)
            return head(decoder(repeated))

        for _ in range(self.epochs):
            for batch in nn.iterate_minibatches(len(data), self.batch_size, rng):
                optimizer.zero_grad()
                x = nn.Tensor(data[batch])
                codes = encoder(x)[:, -1, :]
                loss = nn.mse_loss(decode(codes), x)
                loss.backward()
                optimizer.step()

        with nn.no_grad():
            codes = encoder(nn.Tensor(data)).data[:, -1, :]
            seeds = codes[rng.integers(0, k, size=n)]
            scale = codes.std(axis=0, keepdims=True)
            jittered = seeds + rng.standard_normal(seeds.shape) * (self.jitter * scale)
            decoded = decode(nn.Tensor(jittered)).data  # (n, T_red, F)

        decoded = decoded * std + mean
        synthetic = np.transpose(decoded, (0, 2, 1))
        if stride > 1:
            grid = np.linspace(0, t_red - 1, t)
            upsampled = np.empty((n, m, t))
            for i in range(n):
                for channel in range(m):
                    upsampled[i, channel] = np.interp(grid, np.arange(t_red), synthetic[i, channel])
            synthetic = upsampled
        return synthetic


register_augmenter("lstm_ae", LSTMAutoencoder)
