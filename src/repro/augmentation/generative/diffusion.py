"""Denoising diffusion augmenter — Eq. (2) of the paper.

A compact DDPM (Ho et al., 2020) over flattened standardised series: the
forward process adds Gaussian noise along a linear beta schedule; a small
MLP denoiser with a sinusoidal timestep embedding learns to predict the
noise; ancestral sampling inverts the chain, realising

    P_theta(x) = P(x_T) * prod_t P_theta(x_{t-1} | x_t)

with ``P_theta(x_{t-1}|x_t) ~ N(mu_theta(x_t, t), sigma_t^2 I)``.  Trained
per class at generation time, like the other neural augmenters.
"""

from __future__ import annotations

import numpy as np

from ... import nn
from ..._rng import ensure_rng
from ..._validation import check_panel, check_positive
from ..base import Augmenter, register_augmenter
from .autoencoder import _Standardizer

__all__ = ["DiffusionSampler"]


def _timestep_embedding(steps: np.ndarray, dim: int) -> np.ndarray:
    """Sinusoidal embedding of integer diffusion steps, shape (n, dim)."""
    half = dim // 2
    frequencies = np.exp(-np.log(1000.0) * np.arange(half) / max(half - 1, 1))
    angles = steps[:, None] * frequencies[None, :]
    emb = np.concatenate([np.sin(angles), np.cos(angles)], axis=1)
    if emb.shape[1] < dim:
        emb = np.concatenate([emb, np.zeros((len(steps), dim - emb.shape[1]))], axis=1)
    return emb


class DiffusionSampler(Augmenter):
    """Per-class DDPM on flattened series."""

    taxonomy = ("generative", "probabilistic", "diffusion")
    name = "diffusion"

    def __init__(self, n_steps: int = 50, hidden_dim: int = 96,
                 epochs: int = 120, lr: float = 1e-3, batch_size: int = 32,
                 time_embed_dim: int = 16):
        check_positive(n_steps, name="n_steps")
        check_positive(epochs, name="epochs")
        self.n_steps = int(n_steps)
        self.hidden_dim = int(hidden_dim)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.batch_size = int(batch_size)
        self.time_embed_dim = int(time_embed_dim)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        flat = np.nan_to_num(X_class, nan=0.0).reshape(len(X_class), -1)
        scaler = _Standardizer().fit(flat)
        Z = scaler.forward(flat)
        d = Z.shape[1]

        betas = np.linspace(1e-4, 0.2, self.n_steps)
        alphas = 1.0 - betas
        alpha_bars = np.cumprod(alphas)

        denoiser = nn.Sequential(
            nn.Linear(d + self.time_embed_dim, self.hidden_dim, rng=rng), nn.ReLU(),
            nn.Linear(self.hidden_dim, self.hidden_dim, rng=rng), nn.ReLU(),
            nn.Linear(self.hidden_dim, d, rng=rng),
        )
        optimizer = nn.Adam(denoiser.parameters(), lr=self.lr)

        for _ in range(self.epochs):
            for batch in nn.iterate_minibatches(len(Z), self.batch_size, rng):
                optimizer.zero_grad()
                x0 = Z[batch]
                steps = rng.integers(0, self.n_steps, size=len(x0))
                noise = rng.standard_normal(x0.shape)
                ab = alpha_bars[steps][:, None]
                noisy = np.sqrt(ab) * x0 + np.sqrt(1.0 - ab) * noise
                model_in = np.concatenate(
                    [noisy, _timestep_embedding(steps, self.time_embed_dim)], axis=1
                )
                predicted = denoiser(nn.Tensor(model_in))
                loss = nn.mse_loss(predicted, noise)
                loss.backward()
                optimizer.step()

        # Ancestral sampling.
        with nn.no_grad():
            x = rng.standard_normal((n, d))
            for step in reversed(range(self.n_steps)):
                steps = np.full(n, step)
                model_in = np.concatenate(
                    [x, _timestep_embedding(steps, self.time_embed_dim)], axis=1
                )
                eps_hat = denoiser(nn.Tensor(model_in)).data
                coef = betas[step] / np.sqrt(1.0 - alpha_bars[step])
                x = (x - coef * eps_hat) / np.sqrt(alphas[step])
                if step > 0:
                    x = x + np.sqrt(betas[step]) * rng.standard_normal((n, d))
        return scaler.inverse(x).reshape((n,) + X_class.shape[1:])


register_augmenter("diffusion", DiffusionSampler)
