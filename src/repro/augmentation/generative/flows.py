"""Normalizing flows — the remaining Figure-1 probabilistic leaf.

A RealNVP-style flow (Dinh et al., 2017) on flattened standardised series:
a stack of affine coupling layers, each of which transforms one half of the
coordinates conditioned on the other half.  Trained by exact maximum
likelihood (the coupling structure gives a triangular Jacobian whose
log-determinant is the sum of the predicted log-scales); sampling inverts
the stack on Gaussian noise.  Kobyzev et al. (2021) is the review the paper
cites for this branch.
"""

from __future__ import annotations

import numpy as np

from ... import nn
from ..._rng import ensure_rng
from ..._validation import check_panel, check_positive
from ..base import Augmenter, register_augmenter
from .autoencoder import _Standardizer

__all__ = ["NormalizingFlowSampler", "AffineCoupling"]


class AffineCoupling(nn.Module):
    """One RealNVP affine coupling layer.

    Coordinates in *mask* pass through unchanged and parameterise an affine
    transform (scale + shift) of the remaining coordinates.  ``forward``
    maps data -> latent and returns the log-det-Jacobian contribution;
    ``inverse`` maps latent -> data.
    """

    def __init__(self, dim: int, hidden: int, mask: np.ndarray,
                 rng: np.random.Generator):
        super().__init__()
        self.mask = mask.astype(float)  # 1 = passthrough coordinates
        self.net = nn.Sequential(
            nn.Linear(dim, hidden, rng=rng), nn.ReLU(),
            nn.Linear(hidden, hidden, rng=rng), nn.ReLU(),
            nn.Linear(hidden, 2 * dim, rng=rng),
        )
        self.dim = dim

    def _scale_shift(self, passthrough: nn.Tensor) -> tuple[nn.Tensor, nn.Tensor]:
        params = self.net(passthrough)
        log_scale = params[:, : self.dim].tanh()  # bounded for stability
        shift = params[:, self.dim :]
        inverse_mask = nn.Tensor(1.0 - self.mask)
        return log_scale * inverse_mask, shift * inverse_mask

    def forward(self, x: nn.Tensor) -> tuple[nn.Tensor, nn.Tensor]:
        masked = x * nn.Tensor(self.mask)
        log_scale, shift = self._scale_shift(masked)
        z = masked + (x * log_scale.exp() + shift) * nn.Tensor(1.0 - self.mask)
        return z, log_scale.sum(axis=1)

    def inverse(self, z: nn.Tensor) -> nn.Tensor:
        masked = z * nn.Tensor(self.mask)
        log_scale, shift = self._scale_shift(masked)
        return masked + ((z - shift) * (-log_scale).exp()) * nn.Tensor(1.0 - self.mask)


class NormalizingFlowSampler(Augmenter):
    """Per-class RealNVP flow trained by maximum likelihood."""

    taxonomy = ("generative", "probabilistic", "normalizing_flows")
    name = "flow"

    def __init__(self, n_couplings: int = 4, hidden_dim: int = 64,
                 epochs: int = 120, lr: float = 1e-3, batch_size: int = 32):
        check_positive(n_couplings, name="n_couplings")
        check_positive(epochs, name="epochs")
        self.n_couplings = int(n_couplings)
        self.hidden_dim = int(hidden_dim)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.batch_size = int(batch_size)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        flat = np.nan_to_num(X_class, nan=0.0).reshape(len(X_class), -1)
        scaler = _Standardizer().fit(flat)
        Z = scaler.forward(flat)
        d = Z.shape[1]

        couplings = []
        for index in range(self.n_couplings):
            mask = np.zeros(d)
            mask[index % 2 :: 2] = 1.0  # alternate halves across layers
            couplings.append(AffineCoupling(d, self.hidden_dim, mask, rng))

        params = [p for coupling in couplings for p in coupling.parameters()]
        optimizer = nn.Adam(params, lr=self.lr)
        log_2pi = float(np.log(2 * np.pi))
        for _ in range(self.epochs):
            for batch in nn.iterate_minibatches(len(Z), self.batch_size, rng):
                optimizer.zero_grad()
                x = nn.Tensor(Z[batch])
                log_det = nn.Tensor(np.zeros(len(batch)))
                for coupling in couplings:
                    x, contribution = coupling(x)
                    log_det = log_det + contribution
                # Negative log-likelihood under the standard-normal base.
                base = -0.5 * ((x * x).sum(axis=1) + d * log_2pi)
                loss = -(base + log_det).mean()
                loss.backward()
                nn.clip_grad_norm(optimizer.params, 10.0)
                optimizer.step()

        with nn.no_grad():
            z = nn.Tensor(rng.standard_normal((n, d)))
            for coupling in reversed(couplings):
                z = coupling.inverse(z)
            samples = z.data
        return scaler.inverse(samples).reshape((n,) + X_class.shape[1:])


register_augmenter("flow", NormalizingFlowSampler)
