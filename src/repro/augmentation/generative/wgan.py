"""Wasserstein GAN augmentation (the taxonomy's GANs leaf beyond TimeGAN).

The survey section cites WGAN variants (Arjovsky et al., 2017; the sWGAN /
cWGAN comparison of Luo et al., 2018).  This is a compact WGAN with weight
clipping on flattened standardised series: an MLP generator against an MLP
critic trained with the Wasserstein objective, *n_critic* critic steps per
generator step.  It ignores temporal ordering — exactly the weakness that
motivates TimeGAN — which makes it a useful contrast in the ablations.
"""

from __future__ import annotations

import numpy as np

from ... import nn
from ..._rng import ensure_rng
from ..._validation import check_panel, check_positive
from ..base import Augmenter, register_augmenter
from .autoencoder import _Standardizer

__all__ = ["WGAN"]


class WGAN(Augmenter):
    """Per-class Wasserstein GAN with weight clipping."""

    taxonomy = ("generative", "neural_networks", "gans")
    name = "wgan"

    def __init__(self, latent_dim: int = 10, hidden_dim: int = 64,
                 iterations: int = 200, lr: float = 5e-4, batch_size: int = 32,
                 n_critic: int = 3, clip: float = 0.03):
        check_positive(latent_dim, name="latent_dim")
        check_positive(iterations, name="iterations")
        check_positive(clip, name="clip")
        self.latent_dim = int(latent_dim)
        self.hidden_dim = int(hidden_dim)
        self.iterations = int(iterations)
        self.lr = float(lr)
        self.batch_size = int(batch_size)
        self.n_critic = int(n_critic)
        self.clip = float(clip)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        flat = np.nan_to_num(X_class, nan=0.0).reshape(len(X_class), -1)
        scaler = _Standardizer().fit(flat)
        Z = scaler.forward(flat)
        d = Z.shape[1]
        batch = min(self.batch_size, len(Z))

        generator = nn.Sequential(
            nn.Linear(self.latent_dim, self.hidden_dim, rng=rng), nn.ReLU(),
            nn.Linear(self.hidden_dim, self.hidden_dim, rng=rng), nn.ReLU(),
            nn.Linear(self.hidden_dim, d, rng=rng),
        )
        critic = nn.Sequential(
            nn.Linear(d, self.hidden_dim, rng=rng), nn.ReLU(),
            nn.Linear(self.hidden_dim, self.hidden_dim, rng=rng), nn.ReLU(),
            nn.Linear(self.hidden_dim, 1, rng=rng),
        )
        opt_g = nn.Adam(generator.parameters(), lr=self.lr, betas=(0.5, 0.9))
        opt_c = nn.Adam(critic.parameters(), lr=self.lr, betas=(0.5, 0.9))

        for _ in range(self.iterations):
            for _ in range(self.n_critic):
                opt_c.zero_grad()
                real = Z[rng.integers(0, len(Z), size=batch)]
                with nn.no_grad():
                    fake = generator(nn.Tensor(rng.standard_normal((batch, self.latent_dim)))).data
                # Maximise E[critic(real)] - E[critic(fake)].
                loss_c = critic(nn.Tensor(fake)).mean() - critic(nn.Tensor(real)).mean()
                loss_c.backward()
                opt_c.step()
                for p in critic.parameters():
                    np.clip(p.data, -self.clip, self.clip, out=p.data)

            opt_g.zero_grad()
            noise = nn.Tensor(rng.standard_normal((batch, self.latent_dim)))
            loss_g = -critic(generator(noise)).mean()
            loss_g.backward()
            opt_g.step()

        with nn.no_grad():
            samples = generator(nn.Tensor(rng.standard_normal((n, self.latent_dim)))).data
        return scaler.inverse(samples).reshape((n,) + X_class.shape[1:])


register_augmenter("wgan", WGAN)
