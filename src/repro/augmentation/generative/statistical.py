"""Statistical generative models (generative branch of the taxonomy).

Implements the Figure-1 leaves that model the class distribution with
classical statistics rather than neural networks:

* :class:`GaussianPosteriorSampling` — fit a Gaussian to the class and
  sample it (Tanner & Wong's posterior-sampling idea in its simplest form);
* :class:`GMMSampler` — mixture of Gaussians fitted with EM from scratch
  (the "Gaussian trees" leaf's workhorse for multimodal minority classes);
* :class:`LGT` — local-and-global-trend resampling (Smyl & Kuber, 2016):
  refit level/trend and bootstrap the de-trended remainder;
* :class:`GRATISMixtureAR` — GRATIS-style mixture-autoregressive generator
  whose AR coefficients are fitted per class (Kang et al., 2020);
* :class:`MaximumEntropyBootstrap` — meboot (Vinod, 2009): rank-preserving
  resampling inside empirical value intervals.
"""

from __future__ import annotations

import numpy as np

from ..._rng import ensure_rng
from ..._validation import check_panel, check_positive
from ..base import Augmenter, register_augmenter
from ..preserving import shrinkage_covariance, _sample_gaussian

__all__ = [
    "GaussianPosteriorSampling",
    "GMMSampler",
    "fit_gmm",
    "LGT",
    "GRATISMixtureAR",
    "MaximumEntropyBootstrap",
]


def _flatten(X: np.ndarray) -> np.ndarray:
    return np.nan_to_num(X, nan=0.0).reshape(len(X), -1)


class GaussianPosteriorSampling(Augmenter):
    """Fit N(mean, shrunk covariance) to the class and sample from it."""

    taxonomy = ("generative", "statistical", "posterior_sampling")
    name = "gaussian"

    def __init__(self, shrinkage: float | None = None):
        self.shrinkage = shrinkage

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        mean, cov = shrinkage_covariance(_flatten(X_class), shrinkage=self.shrinkage)
        return _sample_gaussian(mean, cov, n, rng).reshape((n,) + X_class.shape[1:])


def fit_gmm(flat: np.ndarray, n_components: int, *, rng: np.random.Generator,
            max_iter: int = 50, tol: float = 1e-4
            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fit a diagonal-covariance Gaussian mixture with EM.

    Returns ``(weights, means, variances)`` with shapes ``(K,)``, ``(K, d)``
    and ``(K, d)``.  Diagonal covariances keep EM stable in the
    high-dimension / few-samples regime of minority time-series classes.
    """
    n, d = flat.shape
    k = min(n_components, n)
    means = flat[rng.choice(n, size=k, replace=False)].copy()
    variances = np.tile(flat.var(axis=0) + 1e-6, (k, 1))
    weights = np.full(k, 1.0 / k)
    previous = -np.inf
    for _ in range(max_iter):
        # E step: responsibilities via stable log-space computation.
        log_prob = -0.5 * (
            ((flat[:, None, :] - means[None]) ** 2 / variances[None]).sum(axis=2)
            + np.log(variances).sum(axis=1)[None]
            + d * np.log(2 * np.pi)
        ) + np.log(weights)[None]
        log_norm = np.logaddexp.reduce(log_prob, axis=1, keepdims=True)
        resp = np.exp(log_prob - log_norm)
        likelihood = float(log_norm.sum())
        # M step.
        counts = resp.sum(axis=0) + 1e-12
        weights = counts / n
        means = (resp.T @ flat) / counts[:, None]
        variances = (resp.T @ flat**2) / counts[:, None] - means**2
        variances = np.maximum(variances, 1e-8)
        if abs(likelihood - previous) < tol * max(abs(previous), 1.0):
            break
        previous = likelihood
    return weights, means, variances


class GMMSampler(Augmenter):
    """Sample a per-class EM-fitted Gaussian mixture."""

    taxonomy = ("generative", "statistical", "gaussian_trees")
    name = "gmm"

    def __init__(self, n_components: int = 3):
        check_positive(n_components, name="n_components")
        self.n_components = int(n_components)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        flat = _flatten(X_class)
        weights, means, variances = fit_gmm(flat, self.n_components, rng=rng)
        components = rng.choice(weights.size, size=n, p=weights)
        samples = means[components] + rng.standard_normal((n, flat.shape[1])) * np.sqrt(variances[components])
        return samples.reshape((n,) + X_class.shape[1:])


class LGT(Augmenter):
    """Local-and-global-trend resampling (Smyl & Kuber, 2016).

    Each channel is decomposed into a global linear trend plus local
    deviations; new series combine a randomly drawn trend with a block
    bootstrap of another series' deviations, mixing long-term and
    short-term behaviour within the class.
    """

    taxonomy = ("generative", "statistical", "lgt")
    name = "lgt"

    def __init__(self, block: int = 8):
        check_positive(block, name="block")
        self.block = int(block)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        k, m, t = X_class.shape
        steps = np.arange(t)
        design = np.stack([np.ones(t), steps], axis=1)  # (t, 2)
        pinv = np.linalg.pinv(design)
        filled = np.nan_to_num(X_class, nan=0.0)
        coeffs = np.einsum("pt,kmt->kmp", pinv, filled)  # level & slope
        trends = np.einsum("tp,kmp->kmt", design, coeffs)
        deviations = filled - trends

        out = np.empty((n, m, t))
        trend_sources = rng.integers(0, k, size=n)
        deviation_sources = rng.integers(0, k, size=n)
        block = max(1, min(self.block, t))
        for i in range(n):
            local = deviations[deviation_sources[i]]
            n_blocks = int(np.ceil(t / block))
            starts = rng.integers(0, t - block + 1, size=n_blocks)
            shuffled = np.concatenate([local[:, s : s + block] for s in starts], axis=1)[:, :t]
            out[i] = trends[trend_sources[i]] + shuffled
        return out


class GRATISMixtureAR(Augmenter):
    """GRATIS-style mixture-autoregressive generation (Kang et al., 2020).

    Fits an AR(p) model per class channel (pooled least squares across the
    class's series), then simulates new series driven by bootstrapped
    innovations, optionally mixing coefficients of two fitted channels to
    diversify the generated dynamics.
    """

    taxonomy = ("generative", "statistical", "gratis")
    name = "gratis"

    def __init__(self, order: int = 3, coefficient_jitter: float = 0.05):
        check_positive(order, name="order")
        self.order = int(order)
        self.coefficient_jitter = float(coefficient_jitter)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        k, m, t = X_class.shape
        p = max(1, min(self.order, t - 2))
        filled = np.nan_to_num(X_class, nan=0.0)
        out = np.empty((n, m, t))
        for channel in range(m):
            coeffs, intercept, residuals = self._fit_ar(filled[:, channel, :], p)
            for i in range(n):
                jittered = coeffs * (1.0 + rng.normal(0.0, self.coefficient_jitter, size=p))
                jittered = self._stabilize(jittered)
                seed = filled[rng.integers(0, k), channel, :p]
                series = np.empty(t)
                series[:p] = seed
                shocks = rng.choice(residuals, size=t)
                for step in range(p, t):
                    series[step] = intercept + jittered @ series[step - p : step][::-1] + shocks[step]
                out[i, channel] = series
        return out

    @staticmethod
    def _fit_ar(rows: np.ndarray, p: int) -> tuple[np.ndarray, float, np.ndarray]:
        """Pooled least-squares AR(p) over all rows; returns coeffs, c, residuals."""
        targets, lags = [], []
        for row in rows:
            for step in range(p, row.size):
                targets.append(row[step])
                lags.append(row[step - p : step][::-1])
        design = np.column_stack([np.ones(len(targets)), np.asarray(lags)])
        solution, *_ = np.linalg.lstsq(design, np.asarray(targets), rcond=None)
        intercept, coeffs = solution[0], solution[1:]
        residuals = np.asarray(targets) - design @ solution
        if residuals.size == 0:
            residuals = np.zeros(1)
        return coeffs, float(intercept), residuals

    @staticmethod
    def _stabilize(coeffs: np.ndarray) -> np.ndarray:
        """Scale coefficients until the AR polynomial's roots are stable."""
        for _ in range(20):
            poly = np.concatenate([[1.0], -coeffs])
            roots = np.roots(poly)
            if roots.size == 0 or np.all(np.abs(roots) < 0.98):
                return coeffs
            coeffs = coeffs * 0.9
        return coeffs


class MaximumEntropyBootstrap(Augmenter):
    """meboot (Vinod, 2009): rank-preserving resampling of each series.

    Sorted values define empirical intervals; uniform draws are mapped
    through the interval structure and re-ordered with the original ranks,
    producing replicates that keep the series' shape but perturb its values
    with maximum entropy.
    """

    taxonomy = ("generative", "statistical", "posterior_sampling")
    name = "meboot"

    def __init__(self, trim: float = 0.1):
        self.trim = float(trim)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        k, m, t = X_class.shape
        out = np.empty((n, m, t))
        sources = rng.integers(0, k, size=n)
        for i, source in enumerate(sources):
            for channel in range(m):
                out[i, channel] = self._replicate(
                    np.nan_to_num(X_class[source, channel], nan=0.0), rng
                )
        return out

    def _replicate(self, series: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        t = series.size
        order = np.argsort(series, kind="stable")
        sorted_values = series[order]
        # Interval midpoints between consecutive order statistics, with
        # trimmed-mean-extended end intervals (Vinod's construction).
        mids = (sorted_values[1:] + sorted_values[:-1]) / 2.0
        spread = np.abs(np.diff(sorted_values)).mean() if t > 1 else 1.0
        lower = sorted_values[0] - self.trim * spread
        upper = sorted_values[-1] + self.trim * spread
        edges = np.concatenate([[lower], mids, [upper]])
        draws = np.sort(rng.uniform(0, 1, size=t))
        quantiles = np.interp(draws, np.linspace(0, 1, t + 1)[1:-1], mids) if t > 2 else draws
        if t > 2:
            quantiles = np.interp(draws, np.linspace(0, 1, edges.size), edges)
        else:
            quantiles = lower + draws * (upper - lower)
        replicate = np.empty(t)
        replicate[order] = quantiles  # restore the original rank structure
        return replicate


register_augmenter("gaussian", GaussianPosteriorSampling)
register_augmenter("gmm", GMMSampler)
register_augmenter("lgt", LGT)
register_augmenter("gratis", GRATISMixtureAR)
register_augmenter("meboot", MaximumEntropyBootstrap)
