"""TimeGAN (Yoon, Jarrett & van der Schaar, 2019) on the numpy NN substrate.

The paper calls TimeGAN "the only generative model to take into account the
temporal aspect of time series" and trains one per class (Sec. IV-C) with
latent dimension 10, gamma 1, learning rate 5e-4 and batch size 32.  This
implementation follows the original three-phase recipe:

1. **embedding phase** — train embedder + recovery GRUs on reconstruction;
2. **supervised phase** — train generator + supervisor on next-step
   prediction in latent space (the "supervised loss" that distinguishes
   TimeGAN from a plain GAN);
3. **joint phase** — alternate discriminator updates with generator updates
   (adversarial + supervised + moment-matching losses) and embedder
   refinement.

Iteration counts are scaled down from the paper's 2500/2500/1000 for CPU;
pass ``iterations=(2500, 2500, 1000)`` to reproduce the full budget.
Sequences are min-max scaled to [0, 1] per feature (the reference
implementation's convention) and arranged ``(batch, time, features)``.
"""

from __future__ import annotations

import numpy as np

from ... import nn
from ..._rng import ensure_rng
from ..._validation import check_panel, check_positive
from ..base import Augmenter, register_augmenter

__all__ = ["TimeGAN", "TimeGANConfig"]


class _MinMaxScaler:
    """Per-feature min-max scaling to [0, 1] over a (N, T, F) tensor."""

    def fit(self, sequences: np.ndarray) -> "_MinMaxScaler":
        self.minimum = sequences.min(axis=(0, 1))
        self.maximum = sequences.max(axis=(0, 1))
        span = self.maximum - self.minimum
        span[span == 0] = 1.0
        self.span = span
        return self

    def forward(self, sequences: np.ndarray) -> np.ndarray:
        return (sequences - self.minimum) / self.span

    def inverse(self, sequences: np.ndarray) -> np.ndarray:
        return sequences * self.span + self.minimum


class TimeGANConfig:
    """Hyper-parameters; defaults follow Sec. IV-C where the paper fixes them."""

    def __init__(self, *, latent_dim: int = 10, num_layers: int = 2,
                 gamma: float = 1.0, lr: float = 5e-4, batch_size: int = 32,
                 iterations: tuple[int, int, int] = (150, 150, 80),
                 max_sequence_length: int = 64, eta: float = 10.0):
        check_positive(latent_dim, name="latent_dim")
        check_positive(gamma, name="gamma")
        check_positive(lr, name="lr")
        self.latent_dim = int(latent_dim)
        self.num_layers = int(num_layers)
        self.gamma = float(gamma)
        self.lr = float(lr)
        self.batch_size = int(batch_size)
        self.iterations = tuple(int(i) for i in iterations)
        self.max_sequence_length = int(max_sequence_length)
        self.eta = float(eta)


class _Nets:
    """The five TimeGAN networks, built for one class's feature count."""

    def __init__(self, n_features: int, config: TimeGANConfig, rng: np.random.Generator):
        h = config.latent_dim
        self.embedder = nn.GRU(n_features, h, num_layers=config.num_layers, rng=rng)
        self.embedder_head = nn.Linear(h, h, rng=rng)
        self.recovery = nn.GRU(h, h, num_layers=config.num_layers, rng=rng)
        self.recovery_head = nn.Linear(h, n_features, rng=rng)
        self.generator = nn.GRU(n_features, h, num_layers=config.num_layers, rng=rng)
        self.generator_head = nn.Linear(h, h, rng=rng)
        self.supervisor = nn.GRU(h, h, num_layers=max(1, config.num_layers - 1), rng=rng)
        self.supervisor_head = nn.Linear(h, h, rng=rng)
        self.discriminator = nn.GRU(h, h, num_layers=config.num_layers, rng=rng)
        self.discriminator_head = nn.Linear(h, 1, rng=rng)

    # -- forward helpers ------------------------------------------------ #

    def embed(self, x: nn.Tensor) -> nn.Tensor:
        return self.embedder_head(self.embedder(x)).sigmoid()

    def recover(self, h: nn.Tensor) -> nn.Tensor:
        return self.recovery_head(self.recovery(h)).sigmoid()

    def generate_latent(self, z: nn.Tensor) -> nn.Tensor:
        return self.generator_head(self.generator(z)).sigmoid()

    def supervise(self, h: nn.Tensor) -> nn.Tensor:
        return self.supervisor_head(self.supervisor(h)).sigmoid()

    def discriminate(self, h: nn.Tensor) -> nn.Tensor:
        return self.discriminator_head(self.discriminator(h))

    # -- parameter groups ------------------------------------------------ #

    def autoencoder_params(self):
        return (self.embedder.parameters() + self.embedder_head.parameters()
                + self.recovery.parameters() + self.recovery_head.parameters())

    def generator_params(self):
        return (self.generator.parameters() + self.generator_head.parameters()
                + self.supervisor.parameters() + self.supervisor_head.parameters())

    def discriminator_params(self):
        return self.discriminator.parameters() + self.discriminator_head.parameters()


def _supervised_loss(h: nn.Tensor, h_hat: nn.Tensor) -> nn.Tensor:
    """MSE between next-step truth and supervisor prediction."""
    return nn.mse_loss(h_hat[:, :-1, :], h[:, 1:, :].detach())


class TimeGAN(Augmenter):
    """Per-class TimeGAN augmenter (one model trained per call, as in the paper)."""

    taxonomy = ("generative", "neural_networks", "gans")
    name = "timegan"

    def __init__(self, config: TimeGANConfig | None = None):
        self.config = config or TimeGANConfig()

    # ------------------------------------------------------------------ #

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        k, m, t = X_class.shape

        # Long series are trained at reduced resolution and upsampled back:
        # GRU backprop through thousands of steps is not CPU-feasible.
        stride = max(1, int(np.ceil(t / self.config.max_sequence_length)))
        sequences = np.nan_to_num(X_class, nan=0.0)[:, :, ::stride]
        t_red = sequences.shape[2]
        sequences = np.transpose(sequences, (0, 2, 1))  # (N, T, F)
        scaler = _MinMaxScaler().fit(sequences)
        data = scaler.forward(sequences)

        nets = _Nets(m, self.config, rng)
        self._train(nets, data, rng)

        synthetic = self._sample(nets, n, t_red, m, rng)
        synthetic = scaler.inverse(synthetic)
        synthetic = np.transpose(synthetic, (0, 2, 1))  # (n, F, T_red)
        if stride > 1:
            grid = np.linspace(0, t_red - 1, t)
            upsampled = np.empty((n, m, t))
            for i in range(n):
                for channel in range(m):
                    upsampled[i, channel] = np.interp(grid, np.arange(t_red), synthetic[i, channel])
            synthetic = upsampled
        return synthetic

    # ------------------------------------------------------------------ #

    def _batches(self, data: np.ndarray, rng: np.random.Generator, iterations: int):
        n = len(data)
        size = min(self.config.batch_size, n)
        for _ in range(iterations):
            yield data[rng.integers(0, n, size=size)]

    def _train(self, nets: _Nets, data: np.ndarray, rng: np.random.Generator) -> None:
        cfg = self.config
        it_embed, it_supervised, it_joint = cfg.iterations

        # Phase 1: embedding network (reconstruction).
        opt_ae = nn.Adam(nets.autoencoder_params(), lr=cfg.lr)
        for batch in self._batches(data, rng, it_embed):
            opt_ae.zero_grad()
            x = nn.Tensor(batch)
            h = nets.embed(x)
            x_tilde = nets.recover(h)
            loss = nn.mse_loss(x_tilde, x) * cfg.eta
            loss.backward()
            opt_ae.step()

        # Phase 2: supervised loss only (teach temporal dynamics).
        opt_s = nn.Adam(nets.generator_params(), lr=cfg.lr)
        for batch in self._batches(data, rng, it_supervised):
            opt_s.zero_grad()
            with nn.no_grad():
                h = nets.embed(nn.Tensor(batch))
            h = nn.Tensor(h.data)
            h_hat = nets.supervise(h)
            loss = _supervised_loss(h, h_hat)
            loss.backward()
            opt_s.step()

        # Phase 3: joint adversarial training.
        opt_g = nn.Adam(nets.generator_params(), lr=cfg.lr)
        opt_d = nn.Adam(nets.discriminator_params(), lr=cfg.lr)
        opt_ae2 = nn.Adam(nets.autoencoder_params(), lr=cfg.lr)
        t_steps, m = data.shape[1], data.shape[2]
        for batch in self._batches(data, rng, it_joint):
            size = len(batch)
            # -- generator update (twice per discriminator update, as in
            #    the reference implementation) --
            for _ in range(2):
                opt_g.zero_grad()
                z = nn.Tensor(rng.random((size, t_steps, m)))
                e_hat = nets.generate_latent(z)
                h_hat = nets.supervise(e_hat)
                x_real = nn.Tensor(batch)
                h_real = nets.embed(x_real)
                y_fake = nets.discriminate(h_hat)
                adversarial = nn.bce_with_logits(y_fake, np.ones_like(y_fake.data))
                supervised = _supervised_loss(h_real.detach(), nets.supervise(h_real.detach()))
                x_hat = nets.recover(h_hat)
                moment_mean = (x_hat.mean(axis=(0, 1)) - nn.Tensor(batch.mean(axis=(0, 1)))).abs().mean()
                real_std = nn.Tensor(batch.std(axis=(0, 1)))
                fake_var = ((x_hat - x_hat.mean(axis=(0, 1))) ** 2).mean(axis=(0, 1))
                moment_std = ((fake_var + 1e-6) ** 0.5 - real_std).abs().mean()
                loss_g = adversarial + cfg.gamma * supervised + 100.0 * (moment_mean + moment_std)
                loss_g.backward()
                opt_g.step()

            # -- embedder refinement: reconstruction + light supervision --
            opt_ae2.zero_grad()
            x_real = nn.Tensor(batch)
            h_real = nets.embed(x_real)
            x_tilde = nets.recover(h_real)
            supervised = _supervised_loss(h_real, nets.supervise(h_real))
            loss_e = nn.mse_loss(x_tilde, x_real) * cfg.eta + 0.1 * supervised
            loss_e.backward()
            opt_ae2.step()

            # -- discriminator update --
            opt_d.zero_grad()
            with nn.no_grad():
                h_real_d = nets.embed(nn.Tensor(batch)).data
                z = rng.random((size, t_steps, m))
                e_hat_d = nets.generate_latent(nn.Tensor(z)).data
                h_hat_d = nets.supervise(nn.Tensor(e_hat_d)).data
            y_real = nets.discriminate(nn.Tensor(h_real_d))
            y_fake = nets.discriminate(nn.Tensor(h_hat_d))
            y_fake_e = nets.discriminate(nn.Tensor(e_hat_d))
            loss_d = (
                nn.bce_with_logits(y_real, np.ones_like(y_real.data))
                + nn.bce_with_logits(y_fake, np.zeros_like(y_fake.data))
                + cfg.gamma * nn.bce_with_logits(y_fake_e, np.zeros_like(y_fake_e.data))
            )
            loss_d.backward()
            opt_d.step()

    def _sample(self, nets: _Nets, n: int, t_steps: int, m: int,
                rng: np.random.Generator) -> np.ndarray:
        with nn.no_grad():
            z = nn.Tensor(rng.random((n, t_steps, m)))
            e_hat = nets.generate_latent(z)
            h_hat = nets.supervise(e_hat)
            x_hat = nets.recover(h_hat)
        return x_hat.data


register_augmenter("timegan", TimeGAN)
