"""Neural generative models: autoencoder latent interpolation and VAE.

Figure 1's *Neural Networks / Autoencoders* leaves.  Both models operate on
flattened standardised series and are trained per class at generation time,
matching the paper's per-class TimeGAN protocol.

* :class:`AutoencoderInterpolation` — DeVries & Taylor (2017): encode the
  class, interpolate random pairs in latent space, decode.  Latent-space
  mixing outperforms raw-input mixing because the decoder snaps samples
  back onto the data manifold.
* :class:`VAESampler` — a variational autoencoder whose decoder is sampled
  from the prior (or from posterior jitter when the class is tiny).
"""

from __future__ import annotations

import numpy as np

from ... import nn
from ..._rng import ensure_rng
from ..._validation import check_panel, check_positive
from ..base import Augmenter, register_augmenter

__all__ = ["AutoencoderInterpolation", "VAESampler"]


class _Standardizer:
    """Per-feature standardisation fitted on one class's flattened panel."""

    def fit(self, flat: np.ndarray) -> "_Standardizer":
        self.mean = flat.mean(axis=0)
        self.std = flat.std(axis=0)
        self.std[self.std == 0] = 1.0
        return self

    def forward(self, flat: np.ndarray) -> np.ndarray:
        return (flat - self.mean) / self.std

    def inverse(self, flat: np.ndarray) -> np.ndarray:
        return flat * self.std + self.mean


def _flatten(X: np.ndarray) -> np.ndarray:
    return np.nan_to_num(X, nan=0.0).reshape(len(X), -1)


class AutoencoderInterpolation(Augmenter):
    """Latent-space interpolation with a per-class MLP autoencoder."""

    taxonomy = ("generative", "neural_networks", "autoencoders")
    name = "autoencoder"

    def __init__(self, latent_dim: int = 10, hidden_dim: int = 64,
                 epochs: int = 80, lr: float = 1e-3, batch_size: int = 32):
        check_positive(latent_dim, name="latent_dim")
        check_positive(epochs, name="epochs")
        self.latent_dim = int(latent_dim)
        self.hidden_dim = int(hidden_dim)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.batch_size = int(batch_size)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        flat = _flatten(X_class)
        scaler = _Standardizer().fit(flat)
        Z = scaler.forward(flat)
        d = Z.shape[1]
        latent = min(self.latent_dim, max(2, len(X_class) - 1), d)

        encoder = nn.Sequential(
            nn.Linear(d, self.hidden_dim, rng=rng), nn.ReLU(),
            nn.Linear(self.hidden_dim, latent, rng=rng),
        )
        decoder = nn.Sequential(
            nn.Linear(latent, self.hidden_dim, rng=rng), nn.ReLU(),
            nn.Linear(self.hidden_dim, d, rng=rng),
        )
        params = encoder.parameters() + decoder.parameters()
        optimizer = nn.Adam(params, lr=self.lr)
        for _ in range(self.epochs):
            for batch in nn.iterate_minibatches(len(Z), self.batch_size, rng):
                optimizer.zero_grad()
                x = nn.Tensor(Z[batch])
                reconstruction = decoder(encoder(x))
                loss = nn.mse_loss(reconstruction, x)
                loss.backward()
                optimizer.step()

        with nn.no_grad():
            codes = encoder(nn.Tensor(Z)).data
            first = rng.integers(0, len(codes), size=n)
            second = rng.integers(0, len(codes), size=n)
            gaps = rng.uniform(0.2, 0.8, size=(n, 1))
            mixed = codes[first] + gaps * (codes[second] - codes[first])
            decoded = decoder(nn.Tensor(mixed)).data
        return scaler.inverse(decoded).reshape((n,) + X_class.shape[1:])


class VAESampler(Augmenter):
    """Per-class variational autoencoder sampled from its prior."""

    taxonomy = ("generative", "neural_networks", "autoencoders")
    name = "vae"

    def __init__(self, latent_dim: int = 8, hidden_dim: int = 64,
                 epochs: int = 80, lr: float = 1e-3, batch_size: int = 32,
                 beta: float = 0.5):
        check_positive(latent_dim, name="latent_dim")
        check_positive(epochs, name="epochs")
        check_positive(beta, name="beta")
        self.latent_dim = int(latent_dim)
        self.hidden_dim = int(hidden_dim)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.batch_size = int(batch_size)
        self.beta = float(beta)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        flat = _flatten(X_class)
        scaler = _Standardizer().fit(flat)
        Z = scaler.forward(flat)
        d = Z.shape[1]
        latent = min(self.latent_dim, d)

        encoder = nn.Sequential(nn.Linear(d, self.hidden_dim, rng=rng), nn.ReLU())
        to_mu = nn.Linear(self.hidden_dim, latent, rng=rng)
        to_logvar = nn.Linear(self.hidden_dim, latent, rng=rng)
        decoder = nn.Sequential(
            nn.Linear(latent, self.hidden_dim, rng=rng), nn.ReLU(),
            nn.Linear(self.hidden_dim, d, rng=rng),
        )
        params = (encoder.parameters() + to_mu.parameters()
                  + to_logvar.parameters() + decoder.parameters())
        optimizer = nn.Adam(params, lr=self.lr)

        for _ in range(self.epochs):
            for batch in nn.iterate_minibatches(len(Z), self.batch_size, rng):
                optimizer.zero_grad()
                x = nn.Tensor(Z[batch])
                hidden = encoder(x)
                mu = to_mu(hidden)
                logvar = to_logvar(hidden).clip(-8.0, 8.0)
                noise = nn.Tensor(rng.standard_normal(mu.shape))
                z = mu + (logvar * 0.5).exp() * noise  # reparameterisation
                reconstruction = decoder(z)
                recon_loss = nn.mse_loss(reconstruction, x)
                one = nn.Tensor(np.ones_like(mu.data))
                kl = -0.5 * (one + logvar - mu * mu - logvar.exp()).mean()
                loss = recon_loss + self.beta * kl
                loss.backward()
                optimizer.step()

        with nn.no_grad():
            if len(X_class) >= 4:
                z = rng.standard_normal((n, latent))
            else:
                # Tiny classes: posterior jitter is safer than the raw prior.
                hidden = encoder(nn.Tensor(Z))
                mu = to_mu(hidden).data
                z = mu[rng.integers(0, len(mu), size=n)] + 0.3 * rng.standard_normal((n, latent))
            decoded = decoder(nn.Tensor(z)).data
        return scaler.inverse(decoded).reshape((n,) + X_class.shape[1:])


register_augmenter("autoencoder", AutoencoderInterpolation)
register_augmenter("vae", VAESampler)
