"""Generative augmentation techniques: statistical, neural and probabilistic."""

from .autoencoder import AutoencoderInterpolation, VAESampler
from .diffusion import DiffusionSampler
from .flows import AffineCoupling, NormalizingFlowSampler
from .lstm_autoencoder import LSTMAutoencoder
from .wgan import WGAN
from .probabilistic import ARSampler, MarkovChainSampler
from .statistical import (
    GMMSampler,
    GRATISMixtureAR,
    GaussianPosteriorSampling,
    LGT,
    MaximumEntropyBootstrap,
    fit_gmm,
)
from .timegan import TimeGAN, TimeGANConfig

__all__ = [
    "GaussianPosteriorSampling",
    "GMMSampler",
    "fit_gmm",
    "LGT",
    "GRATISMixtureAR",
    "MaximumEntropyBootstrap",
    "ARSampler",
    "MarkovChainSampler",
    "AutoencoderInterpolation",
    "VAESampler",
    "DiffusionSampler",
    "NormalizingFlowSampler",
    "AffineCoupling",
    "LSTMAutoencoder",
    "WGAN",
    "TimeGAN",
    "TimeGANConfig",
]
