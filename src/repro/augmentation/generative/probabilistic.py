"""Probabilistic generative models (generative branch of the taxonomy).

The paper's taxonomy introduces probabilistic models that "describe time
series as transformations of underlying Markov processes":

* :class:`ARSampler` — autoregressive factorisation of Eq. (1)
  (WaveNet/DeepAR's premise) realised with a vector-autoregressive model
  fitted per class and simulated forward with bootstrapped innovations;
* :class:`MarkovChainSampler` — a discretised Markov chain over value bins,
  sampled forward and smoothed back to the continuous domain.

The denoising-diffusion model of Eq. (2) lives in
:mod:`repro.augmentation.generative.diffusion` (it needs the NN substrate).
"""

from __future__ import annotations

import numpy as np

from ..._rng import ensure_rng
from ..._validation import check_panel, check_positive
from ..base import Augmenter, register_augmenter

__all__ = ["ARSampler", "MarkovChainSampler"]


class ARSampler(Augmenter):
    """Vector-autoregressive class model: P(x) = prod_t P(x_t | x_{<t}).

    Fits VAR(p) on the class's series (pooled ridge-regularised least
    squares over all M channels jointly, capturing cross-channel
    dependencies) and simulates new series from bootstrapped innovation
    vectors — a direct, trainable instantiation of the autoregressive
    factorisation in Eq. (1) of the paper.
    """

    taxonomy = ("generative", "probabilistic", "autoregressive")
    name = "ar"

    def __init__(self, order: int = 2, ridge: float = 1e-3):
        check_positive(order, name="order")
        check_positive(ridge, name="ridge")
        self.order = int(order)
        self.ridge = float(ridge)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        k, m, t = X_class.shape
        p = max(1, min(self.order, t - 2))
        filled = np.nan_to_num(X_class, nan=0.0)

        # Build the pooled VAR regression: predict x_t from the p last steps.
        rows, targets = [], []
        for series in filled:
            for step in range(p, t):
                rows.append(series[:, step - p : step][:, ::-1].ravel())
                targets.append(series[:, step])
        design = np.column_stack([np.ones(len(rows)), np.asarray(rows)])
        Y = np.asarray(targets)
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        solution = np.linalg.solve(gram, design.T @ Y)  # (1 + m*p, m)
        residuals = Y - design @ solution

        out = np.empty((n, m, t))
        seed_idx = rng.integers(0, k, size=n)
        for i in range(n):
            series = np.empty((m, t))
            series[:, :p] = filled[seed_idx[i], :, :p]
            innovation_rows = rng.integers(0, len(residuals), size=t)
            for step in range(p, t):
                lag_vector = np.concatenate([[1.0], series[:, step - p : step][:, ::-1].ravel()])
                series[:, step] = lag_vector @ solution + residuals[innovation_rows[step]]
            out[i] = series
        # Guard against explosive fits on pathological classes.
        np.clip(out, -1e6, 1e6, out=out)
        return out


class MarkovChainSampler(Augmenter):
    """First-order Markov chain over discretised values, per channel.

    Values are quantile-binned into *n_bins* states; a transition matrix
    with Laplace smoothing is estimated per channel, sampled forward from
    an empirical initial state, and decoded by sampling uniformly inside
    the bin (then lightly smoothed to remove quantisation steps).
    """

    taxonomy = ("generative", "probabilistic", "autoregressive")
    name = "markov"

    def __init__(self, n_bins: int = 12, smoothing_window: int = 3):
        check_positive(n_bins, name="n_bins")
        check_positive(smoothing_window, name="smoothing_window")
        self.n_bins = int(n_bins)
        self.smoothing_window = int(smoothing_window)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        k, m, t = X_class.shape
        filled = np.nan_to_num(X_class, nan=0.0)
        out = np.empty((n, m, t))
        for channel in range(m):
            values = filled[:, channel, :]
            edges = np.quantile(values, np.linspace(0, 1, self.n_bins + 1))
            edges = np.unique(edges)
            bins = max(1, edges.size - 1)
            states = np.clip(np.searchsorted(edges, values, side="right") - 1, 0, bins - 1)
            transition = np.ones((bins, bins))  # Laplace smoothing
            for row in states:
                np.add.at(transition, (row[:-1], row[1:]), 1.0)
            transition /= transition.sum(axis=1, keepdims=True)
            initial = np.bincount(states[:, 0], minlength=bins).astype(float)
            initial /= initial.sum()
            cumulative = np.cumsum(transition, axis=1)
            for i in range(n):
                chain = np.empty(t, dtype=int)
                chain[0] = rng.choice(bins, p=initial)
                draws = rng.random(t)
                for step in range(1, t):
                    chain[step] = np.searchsorted(cumulative[chain[step - 1]], draws[step])
                lo = edges[chain]
                hi = edges[np.minimum(chain + 1, edges.size - 1)]
                decoded = lo + rng.random(t) * np.maximum(hi - lo, 0.0)
                out[i, channel] = self._smooth(decoded)
        return out

    def _smooth(self, series: np.ndarray) -> np.ndarray:
        window = min(self.smoothing_window, series.size)
        if window <= 1:
            return series
        kernel = np.ones(window) / window
        padded = np.concatenate([
            np.full(window // 2, series[0]), series, np.full(window - 1 - window // 2, series[-1])
        ])
        return np.convolve(padded, kernel, mode="valid")[: series.size]


register_augmenter("ar", ARSampler)
register_augmenter("markov", MarkovChainSampler)
