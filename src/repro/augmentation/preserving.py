"""Label- and structure-preserving techniques (preserving branch, Figs. 5-6).

The preserving branch is what distinguishes the paper's taxonomy from prior
surveys.  Implemented here:

* :class:`RangeTechnique` (label-preserving, Fig. 5) — noise whose amplitude
  is modulated so samples stay on the right side of the decision boundary,
  estimated from the nearest other-class distance (Kim & Jeong, 2021);
* :class:`SPO` — structure-preserving oversampling from a regularised class
  covariance (Cao et al., 2011);
* :class:`INOS` — interpolation + protective covariance samples
  (Cao et al., 2013);
* :class:`MDO` — Mahalanobis-distance-preserving oversampling
  (Abdi & Hashemi, 2016);
* :class:`OHIT` (Fig. 6) — SNN density clustering to capture minority-class
  modality, then per-cluster shrinkage-covariance sampling
  (Zhu, Lin & Liu, 2020).
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from .._validation import check_panel, check_positive, check_probability
from .base import Augmenter, register_augmenter
from .oversampling import SMOTE

__all__ = ["RangeTechnique", "SPO", "INOS", "MDO", "OHIT",
           "shrinkage_covariance", "snn_clusters"]


def _flatten(X: np.ndarray) -> np.ndarray:
    return np.nan_to_num(X, nan=0.0).reshape(len(X), -1)


def shrinkage_covariance(flat: np.ndarray, *, shrinkage: float | None = None
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Ledoit-Wolf-style shrunk covariance of row vectors.

    Returns ``(mean, covariance)`` with the covariance shrunk toward the
    scaled identity ``mu * I``; when *shrinkage* is ``None`` a simple
    dimension/sample-count heuristic picks the intensity (high-dimensional
    imbalanced classes — OHIT's setting — get strong shrinkage).
    """
    n, d = flat.shape
    mean = flat.mean(axis=0)
    centered = flat - mean
    cov = centered.T @ centered / max(n - 1, 1)
    mu = np.trace(cov) / d
    if shrinkage is None:
        shrinkage = min(0.9, d / (d + max(n, 1) * 2.0))
    cov = (1.0 - shrinkage) * cov + shrinkage * mu * np.eye(d)
    return mean, cov


def _sample_gaussian(mean: np.ndarray, cov: np.ndarray, n: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Draw from N(mean, cov) via eigendecomposition (PSD-safe)."""
    eigvals, eigvecs = np.linalg.eigh(cov)
    eigvals = np.maximum(eigvals, 0.0)
    z = rng.standard_normal((n, eigvals.size))
    return mean + (z * np.sqrt(eigvals)) @ eigvecs.T


def snn_clusters(flat: np.ndarray, *, k: int | None = None,
                 min_shared: int | None = None) -> list[np.ndarray]:
    """Shared-nearest-neighbour density clustering (Jarvis & Patrick, 1973).

    Two points are linked when each lists the other among its k nearest
    neighbours and they share at least *min_shared* of those neighbours;
    connected components of the link graph are the clusters.  This is the
    clustering OHIT uses to capture minority-class modality.
    """
    n = len(flat)
    if n == 1:
        return [np.array([0])]
    k = k or max(2, min(int(np.sqrt(n)) + 1, n - 1))
    min_shared = min_shared if min_shared is not None else max(1, k // 2)
    d2 = ((flat[:, None, :] - flat[None, :, :]) ** 2).sum(axis=2)
    np.fill_diagonal(d2, np.inf)
    neighbor_sets = [set(np.argsort(row)[:k].tolist()) for row in d2]

    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for i in range(n):
        for j in neighbor_sets[i]:
            if i < j and i in neighbor_sets[j]:
                if len(neighbor_sets[i] & neighbor_sets[j]) >= min_shared:
                    parent[find(i)] = find(j)

    groups: dict[int, list[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    clusters = [np.asarray(members) for members in groups.values()]

    # Merge singleton clusters into the nearest non-singleton cluster (by
    # centroid distance) — OHIT treats isolated points as members of the
    # closest mode rather than degenerate one-point Gaussians.
    large = [c for c in clusters if len(c) > 1]
    singletons = [c for c in clusters if len(c) == 1]
    if large and singletons:
        centroids = np.stack([flat[c].mean(axis=0) for c in large])
        merged = [list(c) for c in large]
        for singleton in singletons:
            gaps = ((centroids - flat[singleton[0]]) ** 2).sum(axis=1)
            merged[int(np.argmin(gaps))].append(int(singleton[0]))
        clusters = [np.asarray(sorted(members)) for members in merged]
    return clusters


class RangeTechnique(Augmenter):
    """Label-preserving noise: amplitude capped by the decision boundary.

    For each seed series, the safe radius is *safety* times half the
    distance to the nearest other-class series (the 1-NN margin).  Gaussian
    noise is scaled so its expected norm stays inside that radius, ensuring
    generated points do not cross the boundary the way unconstrained noise
    in Fig. 2 can.  Without majority context the amplitude falls back to
    half the nearest same-class distance (stay in the neighbourhood).
    """

    taxonomy = ("preserving", "label_preserving", "range")
    name = "range"

    def __init__(self, safety: float = 0.9):
        check_probability(safety, name="safety")
        self.safety = float(safety)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        flat = _flatten(X_class)
        if X_other is not None and len(X_other):
            other = _flatten(check_panel(X_other))
            d2 = ((flat[:, None, :] - other[None, :, :]) ** 2).sum(axis=2)
            margins = np.sqrt(d2.min(axis=1)) / 2.0
        elif len(X_class) > 1:
            d2 = ((flat[:, None, :] - flat[None, :, :]) ** 2).sum(axis=2)
            np.fill_diagonal(d2, np.inf)
            margins = np.sqrt(d2.min(axis=1)) / 2.0
        else:
            margins = np.full(len(X_class), np.nanstd(X_class))
        seeds = rng.integers(0, len(X_class), size=n)
        dim = flat.shape[1]
        noise = rng.standard_normal((n,) + X_class.shape[1:])
        # E||noise|| ~ sqrt(dim); scale so the expected norm is safety*margin.
        scales = self.safety * margins[seeds] / np.sqrt(dim)
        return X_class[seeds] + noise * scales[:, None, None]


class SPO(Augmenter):
    """Structure-preserving oversampling from the regularised covariance.

    Fits a shrinkage Gaussian to the class and samples it; the shrinkage
    regularisation plays the role of SPO's eigen-spectrum cleaning, keeping
    synthetic samples inside the class's principal subspace.
    """

    taxonomy = ("preserving", "structure_preserving", "spo")
    name = "spo"

    def __init__(self, shrinkage: float | None = None):
        self.shrinkage = shrinkage

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        flat = _flatten(X_class)
        mean, cov = shrinkage_covariance(flat, shrinkage=self.shrinkage)
        samples = _sample_gaussian(mean, cov, n, rng)
        return samples.reshape((n,) + X_class.shape[1:])


class INOS(Augmenter):
    """Integrated oversampling: interpolation + protective SPO samples.

    A fraction *interpolation_fraction* of the requested budget comes from
    SMOTE-style interpolation; the remainder are "protective" covariance
    samples a la SPO (Cao et al., 2013).
    """

    taxonomy = ("preserving", "structure_preserving", "inos")
    name = "inos"

    def __init__(self, interpolation_fraction: float = 0.7,
                 shrinkage: float | None = None, k_neighbors: int = 5):
        check_probability(interpolation_fraction, name="interpolation_fraction")
        self.interpolation_fraction = float(interpolation_fraction)
        self._smote = SMOTE(k_neighbors)
        self._spo = SPO(shrinkage)

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        n_interp = int(round(n * self.interpolation_fraction))
        parts = []
        if n_interp:
            parts.append(self._smote.generate(X_class, n_interp, rng=rng))
        if n - n_interp:
            parts.append(self._spo.generate(X_class, n - n_interp, rng=rng))
        return np.concatenate(parts, axis=0)


class MDO(Augmenter):
    """Mahalanobis-distance-preserving oversampling (Abdi & Hashemi, 2016).

    Each synthetic sample keeps the Mahalanobis distance of a random seed:
    the seed's coordinates in the class eigenbasis are re-randomised on the
    ellipsoid shell of the same squared distance.
    """

    taxonomy = ("preserving", "structure_preserving", "mdo")
    name = "mdo"

    def __init__(self, shrinkage: float | None = None):
        self.shrinkage = shrinkage

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        flat = _flatten(X_class)
        if len(flat) == 1:
            return np.repeat(X_class, n, axis=0)
        mean, cov = shrinkage_covariance(flat, shrinkage=self.shrinkage)
        eigvals, eigvecs = np.linalg.eigh(cov)
        eigvals = np.maximum(eigvals, 1e-12)
        seeds = flat[rng.integers(0, len(flat), size=n)]
        coords = (seeds - mean) @ eigvecs / np.sqrt(eigvals)  # whitened coords
        radii2 = (coords**2).sum(axis=1)
        # Random direction on the unit sphere, scaled to the seed's radius.
        direction = rng.standard_normal(coords.shape)
        direction /= np.linalg.norm(direction, axis=1, keepdims=True)
        new_coords = direction * np.sqrt(radii2)[:, None]
        samples = mean + (new_coords * np.sqrt(eigvals)) @ eigvecs.T
        return samples.reshape((n,) + X_class.shape[1:])


class OHIT(Augmenter):
    """Oversampling for high-dimensional imbalanced time series (Fig. 6).

    1. cluster the class with shared-nearest-neighbour density clustering
       (captures multi-modality);
    2. fit a shrinkage covariance per cluster (reliable in high dimension);
    3. allocate the budget across clusters proportionally to their size and
       sample each cluster's Gaussian.
    """

    taxonomy = ("preserving", "structure_preserving", "ohit")
    name = "ohit"

    def __init__(self, k: int | None = None, shrinkage: float | None = None):
        if k is not None:
            check_positive(k, name="k")
        self.k = k
        self.shrinkage = shrinkage

    def generate(self, X_class, n, *, rng=None, X_other=None):
        X_class = check_panel(X_class)
        rng = ensure_rng(rng)
        if n == 0:
            return np.empty((0,) + X_class.shape[1:])
        flat = _flatten(X_class)
        clusters = snn_clusters(flat, k=self.k)
        sizes = np.array([len(c) for c in clusters], dtype=float)
        allocation = np.floor(n * sizes / sizes.sum()).astype(int)
        allocation[: n - allocation.sum()] += 1  # distribute the remainder
        pieces = []
        for members, budget in zip(clusters, allocation):
            if budget == 0:
                continue
            member_rows = flat[members]
            if len(member_rows) == 1:
                pieces.append(np.repeat(member_rows, budget, axis=0))
                continue
            mean, cov = shrinkage_covariance(member_rows, shrinkage=self.shrinkage)
            pieces.append(_sample_gaussian(mean, cov, budget, rng))
        samples = np.concatenate(pieces, axis=0)
        return samples.reshape((n,) + X_class.shape[1:])


register_augmenter("range", RangeTechnique)
register_augmenter("spo", SPO)
register_augmenter("inos", INOS)
register_augmenter("mdo", MDO)
register_augmenter("ohit", OHIT)
