"""Time-domain augmentation techniques (basic branch of the taxonomy).

Implements the transformations Figure 1 lists under *Basic Techniques /
Time Domain*: noise injection (the paper's Eq. 6 protocol with levels
l in {1, 3, 5}), scaling, rotation, slicing, cropping, permutation, masking,
window warping, time warping, magnitude warping, drift and pooling.

All transforms are NaN-aware in the sense that NaN observations pass
through unchanged (arithmetic with NaN keeps NaN), so variable-length
datasets can be augmented before imputation.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive, check_probability
from .base import TransformAugmenter, register_augmenter

__all__ = [
    "NoiseInjection",
    "Scaling",
    "Rotation",
    "Slicing",
    "Cropping",
    "Permutation",
    "Masking",
    "WindowWarping",
    "TimeWarping",
    "MagnitudeWarping",
    "Drift",
    "Pooling",
]


class NoiseInjection(TransformAugmenter):
    """Eq. (6): add ``N(0, (l * std_j)^2)`` noise to each dimension *j*.

    *level* is the paper's std multiplicator ``l``; the std is measured per
    series and per channel so the perturbation is proportional to each
    dimension's native scale.  Note the paper's levels {1, 3, 5} are large —
    level 1 already injects noise at 100 % of the channel's std, which is
    why noise hurts fragile datasets (e.g. EigenWorms) in Table IV.
    """

    taxonomy = ("basic", "time_domain", "injecting_noise")

    def __init__(self, level: float = 1.0):
        check_positive(level, name="level")
        self.level = float(level)
        self.name = f"noise{level:g}"

    def transform(self, X, *, rng):
        std = np.nanstd(X, axis=2, keepdims=True)
        return X + rng.standard_normal(X.shape) * (self.level * std)


class Scaling(TransformAugmenter):
    """Multiply each channel by a random factor ``N(1, sigma^2)``."""

    taxonomy = ("basic", "time_domain", "scaling")
    name = "scaling"

    def __init__(self, sigma: float = 0.1):
        check_positive(sigma, name="sigma")
        self.sigma = float(sigma)

    def transform(self, X, *, rng):
        factors = rng.normal(1.0, self.sigma, size=(X.shape[0], X.shape[1], 1))
        return X * factors


class Rotation(TransformAugmenter):
    """Random channel rotation: mix channels through a random orthogonal map.

    For univariate input this degenerates to a random sign flip, the common
    univariate "rotation" augmentation.
    """

    taxonomy = ("basic", "time_domain", "rotation")
    name = "rotation"

    def transform(self, X, *, rng):
        n, m, _ = X.shape
        if m == 1:
            signs = rng.choice([-1.0, 1.0], size=(n, 1, 1))
            return X * signs
        out = np.empty_like(X)
        for i in range(n):
            q, r = np.linalg.qr(rng.standard_normal((m, m)))
            q *= np.sign(np.diag(r))
            out[i] = q @ X[i]
        return out


class Slicing(TransformAugmenter):
    """Crop a random window and stretch it back to the original length."""

    taxonomy = ("basic", "time_domain", "slicing")
    name = "slicing"

    def __init__(self, slice_fraction: float = 0.8):
        check_probability(slice_fraction, name="slice_fraction")
        if slice_fraction <= 0:
            raise ValueError("slice_fraction must be > 0")
        self.slice_fraction = float(slice_fraction)

    def transform(self, X, *, rng):
        n, m, t = X.shape
        window = max(2, int(round(t * self.slice_fraction)))
        out = np.empty_like(X)
        grid = np.linspace(0.0, window - 1.0, t)
        base = np.arange(window)
        for i in range(n):
            start = rng.integers(0, t - window + 1)
            segment = X[i, :, start : start + window]
            for channel in range(m):
                out[i, channel] = np.interp(grid, base, segment[channel])
        return out


class Cropping(TransformAugmenter):
    """Zero out everything outside a random window (cutout-style crop)."""

    taxonomy = ("basic", "time_domain", "masking")
    name = "cropping"

    def __init__(self, crop_fraction: float = 0.9):
        check_probability(crop_fraction, name="crop_fraction")
        if crop_fraction <= 0:
            raise ValueError("crop_fraction must be > 0")
        self.crop_fraction = float(crop_fraction)

    def transform(self, X, *, rng):
        n, _, t = X.shape
        window = max(1, int(round(t * self.crop_fraction)))
        out = np.zeros_like(X)
        for i in range(n):
            start = rng.integers(0, t - window + 1)
            out[i, :, start : start + window] = X[i, :, start : start + window]
        return out


class Permutation(TransformAugmenter):
    """Split the series into segments and permute their order."""

    taxonomy = ("basic", "time_domain", "permutation")
    name = "permutation"

    def __init__(self, n_segments: int = 4):
        if n_segments < 2:
            raise ValueError(f"n_segments must be >= 2; got {n_segments}")
        self.n_segments = int(n_segments)

    def transform(self, X, *, rng):
        n, _, t = X.shape
        segments = min(self.n_segments, t)
        bounds = np.linspace(0, t, segments + 1).astype(int)
        out = np.empty_like(X)
        for i in range(n):
            order = rng.permutation(segments)
            pieces = [X[i, :, bounds[j] : bounds[j + 1]] for j in order]
            out[i] = np.concatenate(pieces, axis=1)
        return out


class Masking(TransformAugmenter):
    """Zero-mask random time intervals (time-mask half of SpecAugment)."""

    taxonomy = ("basic", "time_domain", "masking")
    name = "masking"

    def __init__(self, mask_fraction: float = 0.1, n_masks: int = 1):
        check_probability(mask_fraction, name="mask_fraction")
        check_positive(n_masks, name="n_masks")
        self.mask_fraction = float(mask_fraction)
        self.n_masks = int(n_masks)

    def transform(self, X, *, rng):
        n, _, t = X.shape
        width = max(1, int(round(t * self.mask_fraction)))
        out = X.copy()
        for i in range(n):
            for _ in range(self.n_masks):
                start = rng.integers(0, max(1, t - width + 1))
                out[i, :, start : start + width] = 0.0
        return out


class WindowWarping(TransformAugmenter):
    """Speed a random window up or down by a warp factor, then re-fit length.

    Le Guennec et al. (2016): a window covering *window_fraction* of the
    series is locally stretched/compressed by *factor* (or 1/factor), and
    the whole series is resampled back to its original length.
    """

    taxonomy = ("basic", "time_domain", "warping")
    name = "window_warping"

    def __init__(self, window_fraction: float = 0.3, factor: float = 2.0):
        check_probability(window_fraction, name="window_fraction")
        check_positive(factor, name="factor")
        self.window_fraction = float(window_fraction)
        self.factor = float(factor)

    def transform(self, X, *, rng):
        n, m, t = X.shape
        window = max(2, int(round(t * self.window_fraction)))
        out = np.empty_like(X)
        for i in range(n):
            start = int(rng.integers(0, t - window + 1))
            factor = self.factor if rng.random() < 0.5 else 1.0 / self.factor
            warped_len = max(2, int(round(window * factor)))
            pieces = []
            for channel in range(m):
                head = X[i, channel, :start]
                body = np.interp(
                    np.linspace(0, window - 1, warped_len), np.arange(window),
                    X[i, channel, start : start + window],
                )
                tail = X[i, channel, start + window :]
                pieces.append(np.concatenate([head, body, tail]))
            stretched = np.stack(pieces)
            grid = np.linspace(0, stretched.shape[1] - 1, t)
            for channel in range(m):
                out[i, channel] = np.interp(grid, np.arange(stretched.shape[1]), stretched[channel])
        return out


class TimeWarping(TransformAugmenter):
    """Smoothly distort the time axis with a random warping curve.

    The warp is the cumulative integral of a positive random-walk speed
    curve built from *n_knots* spline knots with multiplier spread *sigma*.
    """

    taxonomy = ("basic", "time_domain", "warping")
    name = "time_warping"

    def __init__(self, n_knots: int = 4, sigma: float = 0.2):
        check_positive(n_knots, name="n_knots")
        check_positive(sigma, name="sigma")
        self.n_knots = int(n_knots)
        self.sigma = float(sigma)

    def transform(self, X, *, rng):
        n, m, t = X.shape
        out = np.empty_like(X)
        knot_positions = np.linspace(0, t - 1, self.n_knots + 2)
        base = np.arange(t)
        for i in range(n):
            speeds = np.exp(rng.normal(0.0, self.sigma, size=self.n_knots + 2))
            speed_curve = np.interp(base, knot_positions, speeds)
            warped = np.cumsum(speed_curve)
            warped = (warped - warped[0]) / (warped[-1] - warped[0]) * (t - 1)
            for channel in range(m):
                out[i, channel] = np.interp(base, warped, X[i, channel])
        return out


class MagnitudeWarping(TransformAugmenter):
    """Multiply by a smooth random curve ~ 1 (spline through N(1, sigma))."""

    taxonomy = ("basic", "time_domain", "warping")
    name = "magnitude_warping"

    def __init__(self, n_knots: int = 4, sigma: float = 0.2):
        check_positive(n_knots, name="n_knots")
        check_positive(sigma, name="sigma")
        self.n_knots = int(n_knots)
        self.sigma = float(sigma)

    def transform(self, X, *, rng):
        n, m, t = X.shape
        knot_positions = np.linspace(0, t - 1, self.n_knots + 2)
        base = np.arange(t)
        curves = np.empty((n, m, t))
        for i in range(n):
            for channel in range(m):
                knots = rng.normal(1.0, self.sigma, size=self.n_knots + 2)
                curves[i, channel] = np.interp(base, knot_positions, knots)
        return X * curves


class Drift(TransformAugmenter):
    """Add a slow random-walk drift (max absolute drift = *max_drift* std)."""

    taxonomy = ("basic", "time_domain", "injecting_noise")
    name = "drift"

    def __init__(self, max_drift: float = 0.5):
        check_positive(max_drift, name="max_drift")
        self.max_drift = float(max_drift)

    def transform(self, X, *, rng):
        n, m, t = X.shape
        steps = rng.standard_normal((n, m, t))
        walk = np.cumsum(steps, axis=2)
        peak = np.abs(walk).max(axis=2, keepdims=True)
        peak[peak == 0] = 1.0
        scale = np.nanstd(X, axis=2, keepdims=True) * self.max_drift
        return X + walk / peak * scale


class Pooling(TransformAugmenter):
    """Smooth by average-pooling then upsampling (resolution reduction)."""

    taxonomy = ("basic", "time_domain", "masking")
    name = "pooling"

    def __init__(self, pool_size: int = 3):
        if pool_size < 2:
            raise ValueError(f"pool_size must be >= 2; got {pool_size}")
        self.pool_size = int(pool_size)

    def transform(self, X, *, rng):
        n, m, t = X.shape
        pool = min(self.pool_size, t)
        n_bins = int(np.ceil(t / pool))
        padded_len = n_bins * pool
        padded = np.concatenate([X, X[:, :, -1:].repeat(padded_len - t, axis=2)], axis=2)
        pooled = padded.reshape(n, m, n_bins, pool).mean(axis=3)
        grid = np.linspace(0, n_bins - 1, t)
        out = np.empty_like(X)
        for i in range(n):
            for channel in range(m):
                out[i, channel] = np.interp(grid, np.arange(n_bins), pooled[i, channel])
        return out


# The paper's five experimental configurations include noise 1/3/5.
register_augmenter("noise1", lambda: NoiseInjection(1.0))
register_augmenter("noise3", lambda: NoiseInjection(3.0))
register_augmenter("noise5", lambda: NoiseInjection(5.0))
register_augmenter("scaling", Scaling)
register_augmenter("rotation", Rotation)
register_augmenter("slicing", Slicing)
register_augmenter("cropping", Cropping)
register_augmenter("permutation", Permutation)
register_augmenter("masking", Masking)
register_augmenter("window_warping", WindowWarping)
register_augmenter("time_warping", TimeWarping)
register_augmenter("magnitude_warping", MagnitudeWarping)
register_augmenter("drift", Drift)
register_augmenter("pooling", Pooling)
