"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalises
the three forms so that experiments are reproducible end to end while still
allowing callers to share one generator across components.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["ensure_rng", "spawn", "derive_seed", "resolve_master_seed", "SeedLike"]

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields a fresh non-deterministic generator, an ``int`` yields a
    deterministic one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *rng*.

    Used by multi-run experiment protocols so that each run is independent
    yet reproducible from a single master seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=n)]


def resolve_master_seed(seed: "int | np.random.Generator | None") -> int:
    """Collapse any seed form to one master integer.

    Integer seeds pass through unchanged so a grid keyed off ``seed=0`` is
    reproducible across sessions; generators and ``None`` contribute one
    draw, preserving their stream semantics.
    """
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        return int(seed)
    return int(ensure_rng(seed).integers(0, 2**63 - 1))


def derive_seed(master: int, *key: "int | str") -> int:
    """Deterministic 63-bit child seed for a (master, key-path) pair.

    The key path mixes integers and strings (hashed stably with CRC-32),
    so a job's seed depends only on its identity — e.g.
    ``derive_seed(0, "model", "Epilepsy", 2)`` — never on how many other
    jobs exist or in which order they run.  This is what lets the
    execution engine decompose a grid into independent jobs while staying
    bit-identical to the sequential path.
    """
    entropy = [int(master) & (2**63 - 1)]
    for part in key:
        if isinstance(part, str):
            entropy.append(zlib.crc32(part.encode("utf-8")))
        else:
            entropy.append(int(part) & (2**63 - 1))
    state = np.random.SeedSequence(entropy).generate_state(2, np.uint32)
    return (int(state[0]) << 31) ^ int(state[1])
