"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalises
the three forms so that experiments are reproducible end to end while still
allowing callers to share one generator across components.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn", "SeedLike"]

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields a fresh non-deterministic generator, an ``int`` yields a
    deterministic one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *rng*.

    Used by multi-run experiment protocols so that each run is independent
    yet reproducible from a single master seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=n)]
