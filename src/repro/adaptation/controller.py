"""The drift-triggered canary retraining loop.

The controller closes the loop the streaming stack opened: the drift
monitor can *flag* a concept shift, and the registry can *version*
models — this module connects the two so a confirmed shift heals itself:

1. **observe** — every resolved stream window (panel + result) lands in
   a :class:`~repro.adaptation.buffer.ReplayBuffer`, labelled with truth
   when the stream carries it, with the stable model's own prediction
   otherwise (self-training);
2. **collect** — a confirmed drift flag starts a collecting phase: the
   controller waits for ``collect_windows`` further windows, so the
   retrain set is *post-shift* data rather than the pre-shift mixture
   the buffer held at flag time (the flag lags the shift by only the
   monitor's confirmation period);
3. **retrain** — the freshest ``collect_windows`` windows are snapshot
   and the model family refits (off-thread by default, so the stream
   keeps scoring while the new model trains);
4. **canary** — the retrained model is published to the *same registry
   name* as the next version, tagged ``canary``, inheriting the stable
   record's serving metadata (preprocessing, dataset, technique);
5. **shadow** — subsequent live windows are scored against *both*
   versions: the stable label comes from the stream's own result, the
   canary label from a second submit through the shared micro-batcher
   (so shadow traffic obeys the same backpressure and shows up in the
   same ``/metrics``);
6. **decide** — after ``shadow_windows`` comparisons the canary is
   **promoted** (the ``stable`` tag moves to it) or **rolled back**.
   With ground truth in the stream the criterion is accuracy (the
   canary must be at least as accurate); without, mean top-1 confidence
   (the retrained model must be more sure of the post-shift data than
   the stale one); with neither — a model that serves no probabilities
   on an unlabelled stream — raw shadow agreement is the last resort.

Self-training caveat: with no truth labels the buffer learns the stable
model's *beliefs*, so a retrain recovers confidence on drifted inputs
(covariate shift) but cannot fix systematically wrong labels (real
concept flips need truth or human labels).  The decision criteria are
chosen to be honest about exactly that: an unlabelled promotion claims
"more confident", never "more accurate".

Every step is observable: ``/metrics`` gains retraining / promotion /
rollback counters, shadow window + agreement counters, and live canary
version/age gauges (see ``docs/operations.md``).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..classifiers import make_classifier
from ..observability import get_tracer
from ..serving.registry import model_metadata
from ..serving.server import (
    PROTOCOL_PREPROCESSING,
    ServingError,
    _jsonable,
    prepare_panel,
)
from ..streaming.session import decode_array, encode_array
from .buffer import ReplayBuffer

__all__ = ["AdaptationController", "AdaptationDecision", "family_trainer"]

#: registry family + default budget per published model kind — what the
#: default trainer rebuilds when no explicit trainer is given.  Budgets
#: are serving-scale (a drift response must fit in seconds, not hours).
_KIND_TO_FAMILY = {
    "RocketClassifier": ("rocket", {"num_kernels": 500}),
    "MiniRocketClassifier": ("minirocket", {"num_features": 500}),
    "InceptionTimeClassifier": ("inceptiontime", {
        "n_filters": 8, "depth": 3, "kernel_sizes": (9, 5, 3),
        "bottleneck": 8, "ensemble_size": 1, "max_epochs": 30,
        "patience": 10, "batch_size": 16,
    }),
}


def family_trainer(family: str, *, seed: int = 0, **overrides):
    """A trainer callable ``(X, y) -> fitted model`` for one registry family.

    Parameters
    ----------
    family:
        A :func:`repro.classifiers.available_classifiers` name.  The
        model must be serializable (``save_model``) to be publishable —
        in practice ``rocket``, ``minirocket`` or ``inceptiontime``.
    seed:
        Model seed; retrains are deterministic given the same buffer.
    overrides:
        Constructor keyword arguments (budgets etc.).

    Returns
    -------
    callable
        ``trainer(X, y)`` fitting a fresh instance per call.
    """

    def trainer(X: np.ndarray, y: np.ndarray):
        return make_classifier(family, seed=seed, **overrides).fit(X, y)

    return trainer


@dataclass(frozen=True)
class AdaptationDecision:
    """The outcome of one canary evaluation."""

    action: str  # "promote" | "rollback"
    canary_version: int
    stable_version: int
    criterion: str  # "accuracy" | "confidence" | "agreement"
    agreement: float  # fraction of shadow windows where the models agreed
    shadow_windows: int  # comparisons the decision is based on
    trigger_signal: str | None  # drift signal that started the retrain
    stable_accuracy: float | None = None  # None without truth labels
    canary_accuracy: float | None = None
    stable_confidence: float | None = None  # None without probabilities
    canary_confidence: float | None = None
    #: stream indices of the compared windows (tests recompute parity
    #: from these; oldest first)
    shadow_indices: tuple[int, ...] = ()

    def as_dict(self) -> dict:
        """JSON-ready form (the ``repro adapt`` decision line)."""
        out = {
            "kind": "decision", "action": self.action,
            "canary_version": self.canary_version,
            "stable_version": self.stable_version,
            "criterion": self.criterion,
            "agreement": round(self.agreement, 4),
            "shadow_windows": self.shadow_windows,
        }
        if self.trigger_signal is not None:
            out["trigger_signal"] = self.trigger_signal
        for key in ("stable_accuracy", "canary_accuracy",
                    "stable_confidence", "canary_confidence"):
            value = getattr(self, key)
            if value is not None:
                out[key] = round(value, 4)
        return out


class _ShadowTally:
    """Running comparison of canary vs stable over live windows."""

    def __init__(self):
        self.windows = 0
        self.agreements = 0
        self.truths = 0
        self.stable_correct = 0
        self.canary_correct = 0
        self.stable_confidence_sum = 0.0
        self.canary_confidence_sum = 0.0
        self.confidences = 0
        self.indices: list[int] = []


class AdaptationController:
    """Watch a scored stream, retrain on confirmed drift, canary the result.

    Hook an instance into a :class:`~repro.streaming.StreamScorer` via
    its ``adapter`` argument; everything else is automatic.  The
    controller talks to the *same*
    :class:`~repro.serving.PredictionService` the scorer uses, so canary
    shadow traffic shares batching, backpressure and metrics with live
    traffic.

    Parameters
    ----------
    service:
        The prediction service scoring the stream.
    name:
        Registry model name this controller adapts.
    version:
        The stable version/tag the stream scores against (``None`` =
        latest at construction) — the baseline canaries are judged
        against, and the record whose metadata retrains inherit.
    trainer:
        ``(X, y) -> fitted model``; default rebuilds the stable record's
        model family at serving-scale budget (:func:`family_trainer`).
    registry:
        Defaults to ``service.registry``.
    buffer_capacity:
        Replay-buffer size; must be ≥ ``collect_windows``.
    collect_windows:
        Windows gathered *after* the trigger flag before retraining —
        the canary's training set, guaranteed post-flag (hence
        post-shift, up to the monitor's confirmation lag).
    shadow_windows:
        Live-window comparisons a canary must survive before the
        promote/rollback decision.
    shadow_batch:
        Shadow submits are themselves micro-batched: panels accumulate
        until this many are waiting and go to the canary in one
        ``submit_many`` — one coalesced predict per batch instead of
        one per window, which is what keeps the shadow phase's
        per-window overhead low.  Comparisons lag live scoring by at
        most this many windows.
    agreement_threshold:
        Promotion bar for the last-resort agreement criterion (no
        truth, no probabilities).
    cooldown_windows:
        Observed windows after a decision (or a failed retrain) during
        which new drift flags are ignored — the monitor's EWMAs need
        time to re-baseline, and decision storms help nobody.
    canary_tag / promote_tag:
        Registry tag names (``canary`` / ``stable``).
    background:
        Retrain off-thread (production) or inline (deterministic tests,
        benchmarks).  Off-thread, :meth:`wait` joins the retrain.
    queue_timeout:
        Bounded-blocking budget for shadow submits, like the scorer's.
    journal:
        Optional :class:`~repro.observability.AuditJournal`.  Every
        consequential step — retrain (with the trained-on window indices
        and model digests), skipped/failed retrains, each shadow
        verdict, and the final promotion or rollback (carrying the full
        :class:`AdaptationDecision` evidence verbatim) — is logged as
        one schema-validated event, so any decision this controller
        makes is reconstructable offline from the journal alone.
    """

    def __init__(self, service, name: str, *, version=None, trainer=None,
                 registry=None, buffer_capacity: int = 256,
                 collect_windows: int = 48, shadow_windows: int = 24,
                 shadow_batch: int = 8, agreement_threshold: float = 0.8,
                 cooldown_windows: int = 50,
                 canary_tag: str = "canary", promote_tag: str = "stable",
                 background: bool = True, queue_timeout: float = 5.0,
                 journal=None):
        if collect_windows < 2:
            raise ValueError(
                f"collect_windows must be >= 2; got {collect_windows}")
        if shadow_batch < 1:
            raise ValueError(f"shadow_batch must be >= 1; got {shadow_batch}")
        if buffer_capacity < collect_windows:
            raise ValueError(
                f"buffer_capacity ({buffer_capacity}) must cover "
                f"collect_windows ({collect_windows})")
        if shadow_windows < 1:
            raise ValueError(
                f"shadow_windows must be >= 1; got {shadow_windows}")
        if not 0.0 < agreement_threshold <= 1.0:
            raise ValueError(
                f"agreement_threshold must be in (0, 1]; "
                f"got {agreement_threshold}")
        if cooldown_windows < 0:
            raise ValueError(
                f"cooldown_windows must be >= 0; got {cooldown_windows}")
        self.service = service
        self.registry = registry if registry is not None else service.registry
        self.name = name
        self.stable = self.registry.record(name, version)
        self.trainer = trainer
        self.buffer = ReplayBuffer(buffer_capacity)
        self.collect_windows = int(collect_windows)
        self.shadow_windows = int(shadow_windows)
        self.shadow_batch = int(shadow_batch)
        self.agreement_threshold = float(agreement_threshold)
        self.cooldown_windows = int(cooldown_windows)
        self.canary_tag = str(canary_tag)
        self.promote_tag = str(promote_tag)
        self.background = bool(background)
        self.queue_timeout = float(queue_timeout)
        self.journal = journal
        self.tracer = getattr(service, "tracer", None) or get_tracer()
        self.stats = service.adaptation_stats(name)
        #: every promote/rollback, oldest first
        self.decisions: list[AdaptationDecision] = []
        #: retrain/collection failures (stringified), for observability
        self.errors: list[str] = []
        self._state = "idle"  # idle | collecting | retraining | shadowing
        self._cooldown = 0
        self._collected = 0
        self._trigger_signal: str | None = None
        self._canary = None  # ModelRecord once published
        self._canary_proba = False
        self._tally: _ShadowTally | None = None
        self._pending: deque = deque()  # (future, stable WindowResult)
        self._backlog: list = []  # (panel, result) awaiting one submit_many
        self._dropped_shadows = 0
        self._thread: threading.Thread | None = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #

    @property
    def state(self) -> str:
        """``"idle"``, ``"collecting"``, ``"retraining"`` or
        ``"shadowing"``."""
        with self._lock:
            return self._state

    def observe(self, panel: np.ndarray, result) -> None:
        """Feed one resolved stream window (the scorer's adapter hook).

        *panel* is the ``(channels, window)`` input; *result* the
        :class:`~repro.streaming.WindowResult` the stable model produced
        for it.  Buffers the window, advances whichever phase the loop
        is in, and triggers a retrain on a confirmed drift flag.  Never
        raises on shadow-path serving errors (a dropped shadow window is
        counted, not fatal — the *stream* must survive the adaptation
        machinery, not vice versa).
        """
        label = result.truth if result.truth is not None else result.label
        self.buffer.add(panel, label, index=getattr(result, "index", None))
        with self._lock:
            if self._cooldown > 0:
                self._cooldown -= 1
            state = self._state
        if state == "shadowing":
            self.stats.canary_age.inc()
            self._shadow(panel, result)
            self._maybe_decide()
            return
        if state == "collecting":
            self._collect()
            return
        if state != "idle":
            return  # retraining: keep buffering, ignore further flags
        drift = result.drift
        if drift is None or not drift.shift:
            return
        with self._lock:
            if self._cooldown > 0 or self._state != "idle":
                return
            # The flag confirms the shift; the buffer, however, is still
            # dominated by pre-shift windows (the flag lags the shift by
            # the monitor's confirmation period).  Collect a post-flag
            # training set before retraining.
            self._state = "collecting"
            self._collected = 0
            self._trigger_signal = drift.signal

    def deliver_label(self, index: int, truth) -> bool:
        """Deliver a late-arriving ground-truth label for window *index*.

        Labelling pipelines lag streams: a window is scored (and
        buffered with the model's own prediction) long before a human
        or downstream system confirms its truth.  This hook upgrades the
        buffered copy in place, so a retrain that fires after the
        labels land trains on truth instead of on self-training guesses
        — which is what makes unlabelled-stream adaptation sound under
        a real concept flip, not just covariate shift.  Returns ``False``
        when the window has already been evicted from the replay buffer
        (the label arrived too late to matter).
        """
        return self.buffer.relabel(int(index), truth)

    def wait(self, timeout: float | None = None) -> bool:
        """Join an in-flight background retrain; ``True`` when none is
        running (anymore)."""
        with self._lock:
            thread = self._thread
        if thread is None or not thread.is_alive():
            return True
        thread.join(timeout)
        return not thread.is_alive()

    # ------------------------------------------------------------------ #
    # durable sessions: codec snapshot / restore, live rebase
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """JSON-able adaptation state for the session codec.

        Serialises the replay buffer (panels as codec arrays, labels,
        stream indices) and the loop phase.  The two phases that hold
        host-local state — a ``retraining`` thread mid-fit, a
        ``shadowing`` canary with futures in flight — cannot move
        hosts; they are downgraded to ``idle`` with a full cooldown, so
        a resumed stream abandons the interrupted canary and waits for
        the next confirmed flag instead of double-publishing.
        ``collecting`` survives verbatim: it is nothing but a counter.
        """
        with self._lock:
            state = self._state
            collected = self._collected
            cooldown = self._cooldown
            trigger = self._trigger_signal
        if state not in ("idle", "collecting"):
            state, collected, trigger = "idle", 0, None
            cooldown = self.cooldown_windows
        return {
            "state": state, "collected": int(collected),
            "cooldown": int(cooldown), "trigger_signal": trigger,
            "stable_version": self.stable.version,
            "buffer": [
                {"panel": encode_array(panel), "label": int(label),
                 "index": None if index is None else int(index)}
                for panel, label, index in self.buffer.entries()
            ],
        }

    def restore(self, state: dict) -> None:
        """Adopt a :meth:`snapshot` — buffer contents and loop phase.

        Meant for a freshly built controller resuming a durable
        session; any in-progress local phase is discarded.
        """
        self.buffer.restore([
            (decode_array(entry["panel"]), entry["label"], entry["index"])
            for entry in state.get("buffer", ())
        ])
        with self._lock:
            phase = str(state.get("state", "idle"))
            self._state = phase if phase in ("idle", "collecting") else "idle"
            self._collected = int(state.get("collected", 0))
            self._cooldown = int(state.get("cooldown", 0))
            trigger = state.get("trigger_signal")
            self._trigger_signal = None if trigger is None else str(trigger)

    def rebase(self, version=None) -> None:
        """Re-point the stable baseline at *version* without rebuilding.

        The in-place counterpart of constructing a fresh controller
        after a promotion: the scorer swaps to the promoted version via
        ``swap_version`` and the controller rebases onto the same
        record, so future canaries are judged against (and inherit
        metadata from) the model actually serving the stream.  The
        replay buffer and cooldown are left as the decision set them —
        ``_decide`` already cleared the buffer on promote.
        """
        with self._lock:
            self.stable = self.registry.record(self.name, version)

    # ------------------------------------------------------------------ #
    # collect -> retrain -> publish canary
    # ------------------------------------------------------------------ #

    def _collect(self) -> None:
        """Count post-flag windows; kick off the retrain at quorum."""
        with self._lock:
            self._collected += 1
            if self._collected < self.collect_windows:
                return
            counts = self.buffer.label_counts(last=self.collect_windows)
            if len(counts) < 2:
                # A one-class training set cannot be fitted; stand down
                # and let a later flag (with a more diverse buffer) retry.
                reason = (
                    f"collected {self.collect_windows} windows with a "
                    f"single label {next(iter(counts))}; retrain skipped"
                )
                self.errors.append(reason)
                self._state = "idle"
                self._cooldown = self.cooldown_windows
                if self.journal is not None:
                    self.journal.log(
                        "retrain_skipped", model=self.name, reason=reason,
                        trigger_signal=self._trigger_signal,
                        evidence={"label_counts": {str(k): int(v)
                                                   for k, v in counts.items()}},
                    )
                return
            self._state = "retraining"
        self.stats.retrainings.inc()
        X, y = self.buffer.snapshot(last=self.collect_windows)
        indices = self.buffer.indices(last=self.collect_windows)
        if self.background:
            self._thread = threading.Thread(
                target=self._retrain, args=(X, y, indices), daemon=True,
                name=f"adapt-{self.name}")
            self._thread.start()
        else:
            self._retrain(X, y, indices)

    def _retrain(self, X: np.ndarray, y: np.ndarray,
                 indices: list | None = None) -> None:
        """Fit on the replay snapshot and publish the canary (worker side)."""
        try:
            with self.tracer.span("adapt.retrain", model=self.name,
                                  windows=int(len(y))):
                preprocessed = self.stable.metadata.get("preprocessing") \
                    == PROTOCOL_PREPROCESSING
                X_fit = prepare_panel(X) if preprocessed else X
                trainer = self.trainer if self.trainer is not None \
                    else self._default_trainer()
                model = trainer(X_fit, y)
                metadata = model_metadata(
                    model,
                    input_shape=list(X.shape[1:]),
                    adapted_from=self.stable.version,
                    trained_on_windows=int(len(y)),
                    trigger_signal=self._trigger_signal,
                    **{key: self.stable.metadata[key]
                       for key in ("dataset", "technique", "preprocessing",
                                   "compute_policy")
                       if key in self.stable.metadata},
                )
                record = self.registry.publish(model, self.name,
                                               metadata=metadata,
                                               tags=(self.canary_tag,))
            canary_proba = bool(self.service.serves_proba(self.name,
                                                          record.version))
        except Exception as error:  # noqa: BLE001 - the stream must survive
            self.errors.append(f"{type(error).__name__}: {error}")
            with self._lock:
                self._state = "idle"
                self._cooldown = self.cooldown_windows
            if self.journal is not None:
                self.journal.log(
                    "retrain_failed", model=self.name,
                    error=f"{type(error).__name__}: {error}",
                    trigger_signal=self._trigger_signal,
                )
            return
        if self.journal is not None:
            self.journal.log(
                "retrain", model=self.name,
                stable_version=self.stable.version,
                canary_version=record.version,
                stable_digest=self.stable.digest,
                canary_digest=record.digest,
                trigger_signal=self._trigger_signal,
                trained_on_windows=[None if i is None else int(i)
                                    for i in (indices or [])],
            )
        with self._lock:
            self._canary = record
            self._canary_proba = canary_proba
            self._tally = _ShadowTally()
            self._pending.clear()
            self._backlog.clear()
            self._dropped_shadows = 0
            self._state = "shadowing"
        self.stats.canary_version.set(record.version)
        self.stats.canary_age.set(0)

    def _default_trainer(self):
        """Rebuild the stable record's family at serving-scale budget."""
        kind = self.stable.metadata.get("model_kind")
        try:
            family, budget = _KIND_TO_FAMILY[kind]
        except KeyError:
            raise RuntimeError(
                f"no default trainer for model kind {kind!r}; pass an "
                f"explicit trainer to AdaptationController"
            ) from None
        seed = int(self.stable.metadata.get("seed") or 0)
        return family_trainer(family, seed=seed, **budget)

    # ------------------------------------------------------------------ #
    # shadow scoring -> decision
    # ------------------------------------------------------------------ #

    def _shadow(self, panel: np.ndarray, result) -> None:
        """Queue *panel* for canary comparison against the stable result.

        Panels accumulate into a shadow micro-batch (``shadow_batch``)
        and go to the canary in one coalesced ``submit_many`` — one
        predict call per batch keeps the per-window overhead low.
        """
        flush = False
        with self._lock:
            if self._canary is None or self._tally is None:
                return
            if self._tally.windows + len(self._pending) \
                    + len(self._backlog) >= self.shadow_windows:
                return  # the decision quorum is already in flight
            self._backlog.append((panel, result))
            flush = len(self._backlog) >= self.shadow_batch
        if flush:
            self._flush_backlog()
        self._drain(block=False)

    def _flush_backlog(self) -> None:
        """Submit every backlogged panel to the canary in one call."""
        with self._lock:
            backlog, self._backlog = self._backlog, []
            canary = self._canary
        if not backlog or canary is None:
            return
        try:
            _, futures = self.service.submit(
                self.name, [panel for panel, _ in backlog], canary.version,
                queue_timeout=self.queue_timeout,
                return_proba=self._canary_proba,
            )
        except ServingError:
            with self._lock:
                self._dropped_shadows += len(backlog)
            return
        with self._lock:
            self._pending.extend(
                (future, result)
                for future, (_, result) in zip(futures, backlog))

    def _drain(self, block: bool) -> None:
        """Fold resolved canary futures into the tally."""
        timeout = getattr(self.service, "predict_timeout", 30.0)
        while True:
            with self._lock:
                if not self._pending:
                    return
                future, stable_result = self._pending[0]
                if not (block or future.done()):
                    return
                self._pending.popleft()
            try:
                outcome = future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - dropped, not fatal
                with self._lock:
                    self._dropped_shadows += 1
                continue
            if self._canary_proba:
                canary_label = outcome.label
                canary_confidence = float(np.asarray(outcome.proba).max())
            else:
                canary_label, canary_confidence = outcome, None
            agreed = canary_label == stable_result.label
            self.stats.record_shadow(agreed=agreed)
            if self.journal is not None:
                self.journal.log(
                    "shadow_verdict", model=self.name,
                    window=int(stable_result.index),
                    stable_label=_jsonable(stable_result.label),
                    canary_label=_jsonable(canary_label),
                    agree=bool(agreed),
                    stable_confidence=stable_result.confidence,
                    canary_confidence=canary_confidence,
                )
            with self._lock:
                tally = self._tally
                if tally is None:
                    return
                tally.windows += 1
                tally.agreements += int(agreed)
                tally.indices.append(stable_result.index)
                if stable_result.truth is not None:
                    tally.truths += 1
                    tally.stable_correct += \
                        int(stable_result.label == stable_result.truth)
                    tally.canary_correct += \
                        int(canary_label == stable_result.truth)
                if canary_confidence is not None \
                        and stable_result.confidence is not None:
                    tally.confidences += 1
                    tally.canary_confidence_sum += canary_confidence
                    tally.stable_confidence_sum += stable_result.confidence

    def _maybe_decide(self) -> None:
        """Finish the shadow phase once the comparison quorum is in."""
        with self._lock:
            tally = self._tally
            if tally is None:
                return
            outstanding = len(self._pending) + len(self._backlog)
        if tally.windows + outstanding < self.shadow_windows:
            return
        self._flush_backlog()  # the quorum is queued; get it all in flight
        self._drain(block=True)
        with self._lock:
            tally = self._tally
            if tally is None or tally.windows < self.shadow_windows:
                return  # drops shrank the quorum; keep shadowing
            self._tally = None  # claim the decision
        self._decide(tally)

    def _decide(self, tally: _ShadowTally) -> None:
        """Promote or roll back the canary from a complete tally."""
        agreement = tally.agreements / tally.windows
        stable_acc = canary_acc = stable_conf = canary_conf = None
        if tally.truths:
            stable_acc = tally.stable_correct / tally.truths
            canary_acc = tally.canary_correct / tally.truths
        if tally.confidences:
            stable_conf = tally.stable_confidence_sum / tally.confidences
            canary_conf = tally.canary_confidence_sum / tally.confidences
        if tally.truths >= max(1, self.shadow_windows // 2):
            promote = canary_acc >= stable_acc
            criterion = "accuracy"
        elif tally.confidences > 0:
            promote = canary_conf > stable_conf
            criterion = "confidence"
        else:
            promote = agreement >= self.agreement_threshold
            criterion = "agreement"
        decision = AdaptationDecision(
            action="promote" if promote else "rollback",
            canary_version=self._canary.version,
            stable_version=self.stable.version,
            criterion=criterion, agreement=agreement,
            shadow_windows=tally.windows,
            trigger_signal=self._trigger_signal,
            stable_accuracy=stable_acc, canary_accuracy=canary_acc,
            stable_confidence=stable_conf, canary_confidence=canary_conf,
            shadow_indices=tuple(tally.indices),
        )
        if promote:
            self.registry.tag(self.name, self._canary.version,
                              self.promote_tag)
            self.stats.promotions.inc()
            # The stable concept changed: pre-promotion windows are stale
            # training data for any future retrain.
            self.buffer.clear()
        else:
            self.stats.rollbacks.inc()
        if self.journal is not None:
            self.journal.log(
                "promotion" if promote else "rollback", model=self.name,
                stable_version=self.stable.version,
                canary_version=self._canary.version,
                stable_digest=self.stable.digest,
                canary_digest=self._canary.digest,
                decision=decision.as_dict(),
                evidence={
                    "shadow_windows": tally.windows,
                    "agreements": tally.agreements,
                    "truths": tally.truths,
                    "confidences": tally.confidences,
                    "dropped_shadows": self._dropped_shadows,
                    "shadow_indices": [int(i) for i in tally.indices],
                },
            )
        self.stats.canary_version.set(0)
        self.stats.canary_age.set(0)
        with self._lock:
            self.decisions.append(decision)
            self._canary = None
            self._state = "idle"
            self._cooldown = self.cooldown_windows
