"""Replay buffer: the recent windows a drift-triggered retrain learns from.

A bounded FIFO of ``(window panel, label)`` pairs, fed by the adaptation
controller with every resolved stream window.  When drift is confirmed
the controller keeps feeding it through a *collecting* phase and then
trains on the freshest ``n`` windows — all observed after the flag, so
the canary learns the new concept, not a pre-shift mixture.

Labels are whatever the stream provided: ground truth when it rides
along, the stable model's own predictions otherwise (self-training — see
:class:`~repro.adaptation.AdaptationController` for when that is and is
not sound).  When truth arrives *late* — labelling pipelines lag the
stream in every real deployment — :meth:`ReplayBuffer.relabel` upgrades
a buffered window's label in place by its stream index, so a retrain
that fires after the labels land trains on truth rather than on the
stale model's guesses.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

__all__ = ["ReplayBuffer"]


class ReplayBuffer:
    """Bounded FIFO of labelled stream windows, snapshot-able as a panel.

    Parameters
    ----------
    capacity:
        Windows retained; the oldest is evicted when a new one arrives
        at capacity.  Must cover at least one retrain's training set
        (the controller's ``collect_windows``).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}")
        self.capacity = int(capacity)
        #: (panel, label, stream window index or None)
        self._entries: deque[tuple[np.ndarray, int, int | None]] = deque(
            maxlen=self.capacity)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        """Windows currently held (≤ ``capacity``)."""
        with self._lock:
            return len(self._entries)

    def add(self, panel: np.ndarray, label, index: int | None = None) -> None:
        """Append one ``(channels, length)`` panel with its label.

        At capacity the oldest window falls off — the buffer always
        holds the freshest ``capacity`` windows of the stream.  *index*
        is the window's position in the stream (the scorer's
        ``WindowResult.index``); recording it is what makes the window
        addressable by :meth:`relabel` when its truth arrives late.
        Raises ``ValueError`` for a non-2-D panel.
        """
        panel = np.asarray(panel, dtype=np.float64)
        if panel.ndim != 2:
            raise ValueError(
                f"a buffered window is one (channels, length) panel; "
                f"got ndim={panel.ndim}"
            )
        with self._lock:
            self._entries.append(
                (panel, int(label), None if index is None else int(index)))

    def relabel(self, index: int, label) -> bool:
        """Replace the label of the buffered window with stream *index*.

        The late-label hook: when ground truth for an already-scored
        window arrives after the fact, the buffered copy is upgraded in
        place so subsequent retrain snapshots train on truth.  Returns
        ``False`` when the window has already been evicted (or was
        buffered without an index) — late labels for long-gone windows
        are simply dropped.
        """
        with self._lock:
            # Late labels chase recent windows; search newest-first.
            for position in range(len(self._entries) - 1, -1, -1):
                panel, _, entry_index = self._entries[position]
                if entry_index == int(index):
                    self._entries[position] = (panel, int(label), entry_index)
                    return True
        return False

    def label_counts(self, *, last: int | None = None) -> dict[int, int]:
        """Windows held per label, optionally over only the freshest
        *last* — retrain preconditions (≥ 2 classes) read this."""
        with self._lock:
            entries = list(self._entries)
        if last is not None:
            entries = entries[-last:]
        counts: dict[int, int] = {}
        for _, label, _ in entries:
            counts[label] = counts.get(label, 0) + 1
        return counts

    def indices(self, *, last: int | None = None) -> list[int | None]:
        """Stream window indices of the held entries, oldest first.

        Mirrors :meth:`snapshot`'s selection (*last* keeps the freshest
        that many), so the controller can record exactly which stream
        windows a retrain trained on in its audit-journal event.
        Entries buffered without an index appear as ``None``.
        """
        with self._lock:
            entries = list(self._entries)
        if last is not None:
            entries = entries[-last:]
        return [entry_index for _, _, entry_index in entries]

    def snapshot(self, *, last: int | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        """A stacked copy ``(X (n, channels, length), y (n,))``, oldest
        first; *last* keeps only the freshest that many windows.

        The copy is what the retrain thread consumes, so the stream can
        keep appending while training runs.  Raises ``ValueError`` when
        empty.
        """
        with self._lock:
            entries = list(self._entries)
        if last is not None:
            entries = entries[-last:]
        if not entries:
            raise ValueError("cannot snapshot an empty replay buffer")
        X = np.stack([panel for panel, _, _ in entries])
        y = np.asarray([label for _, label, _ in entries], dtype=np.int64)
        return X, y

    def entries(self, *, last: int | None = None
                ) -> list[tuple[np.ndarray, int, int | None]]:
        """A copied list of ``(panel, label, index)`` entries, oldest
        first; *last* keeps only the freshest that many.

        This is the durable-session escape hatch: the controller's
        codec snapshot serialises exactly these tuples, and
        :meth:`restore` reloads them on the resuming host.  The panels
        are the buffer's own references (callers must not mutate them).
        """
        with self._lock:
            entries = list(self._entries)
        if last is not None:
            entries = entries[-last:]
        return entries

    def restore(self, entries) -> None:
        """Replace the held windows with *entries* (``(panel, label,
        index)`` tuples, oldest first) — the inverse of :meth:`entries`.

        Entries beyond ``capacity`` are dropped oldest-first, matching
        what :meth:`add` would have kept had they arrived live.
        """
        with self._lock:
            self._entries.clear()
            for panel, label, index in entries:
                panel = np.asarray(panel, dtype=np.float64)
                if panel.ndim != 2:
                    raise ValueError(
                        f"a buffered window is one (channels, length) "
                        f"panel; got ndim={panel.ndim}")
                self._entries.append(
                    (panel, int(label),
                     None if index is None else int(index)))

    def clear(self) -> None:
        """Drop every buffered window (used after a promotion: the stable
        concept changed, so pre-promotion windows are stale)."""
        with self._lock:
            self._entries.clear()
