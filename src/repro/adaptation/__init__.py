"""Online adaptation: turn drift flags into retrained, canaried models.

The serving stack answers requests, the streaming stack scores windows
and flags concept shifts; this package closes the loop:

* :mod:`repro.adaptation.buffer` — a bounded :class:`ReplayBuffer` of
  recent labelled windows, the training set a drift response learns
  from;
* :mod:`repro.adaptation.controller` — the
  :class:`AdaptationController`: on a confirmed drift flag it retrains
  the model family off-thread, publishes the result to the versioned
  registry under a ``canary`` tag, shadow-scores the canary on live
  windows alongside the stable version, and promotes (moves the
  ``stable`` tag) or rolls back on a shadow-agreement/accuracy
  criterion.

Hook a controller into a :class:`~repro.streaming.StreamScorer` via its
``adapter`` argument; drive the whole loop from the terminal with
``repro adapt``.  Every transition is observable through ``/metrics``
(see ``docs/operations.md``) and the ``decisions`` list.
"""

from .buffer import ReplayBuffer
from .controller import AdaptationController, AdaptationDecision, family_trainer

__all__ = [
    "AdaptationController",
    "AdaptationDecision",
    "ReplayBuffer",
    "family_trainer",
]
