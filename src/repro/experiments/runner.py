"""Grid runner regenerating Tables IV and V.

A :class:`GridResult` holds one accuracy table: rows are datasets, columns
are baseline + techniques, mirroring the layout of the paper's Tables IV-V.
:func:`run_grid` plans the grid as independent jobs and hands them to the
execution engine (:mod:`repro.experiments.engine`), which adds worker
parallelism (``jobs=N``), per-worker artefact caching, and JSON
checkpointing with resume.  ``jobs=1`` runs the identical job list
in-process, so parallel and sequential grids agree cell for cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from os import PathLike

import numpy as np

from .._rng import resolve_master_seed
from ..augmentation import PAPER_TECHNIQUES
from ..augmentation.base import Augmenter
from ..data.archive import list_datasets
from .engine import BASELINE, execute_jobs, plan_grid
from .metrics import best_relative_gain_percent
from .protocol import EvaluationResult, ModelSpec

__all__ = ["GridResult", "run_grid"]


@dataclass
class GridResult:
    """Accuracy grid for one model over datasets x (baseline + techniques)."""

    model: str
    techniques: tuple[str, ...]
    cells: dict[tuple[str, str], EvaluationResult] = field(default_factory=dict)

    # ------------------------------------------------------------------ #

    def datasets(self) -> list[str]:
        """Datasets present, in insertion (Table III) order."""
        seen: list[str] = []
        for dataset, _ in self.cells:
            if dataset not in seen:
                seen.append(dataset)
        return seen

    def accuracy(self, dataset: str, technique: str) -> float:
        """Mean accuracy (in %) for one cell."""
        return 100.0 * self.cells[(dataset, technique)].mean_accuracy

    def baseline_accuracy(self, dataset: str) -> float:
        return self.accuracy(dataset, "baseline")

    def augmented_accuracies(self, dataset: str) -> dict[str, float]:
        return {t: self.accuracy(dataset, t) for t in self.techniques}

    def improvement_percent(self, dataset: str) -> float:
        """The per-dataset "Improvement (%)" column (best technique, Eq. 3)."""
        return best_relative_gain_percent(
            self.baseline_accuracy(dataset), self.augmented_accuracies(dataset)
        )

    def average_improvement(self) -> float:
        """Mean of the improvement column — 1.55 % / 0.56 % in the paper."""
        return float(np.mean([self.improvement_percent(d) for d in self.datasets()]))

    def improved_dataset_count(self) -> int:
        """Datasets where some augmentation beats the baseline (10/13 in the paper)."""
        return sum(1 for d in self.datasets() if self.improvement_percent(d) > 0)


def run_grid(
    model_spec: ModelSpec,
    *,
    datasets: list[str] | None = None,
    techniques: tuple[str, ...] = PAPER_TECHNIQUES,
    n_runs: int = 5,
    scale: str = "small",
    seed: int | np.random.Generator | None = 0,
    verbose: bool = False,
    jobs: int = 1,
    checkpoint: str | PathLike | None = None,
    resume: bool = False,
) -> GridResult:
    """Evaluate baseline + every technique on every dataset.

    Every ``(dataset, technique, run)`` job derives its seeds from the
    master seed and its own identity, so grids are reproducible, subsets
    re-runnable, and ``jobs=N`` worker-pool execution returns exactly the
    ``jobs=1`` accuracies.  With *checkpoint*, completed cells append to a
    JSON-lines file; ``resume=True`` continues an interrupted grid,
    re-running only the missing cells.
    """
    master = resolve_master_seed(seed)
    names = datasets if datasets is not None else list_datasets()
    technique_names = tuple(
        t if isinstance(t, str) else t.name for t in techniques
    )
    instances: dict[str, Augmenter | None] = {
        t.name: t for t in techniques if isinstance(t, Augmenter)
    }
    grid_jobs = plan_grid(model_spec.name, names, technique_names,
                          n_runs=n_runs, master_seed=master)
    accuracies = execute_jobs(
        grid_jobs, model_spec,
        augmenters=instances, scale=scale, n_jobs=jobs,
        checkpoint=checkpoint, resume=resume,
        meta={"model": model_spec.name, "model_config": model_spec.config,
              "scale": scale, "master_seed": master, "n_runs": n_runs},
    )

    result = GridResult(model_spec.name, technique_names)
    for dataset_name in names:
        for technique in (BASELINE, *technique_names):
            cell = EvaluationResult(dataset_name, model_spec.name, technique)
            cell.accuracies = [
                accuracies[(dataset_name, model_spec.name, technique, run)]
                for run in range(n_runs)
            ]
            result.cells[(dataset_name, technique)] = cell
            if verbose:
                print(f"  {dataset_name:24s} {technique:10s} "
                      f"{100 * cell.mean_accuracy:6.2f}%")
    return result
