"""Grid runner regenerating Tables IV and V.

A :class:`GridResult` holds one accuracy table: rows are datasets, columns
are baseline + techniques, mirroring the layout of the paper's Tables IV-V.
:func:`run_grid` executes the full protocol; scaled-down defaults keep the
13-dataset x 6-config x n-run grid CPU-feasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rng import ensure_rng
from ..augmentation import PAPER_TECHNIQUES
from ..data.archive import list_datasets, load_dataset
from .metrics import best_relative_gain_percent
from .protocol import EvaluationResult, ModelSpec, evaluate

__all__ = ["GridResult", "run_grid"]


@dataclass
class GridResult:
    """Accuracy grid for one model over datasets x (baseline + techniques)."""

    model: str
    techniques: tuple[str, ...]
    cells: dict[tuple[str, str], EvaluationResult] = field(default_factory=dict)

    # ------------------------------------------------------------------ #

    def datasets(self) -> list[str]:
        """Datasets present, in insertion (Table III) order."""
        seen: list[str] = []
        for dataset, _ in self.cells:
            if dataset not in seen:
                seen.append(dataset)
        return seen

    def accuracy(self, dataset: str, technique: str) -> float:
        """Mean accuracy (in %) for one cell."""
        return 100.0 * self.cells[(dataset, technique)].mean_accuracy

    def baseline_accuracy(self, dataset: str) -> float:
        return self.accuracy(dataset, "baseline")

    def augmented_accuracies(self, dataset: str) -> dict[str, float]:
        return {t: self.accuracy(dataset, t) for t in self.techniques}

    def improvement_percent(self, dataset: str) -> float:
        """The per-dataset "Improvement (%)" column (best technique, Eq. 3)."""
        return best_relative_gain_percent(
            self.baseline_accuracy(dataset), self.augmented_accuracies(dataset)
        )

    def average_improvement(self) -> float:
        """Mean of the improvement column — 1.55 % / 0.56 % in the paper."""
        return float(np.mean([self.improvement_percent(d) for d in self.datasets()]))

    def improved_dataset_count(self) -> int:
        """Datasets where some augmentation beats the baseline (10/13 in the paper)."""
        return sum(1 for d in self.datasets() if self.improvement_percent(d) > 0)


def run_grid(
    model_spec: ModelSpec,
    *,
    datasets: list[str] | None = None,
    techniques: tuple[str, ...] = PAPER_TECHNIQUES,
    n_runs: int = 5,
    scale: str = "small",
    seed: int | np.random.Generator | None = 0,
    verbose: bool = False,
) -> GridResult:
    """Evaluate baseline + every technique on every dataset.

    Each (dataset, technique) cell derives its seed from the master seed
    independently, so grids are reproducible and subsets re-runnable.
    """
    rng = ensure_rng(seed)
    names = datasets if datasets is not None else list_datasets()
    technique_names = tuple(
        t if isinstance(t, str) else t.name for t in techniques
    )
    result = GridResult(model_spec.name, technique_names)
    for dataset_name in names:
        train, test = load_dataset(dataset_name, scale=scale)
        for technique in (None, *techniques):
            cell_seed = int(rng.integers(0, 2**63 - 1))
            cell = evaluate(train, test, model_spec, technique,
                            n_runs=n_runs, seed=cell_seed)
            result.cells[(dataset_name, cell.technique)] = cell
            if verbose:
                print(f"  {dataset_name:24s} {cell.technique:10s} "
                      f"{100 * cell.mean_accuracy:6.2f}%")
    return result
