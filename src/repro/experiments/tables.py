"""Text renderers for every table in the paper.

Each function prints (and returns) an aligned text table in the same
row/column layout as the published one, with measured values side by side
with the paper's where applicable.  Benchmarks call these so the harness
output can be eyeballed against the PDF.
"""

from __future__ import annotations

import numpy as np

from ..data.archive import UEA_IMBALANCED_SPECS, load_dataset
from ..data.characteristics import characterize
from . import paper_reference as ref
from .analysis import ImprovementCounts
from .runner import GridResult

__all__ = [
    "render_table1_roles",
    "render_table2_families",
    "render_table3_characteristics",
    "render_accuracy_table",
    "render_table6_counts",
]


def _format(rows: list[list[str]], header: list[str]) -> str:
    widths = [max(len(str(row[i])) for row in [header] + rows) for i in range(len(header))]
    lines = ["  ".join(str(cell).ljust(w) for cell, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1_roles() -> str:
    """Table I: task accomplished per baseline algorithm."""
    rows = [
        ["ROCKET", "x", ""],
        ["InceptionTime", "x", "x"],
    ]
    return _format(rows, ["Algorithm", "Feature-Extractor", "Classifier"])


def render_table2_families() -> str:
    """Table II: methodology per baseline algorithm."""
    rows = [
        ["ROCKET + RR", "", "", "x"],
        ["InceptionTime", "x", "x", ""],
    ]
    return _format(rows, ["Algorithm", "DL-based", "Ensemble-based", "Kernel-based"])


def render_table3_characteristics(*, scale: str = "small") -> str:
    """Table III: measured characteristics vs the paper's, per dataset."""
    header = ["Dataset", "K", "Train", "Dim", "Len",
              "Var tr (paper)", "Im ratio (paper)", "d tr/te (paper)", "miss (paper)"]
    rows = []
    for spec in UEA_IMBALANCED_SPECS:
        train, test = load_dataset(spec.name, scale=scale)
        ch = characterize(train, test)
        rows.append([
            spec.name, ch.n_classes, ch.train_size, ch.dim, ch.length,
            f"{ch.var_train:.2f} ({spec.var_train:.2f})",
            f"{ch.im_ratio:.2f} ({spec.im_ratio:.2f})",
            f"{ch.d_train_test:.1f} ({spec.d_train_test:.1f})",
            f"{ch.prop_miss:.2f} ({spec.prop_miss:.2f})",
        ])
    return _format(rows, header)


def render_accuracy_table(grid: GridResult,
                          paper_table: dict[str, dict[str, float]] | None = None) -> str:
    """Tables IV/V: accuracy per dataset and technique + improvement column.

    When *paper_table* is given, each improvement cell shows
    ``measured (paper)``.
    """
    header = ["Dataset", "baseline", *grid.techniques, "Improv.%"]
    rows = []
    for dataset in grid.datasets():
        improvement = grid.improvement_percent(dataset)
        if paper_table is not None and dataset in paper_table:
            improvement_cell = f"{improvement:+.2f} ({paper_table[dataset]['improvement']:+.2f})"
        else:
            improvement_cell = f"{improvement:+.2f}"
        rows.append([
            dataset,
            f"{grid.baseline_accuracy(dataset):.2f}",
            *(f"{grid.accuracy(dataset, t):.2f}" for t in grid.techniques),
            improvement_cell,
        ])
    average = grid.average_improvement()
    rows.append(["Average Improvement", *[""] * (len(grid.techniques) + 1), f"{average:+.2f}"])
    return _format(rows, header)


def render_table6_counts(rocket: ImprovementCounts,
                         inception: ImprovementCounts) -> str:
    """Table VI: improvement occurrence counts, measured (paper)."""
    header = ["Augmentation Technique", "ROCKET", "InceptionTime"]
    rows = []
    for family in ("smote", "timegan", "noise"):
        paper = ref.TABLE6_COUNTS[family]
        rows.append([
            {"smote": "SMOTE", "timegan": "TimeGAN", "noise": "Noise"}[family],
            f"{rocket.as_dict()[family]} ({paper['rocket']})",
            f"{inception.as_dict()[family]} ({paper['inceptiontime']})",
        ])
    return _format(rows, header)
