"""Generative-quality metrics for augmentation techniques.

The TimeGAN paper (Yoon et al., 2019 — the paper's reference [20])
evaluates synthetic time series with two scores; both are implemented here
against this library's substrate so any :class:`~repro.augmentation.base.
Augmenter` can be audited before it enters the balancing protocol:

* **discriminative score** — train a post-hoc classifier to separate real
  from synthetic series; score = |accuracy - 0.5| (0 is ideal: synthetic
  data indistinguishable from real).  We use a small ROCKET + ridge as the
  discriminator (the strongest cheap discriminator in this library).
* **predictive score (TSTR)** — train-on-synthetic, test-on-real: fit a
  next-step ridge regressor on synthetic series and measure its MAE on real
  series (lower is better; compare with the train-on-real baseline).

A third convenience, :func:`fidelity_report`, bundles both plus simple
marginal-moment gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import ensure_rng
from .._validation import check_panel
from ..augmentation.base import Augmenter
from ..classifiers import RidgeClassifierCV, RocketTransform

__all__ = [
    "discriminative_score",
    "predictive_score",
    "FidelityReport",
    "fidelity_report",
]


def discriminative_score(
    real: np.ndarray,
    synthetic: np.ndarray,
    *,
    num_kernels: int = 200,
    train_fraction: float = 0.7,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """|held-out accuracy - 0.5| of a real-vs-synthetic ROCKET discriminator.

    0 means indistinguishable; 0.5 means trivially separable.
    """
    real = check_panel(real)
    synthetic = check_panel(synthetic)
    if real.shape[1:] != synthetic.shape[1:]:
        raise ValueError("real and synthetic panels must share (channels, length)")
    rng = ensure_rng(seed)
    X = np.nan_to_num(np.concatenate([real, synthetic]), nan=0.0)
    y = np.concatenate([np.zeros(len(real), dtype=int), np.ones(len(synthetic), dtype=int)])
    order = rng.permutation(len(y))
    X, y = X[order], y[order]
    cut = max(2, int(len(y) * train_fraction))
    if len(y) - cut < 2 or len(np.unique(y[:cut])) < 2:
        raise ValueError("need enough samples of both kinds on each side of the split")
    transform = RocketTransform(num_kernels, seed=rng).fit(X[:cut])
    ridge = RidgeClassifierCV().fit(transform.transform(X[:cut]), y[:cut])
    accuracy = ridge.score(transform.transform(X[cut:]), y[cut:])
    return float(abs(accuracy - 0.5))


def _next_step_mae(train: np.ndarray, test: np.ndarray, *, lags: int, ridge: float) -> float:
    """Fit a pooled next-step ridge forecaster on *train*, MAE on *test*."""

    def design(panel):
        rows, targets = [], []
        for series in panel:
            for step in range(lags, series.shape[1]):
                rows.append(series[:, step - lags : step].ravel())
                targets.append(series[:, step])
        return np.asarray(rows), np.asarray(targets)

    X_tr, Y_tr = design(np.nan_to_num(train, nan=0.0))
    X_te, Y_te = design(np.nan_to_num(test, nan=0.0))
    gram = X_tr.T @ X_tr + ridge * np.eye(X_tr.shape[1])
    coef = np.linalg.solve(gram, X_tr.T @ Y_tr)
    return float(np.abs(Y_te - X_te @ coef).mean())


def predictive_score(
    real: np.ndarray,
    synthetic: np.ndarray,
    *,
    lags: int = 3,
    ridge: float = 1e-2,
) -> tuple[float, float]:
    """TSTR next-step forecasting MAE: (train-on-synthetic, train-on-real).

    Both models are evaluated on the real panel; a good generator brings the
    first number close to the second.
    """
    real = check_panel(real)
    synthetic = check_panel(synthetic)
    lags = max(1, min(lags, real.shape[2] - 1))
    tstr = _next_step_mae(synthetic, real, lags=lags, ridge=ridge)
    trtr = _next_step_mae(real, real, lags=lags, ridge=ridge)
    return tstr, trtr


@dataclass(frozen=True)
class FidelityReport:
    """Quality summary for one augmenter on one class."""

    technique: str
    discriminative: float
    tstr_mae: float
    trtr_mae: float
    mean_gap: float
    std_gap: float

    @property
    def predictive_ratio(self) -> float:
        """TSTR / TRTR — 1.0 means synthetic data trains as well as real."""
        return self.tstr_mae / max(self.trtr_mae, 1e-12)

    def as_row(self) -> str:
        return (f"{self.technique:12s} disc={self.discriminative:.3f} "
                f"tstr/trtr={self.predictive_ratio:5.2f} "
                f"mean_gap={self.mean_gap:.3f} std_gap={self.std_gap:.3f}")


def fidelity_report(
    augmenter: Augmenter,
    X_class: np.ndarray,
    *,
    n_synthetic: int | None = None,
    seed: int | np.random.Generator | None = 0,
    X_other: np.ndarray | None = None,
) -> FidelityReport:
    """Generate synthetic samples and score them against the real class."""
    X_class = check_panel(X_class)
    rng = ensure_rng(seed)
    n_synthetic = n_synthetic or len(X_class)
    synthetic = augmenter.generate(X_class, n_synthetic, rng=rng, X_other=X_other)
    disc = discriminative_score(X_class, synthetic, seed=rng)
    tstr, trtr = predictive_score(X_class, synthetic)
    return FidelityReport(
        technique=augmenter.name,
        discriminative=disc,
        tstr_mae=tstr,
        trtr_mae=trtr,
        mean_gap=float(abs(np.nanmean(synthetic) - np.nanmean(X_class))),
        std_gap=float(abs(np.nanstd(synthetic) - np.nanstd(X_class))),
    )
