"""Replay scenario worlds through the full adaptation loop and score it.

The scenario library (:mod:`repro.data.scenarios`) supplies deterministic
stream worlds with known ground truth — where drift really happens,
which worlds are drift-free, what accuracy a healthy loop should hold at
the end.  This harness is the measuring instrument: for each world it

1. trains a serving model on the world's pre-drift training panel and
   publishes it to a fresh registry under the serving protocol's
   metadata (so the stream path z-normalises exactly like batch);
2. replays the world's sample stream through ``StreamScorer →
   DriftMonitor → AdaptationController`` — the real production loop,
   adaptation inline for determinism — reopening the scorer pinned to
   every promoted version, exactly like ``repro adapt``;
3. scores what happened against the world's own truth:
   **detection delay** (windows from the first drift-affected window to
   the first flag), **false flags** (flags raised while the concept was
   still the training concept), and **accuracy segments** (pre-drift /
   overall / final quarter — the last one is what the budget's
   ``min_final_accuracy`` bounds, because by then adaptation has had
   its chance);
4. compares the measurements to the world's
   :class:`~repro.data.scenarios.ScenarioBudget` and reports pass/fail
   per axis.

Late labels: worlds with ``feed_labels=False`` are scored unlabelled
(drift must be caught by the confidence EWMA) while the harness delivers
each window's truth ``label_delay`` windows later through
:meth:`~repro.adaptation.AdaptationController.deliver_label` — the
replay buffer upgrades in place, so retrains use truth even though the
stream never carried it.

Everything is JSON-serialisable: :func:`run_suite` returns (and
optionally persists) one report per world plus a suite verdict, which is
what ``repro scenarios`` prints and ``benchmarks/bench_scenarios.py``
checks in.  See ``docs/scenarios.md`` for the world taxonomy and budget
tuning guidance.
"""

from __future__ import annotations

import json
import tempfile
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..adaptation import AdaptationController
from ..classifiers import make_classifier
from ..data.scenarios import Scenario, make_world
from ..observability import AuditJournal
from ..serving import ModelRegistry, PredictionService
from ..serving.registry import model_metadata
from ..serving.server import PROTOCOL_PREPROCESSING, prepare_panel
from ..streaming import DriftMonitor, StreamScorer

__all__ = ["ScenarioReport", "run_scenario", "run_suite"]


@dataclass(frozen=True)
class ScenarioReport:
    """What one world's replay measured, against its budget.

    ``detection_delay`` is ``None`` when the world is drift-free or the
    shift was never flagged (``detected`` disambiguates); accuracies are
    ``None`` when their segment holds no windows.  The ``*_ok`` fields
    are the per-axis budget verdicts and ``passed`` their conjunction.
    """

    world: str
    kind: str
    seed: int
    windows: int
    gaps: int
    flags: tuple[int, ...]  # global window indices that raised a flag
    first_affected: int | None  # first window holding post-drift samples
    detected: bool | None  # None: drift-free world (nothing to detect)
    detection_delay: int | None
    false_flags: int
    retrainings: int
    promotions: int
    rollbacks: int
    decisions: tuple[dict, ...]  # live promote/rollback dicts, in order
    pre_drift_accuracy: float | None
    overall_accuracy: float | None
    final_accuracy: float | None  # final quarter: post-adaptation regime
    late_labels_delivered: int
    late_labels_dropped: int
    delay_ok: bool
    false_flags_ok: bool
    accuracy_ok: bool
    passed: bool

    def as_dict(self) -> dict:
        """JSON-ready form — one entry of the suite report."""
        out = {
            "world": self.world, "kind": self.kind, "seed": self.seed,
            "windows": self.windows, "gaps": self.gaps,
            "flags": list(self.flags),
            "false_flags": self.false_flags,
            "retrainings": self.retrainings,
            "promotions": self.promotions, "rollbacks": self.rollbacks,
            "decisions": [dict(decision) for decision in self.decisions],
            "late_labels_delivered": self.late_labels_delivered,
            "late_labels_dropped": self.late_labels_dropped,
            "budget": {"delay_ok": self.delay_ok,
                       "false_flags_ok": self.false_flags_ok,
                       "accuracy_ok": self.accuracy_ok},
            "passed": self.passed,
        }
        if self.first_affected is not None:
            out["first_affected"] = self.first_affected
        if self.detected is not None:
            out["detected"] = self.detected
        if self.detection_delay is not None:
            out["detection_delay"] = self.detection_delay
        for key in ("pre_drift_accuracy", "overall_accuracy",
                    "final_accuracy"):
            value = getattr(self, key)
            if value is not None:
                out[key] = round(value, 4)
        return out


def _train_and_publish(scenario: Scenario, registry: ModelRegistry,
                       *, seed: int, num_kernels: int):
    """Fit the serving model on the world's panel and publish it stable."""
    X, y = scenario.training_panel()
    model = make_classifier("rocket", num_kernels=num_kernels,
                            seed=seed).fit(prepare_panel(X), y)
    metadata = model_metadata(
        model, dataset=f"scenario:{scenario.name}",
        preprocessing=PROTOCOL_PREPROCESSING,
        input_shape=[scenario.n_channels, scenario.window], seed=seed,
    )
    return registry.publish(model, f"scenario-{scenario.name}",
                            metadata=metadata, tags=("stable",))


def run_scenario(scenario: Scenario | str, *, seed: int = 0,
                 n_series: int | None = None, num_kernels: int = 300,
                 collect_windows: int = 24, shadow_windows: int = 12,
                 cooldown_windows: int = 30,
                 registry_dir: str | Path | None = None,
                 journal=None) -> ScenarioReport:
    """Replay one world through the adaptation loop and score the outcome.

    Parameters
    ----------
    scenario:
        A :class:`~repro.data.scenarios.Scenario` or a world name
        (resolved via :func:`~repro.data.scenarios.make_world` with
        *seed*/*n_series*).
    seed:
        Master seed — world construction, model fit and retrains all
        derive from it; two runs with the same arguments produce the
        same report.
    n_series:
        Stream length override, forwarded to ``make_world``.
    num_kernels:
        Serving model budget (ROCKET kernels).
    collect_windows / shadow_windows / cooldown_windows:
        Adaptation loop pacing — smaller than the production defaults
        because scenario streams are a few hundred windows long and the
        loop must finish adapting inside them.
    registry_dir:
        Existing directory for the throwaway registry; default is a
        temporary directory cleaned up on return.
    journal:
        Optional decision-audit sink: an
        :class:`~repro.observability.AuditJournal` instance, or a path
        to append JSONL events to (a journal is opened there and closed
        on return).  Every drift flag, retrain, shadow verdict and
        promote/rollback of the replay lands in it with its evidence,
        so the run's decisions are reconstructable offline via
        :func:`repro.observability.replay_decisions`.
    """
    if isinstance(scenario, str):
        scenario = make_world(scenario, seed=seed, n_series=n_series)
    if registry_dir is None:
        with tempfile.TemporaryDirectory() as tmp:
            return run_scenario(scenario, seed=seed, n_series=n_series,
                                num_kernels=num_kernels,
                                collect_windows=collect_windows,
                                shadow_windows=shadow_windows,
                                cooldown_windows=cooldown_windows,
                                registry_dir=tmp, journal=journal)
    own_journal = None
    if isinstance(journal, (str, Path)):
        journal = own_journal = AuditJournal(journal)

    registry = ModelRegistry(registry_dir)
    record = _train_and_publish(scenario, registry, seed=seed,
                                num_kernels=num_kernels)
    service = PredictionService(registry, max_queue=1024)
    try:
        return _replay(scenario, service, record.name, seed=seed,
                       collect_windows=collect_windows,
                       shadow_windows=shadow_windows,
                       cooldown_windows=cooldown_windows, journal=journal)
    finally:
        service.close()
        if own_journal is not None:
            own_journal.close()


def _replay(scenario: Scenario, service, name: str, *, seed: int,
            collect_windows: int, shadow_windows: int,
            cooldown_windows: int, journal=None) -> ScenarioReport:
    """The measurement loop proper: stream → score → adapt → tally."""
    first_drift = scenario.drift_points[0] if scenario.drift_points else None
    truths: dict[int, int] = {}  # sample clock -> label (the world's truth)
    flags: list[int] = []
    outcomes: list[tuple[int, int, bool]] = []  # (window, end, correct)
    first_affected: int | None = None
    window_count = gap_count = 0
    delivered = dropped = 0
    version = None
    retrainings = promotions = rollbacks = 0
    decisions: list[dict] = []

    feed = iter(scenario.source())
    exhausted = False
    while not exhausted:
        controller = AdaptationController(
            service, name, version=version,
            collect_windows=collect_windows,
            shadow_windows=shadow_windows,
            cooldown_windows=cooldown_windows,
            background=False, journal=journal,
        )
        decisions_seen = 0
        promoted = None
        #: late-label queue for THIS controller: (due window, local window
        #: index, truth) — indices are per-scorer, so a promotion drops it
        late: deque[tuple[int, int, int]] = deque()
        segment_base = window_count
        monitor = DriftMonitor()
        # max_inflight=1 keeps the replay deterministic: each window
        # resolves exactly one window behind its submission, so drift
        # flags, decisions and the promotion break-point land on the
        # same sample every run (pipelined scoring resolves whenever the
        # batcher's worker happens to finish — timing-dependent).
        with StreamScorer(service, name, window=scenario.window,
                          hop=scenario.hop, version=version,
                          monitor=monitor, adapter=controller,
                          max_inflight=1, journal=journal) as scorer:

            def handle(result) -> int | None:
                nonlocal window_count, first_affected, delivered, dropped, \
                    decisions_seen
                index = segment_base + result.index
                window_count += 1
                truth = truths.get(result.end)
                if truth is not None:
                    outcomes.append((index, result.end, result.label == truth))
                if result.drift is not None and result.drift.shift:
                    flags.append(index)
                if first_drift is not None and first_affected is None \
                        and result.end >= first_drift:
                    first_affected = index
                if scenario.label_delay > 0 and truth is not None:
                    late.append((index + scenario.label_delay,
                                 result.index, truth))
                while late and late[0][0] <= index:
                    _, local_index, late_truth = late.popleft()
                    if controller.deliver_label(local_index, late_truth):
                        delivered += 1
                    else:
                        dropped += 1
                switch = None
                while decisions_seen < len(controller.decisions):
                    decision = controller.decisions[decisions_seen]
                    decisions_seen += 1
                    if decision.action == "promote":
                        switch = decision.canary_version
                return switch

            for sample in feed:
                if sample.label is not None:
                    truths[sample.t] = int(sample.label)
                label = sample.label if scenario.feed_labels else None
                for result in scorer.feed(sample.values, label, t=sample.t):
                    promoted = handle(result) or promoted
                if promoted is not None:
                    break
            else:
                exhausted = True
                for result in scorer.finish():
                    promoted = handle(result) or promoted
            gap_count += scorer.gaps
        decisions.extend(d.as_dict() for d in controller.decisions)
        stats = service.adaptation_stats(name)
        retrainings = stats.retrainings.value
        promotions = stats.promotions.value
        rollbacks = stats.rollbacks.value
        if promoted is not None:
            # Reopen against the promoted version: the rest of the
            # stream is scored by the adapted model.
            version = promoted

    return _score(scenario, seed=seed, windows=window_count, gaps=gap_count,
                  flags=flags, outcomes=outcomes,
                  first_affected=first_affected, retrainings=retrainings,
                  promotions=promotions, rollbacks=rollbacks,
                  decisions=decisions, delivered=delivered, dropped=dropped)


def _score(scenario: Scenario, *, seed: int, windows: int, gaps: int,
           flags: list[int], outcomes: list[tuple[int, int, bool]],
           first_affected: int | None, retrainings: int, promotions: int,
           rollbacks: int, decisions: list[dict], delivered: int,
           dropped: int) -> ScenarioReport:
    """Fold the raw replay tallies into budget verdicts."""
    budget = scenario.budget
    drift_free = not scenario.drift_points

    if drift_free:
        detected = None
        delay = None
        false_flags = len(flags)
    else:
        hits = [f for f in flags
                if first_affected is not None and f >= first_affected]
        detected = bool(hits)
        delay = (hits[0] - first_affected) if hits else None
        false_flags = len(flags) - len(hits)

    def accuracy(selector) -> float | None:
        chosen = [correct for index, end, correct in outcomes
                  if selector(index, end)]
        return (sum(chosen) / len(chosen)) if chosen else None

    pre_drift = None
    if first_affected is not None:
        pre_drift = accuracy(lambda index, end: index < first_affected)
    overall = accuracy(lambda index, end: True)
    tail_start = (3 * windows) // 4
    final = accuracy(lambda index, end: index >= tail_start)

    if budget.max_detection_delay is None:
        delay_ok = True  # drift-free: nothing to detect
    else:
        delay_ok = detected is True and delay is not None \
            and delay <= budget.max_detection_delay
    false_flags_ok = false_flags <= budget.max_false_flags
    if budget.min_final_accuracy is None:
        accuracy_ok = True
    else:
        accuracy_ok = final is not None \
            and final >= budget.min_final_accuracy

    return ScenarioReport(
        world=scenario.name, kind=scenario.kind, seed=seed,
        windows=windows, gaps=gaps, flags=tuple(flags),
        first_affected=first_affected, detected=detected,
        detection_delay=delay, false_flags=false_flags,
        retrainings=retrainings, promotions=promotions,
        rollbacks=rollbacks, decisions=tuple(decisions),
        pre_drift_accuracy=pre_drift,
        overall_accuracy=overall, final_accuracy=final,
        late_labels_delivered=delivered, late_labels_dropped=dropped,
        delay_ok=delay_ok, false_flags_ok=false_flags_ok,
        accuracy_ok=accuracy_ok,
        passed=delay_ok and false_flags_ok and accuracy_ok,
    )


def run_suite(worlds: Iterable[str] | None = None, *, seed: int = 0,
              n_series: int | None = None, out_path: str | Path | None = None,
              **overrides) -> dict:
    """Replay a set of worlds and aggregate their reports.

    Parameters
    ----------
    worlds:
        World names (default: every registered world).
    seed / n_series:
        Forwarded to every :func:`run_scenario` call.
    out_path:
        When given, the suite report is written there as JSON.
    overrides:
        Extra :func:`run_scenario` keyword arguments (model budget,
        adaptation pacing).

    Returns
    -------
    dict
        ``{"seed", "worlds": [per-world report dicts], "passed",
        "failures": [world names]}`` — the shape ``repro scenarios``
        prints and the benchmark archives.
    """
    from ..data.scenarios import available_worlds

    names = list(worlds) if worlds is not None else available_worlds()
    reports = [run_scenario(name, seed=seed, n_series=n_series, **overrides)
               for name in names]
    suite = {
        "seed": int(seed),
        "worlds": [report.as_dict() for report in reports],
        "failures": [report.world for report in reports if not report.passed],
        "passed": all(report.passed for report in reports),
    }
    if out_path is not None:
        path = Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(suite, indent=2) + "\n",
                        encoding="utf-8")
    return suite
