"""Parallel, cached, resumable execution engine for experiment grids.

A grid (Tables IV-VI: datasets x techniques x runs) decomposes into
independent :class:`GridJob` s — one ``(dataset, model, technique, run)``
tuple each.  Because every job's seeds derive from its identity alone
(:func:`~repro.experiments.protocol.cell_seeds`), jobs may execute in any
order, on any worker, and still produce bit-identical accuracies: running
with ``n_jobs=4`` equals running with ``n_jobs=1`` cell for cell.

Three layers make large grids cheap:

* **decomposition** — :func:`plan_grid` emits the job list; subsets of a
  grid (a resumed remainder, a single re-run cell) keep their seeds;
* **caching** — workers enable :mod:`repro.cache`, so loaded panels,
  prepared panels, fitted kernels and the feature matrices of the shared
  real train/test panels are computed once per worker instead of once per
  cell (the model seed is shared across techniques by design);
* **checkpointing** — completed jobs append to a JSON-lines file;
  :func:`execute_jobs` with ``resume=True`` re-runs only missing jobs.

Workers are ``fork``-start ``multiprocessing`` processes; the model spec
and any augmenter instances are inherited through the fork, so specs may
carry arbitrary callables.  Jobs are chunked dataset-major, which keeps
one dataset's jobs on one worker and its cache hot.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path

from ..augmentation import make_augmenter
from ..augmentation.base import Augmenter
from ..cache import set_caching
from ..data.archive import load_dataset
from .protocol import ModelSpec, cell_seeds, run_single

__all__ = ["GridJob", "plan_grid", "execute_jobs", "GridCheckpoint", "BASELINE"]

#: technique label of the unaugmented cell
BASELINE = "baseline"

_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class GridJob:
    """One independent unit of grid work, seeds included."""

    dataset: str
    model: str
    technique: str  # BASELINE or a technique name
    run: int
    model_seed: int
    aug_seed: int

    @property
    def key(self) -> tuple[str, str, str, int]:
        return (self.dataset, self.model, self.technique, self.run)


def plan_grid(
    model_name: str,
    datasets: list[str],
    technique_names: tuple[str, ...],
    *,
    n_runs: int,
    master_seed: int,
) -> list[GridJob]:
    """Decompose a grid into jobs, dataset-major (cache-friendly) order."""
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1; got {n_runs}")
    jobs: list[GridJob] = []
    for dataset in datasets:
        for technique in (BASELINE, *technique_names):
            for run in range(n_runs):
                model_seed, aug_seed = cell_seeds(master_seed, dataset, technique, run)
                jobs.append(GridJob(dataset, model_name, technique, run,
                                    model_seed, aug_seed))
    return jobs


# --------------------------------------------------------------------- #
# checkpointing
# --------------------------------------------------------------------- #


class GridCheckpoint:
    """JSON-lines record of completed grid jobs.

    Line 1 is a metadata header identifying the grid (model, scale,
    master seed, run count); every other line is one completed cell run.
    Appending is atomic enough for crash recovery: a truncated trailing
    line is ignored on load.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    def start(self, meta: dict) -> None:
        """Truncate and write the metadata header."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {"kind": "grid-meta", "version": _CHECKPOINT_VERSION, **meta}
        with open(self.path, "w") as handle:
            handle.write(json.dumps(header) + "\n")

    def append(self, job: GridJob, accuracy: float) -> None:
        """Record one completed job (flushed immediately)."""
        row = {"kind": "cell", **asdict(job), "accuracy": accuracy}
        with open(self.path, "a") as handle:
            handle.write(json.dumps(row) + "\n")
            handle.flush()

    def load(self, expected_meta: dict) -> dict[tuple, float]:
        """Completed accuracies keyed by job key; validates the header.

        Raises ``ValueError`` when the header disagrees with
        *expected_meta* — resuming a checkpoint into a different grid
        would silently mix incompatible numbers — or when the header
        itself is unreadable (a file that was truncated inside its first
        line, or isn't a checkpoint at all): a grid identity that cannot
        be verified is refused, never guessed.

        Cell rows are loaded defensively: a torn trailing line, a row
        with missing fields or a non-numeric accuracy is skipped (the
        job simply re-runs), and a duplicated job key keeps the *last*
        record — re-running a cell after a crash appends a fresh row
        rather than corrupting the file.
        """
        completed: dict[tuple, float] = {}
        with open(self.path) as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise ValueError(f"checkpoint {self.path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
        if not isinstance(header, dict) or header.get("kind") != "grid-meta":
            raise ValueError(
                f"checkpoint {self.path} has a corrupt or missing header; "
                "remove the file to start the grid over"
            )
        for field, expected in expected_meta.items():
            found = header.get(field)
            if found != expected:
                raise ValueError(
                    f"checkpoint {self.path} belongs to a different grid: "
                    f"{field}={found!r}, expected {expected!r}"
                )
        for line in lines[1:]:
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # interrupted mid-write; the job will re-run
            if not isinstance(row, dict) or row.get("kind") != "cell":
                continue
            try:
                key = (row["dataset"], row["model"], row["technique"], row["run"])
                completed[key] = float(row["accuracy"])
            except (KeyError, TypeError, ValueError):
                continue  # half-written row; the job will re-run
        return completed


# --------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------- #

#: worker context inherited through fork: (model_spec, augmenters, scale)
_WORKER_CONTEXT: tuple[ModelSpec, dict[str, Augmenter | None], str] | None = None

#: per-process cache of loaded (train, test) archive pairs
_DATASET_CACHE: dict[tuple[str, str], tuple] = {}


def _load_cached(dataset: str, scale: str):
    key = (dataset, scale)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load_dataset(dataset, scale=scale)
    return _DATASET_CACHE[key]


def _resolve_augmenter(name: str, augmenters: dict[str, Augmenter | None]) -> Augmenter | None:
    if name == BASELINE:
        return None
    instance = augmenters.get(name)
    return instance if instance is not None else make_augmenter(name)


def _init_worker() -> None:
    """Pool initializer: each worker gets its own enabled cache."""
    set_caching(True)


def _execute_job(job: GridJob) -> tuple[GridJob, float]:
    """Run one job inside the worker context."""
    if _WORKER_CONTEXT is None:
        raise RuntimeError("engine worker context is not initialised")
    model_spec, augmenters, scale = _WORKER_CONTEXT
    train, test = _load_cached(job.dataset, scale)
    augmenter = _resolve_augmenter(job.technique, augmenters)
    accuracy = run_single(train, test, model_spec, augmenter,
                          model_seed=job.model_seed, aug_seed=job.aug_seed)
    return job, accuracy


def execute_jobs(
    jobs: list[GridJob],
    model_spec: ModelSpec,
    *,
    augmenters: dict[str, Augmenter | None] | None = None,
    scale: str = "small",
    n_jobs: int = 1,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    meta: dict | None = None,
    verbose: bool = False,
) -> dict[tuple, float]:
    """Execute *jobs*, returning ``{job.key: accuracy}`` for every job.

    Parameters
    ----------
    augmenters:
        Optional pre-built augmenter instances keyed by technique name
        (e.g. a budget-reduced TimeGAN); techniques not present are
        instantiated from the registry inside each worker.
    n_jobs:
        Worker processes.  ``1`` (default) runs in-process — the same
        code path, so results are identical.
    checkpoint / resume / meta:
        With a checkpoint path, completed jobs are appended as JSON lines
        and *meta* identifies the grid.  ``resume=True`` loads matching
        completed jobs and runs only the remainder; without ``resume`` an
        existing checkpoint is refused rather than overwritten.
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1; got {n_jobs}")
    augmenters = augmenters or {}
    meta = meta or {}

    writer = None
    completed: dict[tuple, float] = {}
    if checkpoint is not None:
        writer = GridCheckpoint(checkpoint)
        if writer.path.exists():
            if not resume:
                raise ValueError(
                    f"checkpoint {writer.path} already exists; "
                    "pass resume=True to continue it or remove the file"
                )
            completed = writer.load(meta)
        else:
            writer.start(meta)

    wanted = {job.key for job in jobs}
    results = {key: acc for key, acc in completed.items() if key in wanted}
    pending = [job for job in jobs if job.key not in results]

    global _WORKER_CONTEXT
    _WORKER_CONTEXT = (model_spec, augmenters, scale)
    previous_caching = set_caching(True)
    # Load every panel once in the parent: the sequential path reuses them
    # directly, and forked workers inherit them copy-on-write instead of
    # regenerating the archive per process.
    for dataset in dict.fromkeys(job.dataset for job in pending):
        _load_cached(dataset, scale)
    try:
        context = None
        if n_jobs > 1 and len(pending) > 1:
            try:
                # Workers must inherit the (potentially lambda-carrying)
                # model spec and augmenter instances, so only the fork
                # start method will do.
                context = multiprocessing.get_context("fork")
            except ValueError:
                warnings.warn(
                    "the 'fork' multiprocessing start method is unavailable "
                    "on this platform; running the grid sequentially",
                    RuntimeWarning, stacklevel=2,
                )
        if context is None:
            for job in pending:
                job, accuracy = _execute_job(job)
                _record(job, accuracy, results, writer, verbose)
        else:
            # Chunk dataset-major so one dataset's jobs (which share panels,
            # kernels and real-panel features) stay on one worker.
            per_dataset = max(1, len(pending) // max(len({j.dataset for j in pending}), 1))
            chunksize = max(1, min(per_dataset, (len(pending) + n_jobs - 1) // n_jobs))
            with context.Pool(processes=n_jobs, initializer=_init_worker) as pool:
                for job, accuracy in pool.imap_unordered(
                    _execute_job, pending, chunksize=chunksize
                ):
                    _record(job, accuracy, results, writer, verbose)
    finally:
        _WORKER_CONTEXT = None
        set_caching(previous_caching)
    return results


def _record(job: GridJob, accuracy: float, results: dict, writer, verbose: bool) -> None:
    results[job.key] = accuracy
    if writer is not None:
        writer.append(job, accuracy)
    if verbose:
        print(f"  {job.dataset:24s} {job.technique:10s} run {job.run}: "
              f"{100 * accuracy:6.2f}%")
