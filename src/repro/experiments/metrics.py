"""Evaluation metrics from Section IV of the paper."""

from __future__ import annotations

__all__ = ["relative_gain", "best_relative_gain_percent"]


def relative_gain(accuracy_baseline: float, accuracy_augmented: float) -> float:
    """Eq. (3): ``G_r = (acc(model_aug) - acc(model)) / acc(model)``.

    Both accuracies are averages over runs (five in the paper).
    """
    if accuracy_baseline <= 0:
        raise ValueError(f"baseline accuracy must be > 0; got {accuracy_baseline}")
    return (accuracy_augmented - accuracy_baseline) / accuracy_baseline


def best_relative_gain_percent(accuracy_baseline: float,
                               augmented_accuracies: dict[str, float]) -> float:
    """The per-dataset "Improvement (%)" column of Tables IV-V.

    Relative gain of the best-performing augmentation technique, in percent.
    """
    if not augmented_accuracies:
        raise ValueError("no augmented accuracies supplied")
    best = max(augmented_accuracies.values())
    return 100.0 * relative_gain(accuracy_baseline, best)
