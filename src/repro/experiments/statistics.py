"""Statistical comparison of techniques across datasets.

Time-series-classification studies follow Demšar's methodology: average
ranks across datasets, a Friedman test for any overall difference, and
pairwise Wilcoxon signed-rank tests.  The paper's Section IV-F observation
("no clear pattern ... to assert superiority of any specific augmentation
technique") is exactly a non-significant Friedman outcome; these tools make
that claim testable on a :class:`~repro.experiments.runner.GridResult`.

Also provides the gain-vs-characteristics correlation the paper alludes to
in Sec. IV-C ("trying to capture some correlations between G and the
aforementioned properties").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..data.archive import UEA_IMBALANCED_SPECS, load_dataset
from ..data.characteristics import characterize
from .runner import GridResult

__all__ = [
    "average_ranks",
    "friedman_test",
    "wilcoxon_matrix",
    "nemenyi_critical_difference",
    "render_cd_diagram",
    "GainCorrelation",
    "gain_characteristic_correlations",
]

# Upper 5 % critical values of the Studentized range statistic q_alpha
# divided by sqrt(2), indexed by the number of compared configurations
# (Demsar 2006, Table 5).
_NEMENYI_Q05 = {
    2: 1.960, 3: 2.343, 4: 2.569, 5: 2.728, 6: 2.850,
    7: 2.949, 8: 3.031, 9: 3.102, 10: 3.164,
}


def _accuracy_matrix(grid: GridResult, *, include_baseline: bool = True
                     ) -> tuple[np.ndarray, list[str]]:
    columns = (["baseline"] if include_baseline else []) + list(grid.techniques)
    matrix = np.array([
        [grid.accuracy(dataset, column) for column in columns]
        for dataset in grid.datasets()
    ])
    return matrix, columns


def average_ranks(grid: GridResult, *, include_baseline: bool = True) -> dict[str, float]:
    """Average rank of each configuration across datasets (1 = best)."""
    matrix, columns = _accuracy_matrix(grid, include_baseline=include_baseline)
    # rank with ties averaged; higher accuracy -> better (lower) rank
    ranks = np.apply_along_axis(lambda row: stats.rankdata(-row), 1, matrix)
    return dict(zip(columns, ranks.mean(axis=0)))


def friedman_test(grid: GridResult, *, include_baseline: bool = True
                  ) -> tuple[float, float]:
    """Friedman chi-square statistic and p-value over the accuracy grid.

    A large p-value supports the paper's "no one-size-fits-all" claim.
    """
    matrix, _ = _accuracy_matrix(grid, include_baseline=include_baseline)
    statistic, p_value = stats.friedmanchisquare(*matrix.T)
    return float(statistic), float(p_value)


def wilcoxon_matrix(grid: GridResult) -> dict[tuple[str, str], float]:
    """Pairwise Wilcoxon signed-rank p-values between techniques.

    Ties (identical accuracy vectors) yield p = 1.0.
    """
    matrix, columns = _accuracy_matrix(grid)
    results: dict[tuple[str, str], float] = {}
    for i, first in enumerate(columns):
        for j in range(i + 1, len(columns)):
            second = columns[j]
            difference = matrix[:, i] - matrix[:, j]
            if np.allclose(difference, 0.0):
                p_value = 1.0
            else:
                _, p_value = stats.wilcoxon(matrix[:, i], matrix[:, j])
            results[(first, second)] = float(p_value)
    return results


def nemenyi_critical_difference(n_configurations: int, n_datasets: int) -> float:
    """Nemenyi critical difference at alpha = 0.05.

    Two configurations are significantly different when their average ranks
    differ by at least this value (Demsar, 2006).
    """
    if n_configurations < 2:
        raise ValueError("need at least two configurations")
    if n_configurations > max(_NEMENYI_Q05):
        raise ValueError(f"critical values tabulated up to {max(_NEMENYI_Q05)} configurations")
    if n_datasets < 2:
        raise ValueError("need at least two datasets")
    q = _NEMENYI_Q05[n_configurations]
    return float(q * np.sqrt(n_configurations * (n_configurations + 1) / (6.0 * n_datasets)))


def render_cd_diagram(grid: GridResult, *, width: int = 60) -> str:
    """ASCII critical-difference diagram over the grid's configurations.

    Configurations are placed on a rank axis; a bar under the axis marks
    the Nemenyi critical difference, so configurations within one bar-length
    are statistically indistinguishable — the visual form of the paper's
    "no one-size-fits-all" conclusion.
    """
    ranks = average_ranks(grid)
    k = len(ranks)
    cd = nemenyi_critical_difference(k, len(grid.datasets()))
    lo, hi = 1.0, float(k)

    def column(rank: float) -> int:
        return int((rank - lo) / (hi - lo + 1e-12) * (width - 1))

    axis = ["-"] * width
    lines = []
    for name, rank in sorted(ranks.items(), key=lambda kv: kv[1]):
        col = column(rank)
        axis[col] = "+"
        lines.append(f"{' ' * col}|{name} ({rank:.2f})")
    bar_len = max(1, column(lo + cd))
    header = f"average rank 1 {'-' * (width - 18)} {k}"
    cd_bar = "=" * bar_len + f"  CD(0.05) = {cd:.2f}"
    return "\n".join([header, "".join(axis)] + lines + [cd_bar])


@dataclass(frozen=True)
class GainCorrelation:
    """Spearman correlation of best-technique gain with one characteristic."""

    characteristic: str
    rho: float
    p_value: float


def gain_characteristic_correlations(grid: GridResult, *, scale: str = "small"
                                     ) -> list[GainCorrelation]:
    """Correlate per-dataset relative gain with Table III characteristics.

    Returns Spearman rho and p-value for each numeric characteristic the
    paper defines (train size, dimension, length, variance, imbalance
    degree, train/test distance, missing proportion, number of classes).
    """
    gains, rows = [], []
    spec_by_name = {spec.name: spec for spec in UEA_IMBALANCED_SPECS}
    for dataset in grid.datasets():
        if dataset not in spec_by_name:
            continue
        train, test = load_dataset(dataset, scale=scale)
        rows.append(characterize(train, test))
        gains.append(grid.improvement_percent(dataset))
    if len(gains) < 3:
        raise ValueError("need at least 3 archive datasets for correlations")
    gains = np.asarray(gains)

    correlations = []
    for attribute in ("n_classes", "train_size", "dim", "length", "var_train",
                      "im_ratio", "d_train_test", "prop_miss"):
        values = np.array([getattr(row, attribute) for row in rows], dtype=float)
        if np.allclose(values, values[0]):
            correlations.append(GainCorrelation(attribute, 0.0, 1.0))
            continue
        rho, p_value = stats.spearmanr(values, gains)
        correlations.append(GainCorrelation(attribute, float(rho), float(p_value)))
    return correlations
