"""Data generators for Figures 2-6 (the taxonomy-branch illustrations).

Each function builds the 2-D scatter data behind one of the paper's
illustrative figures: original two-class points, the synthetic points one
technique produces, and (for Figs. 5-6) the geometric structure the
technique respects.  The figures operate on a 2-D projection of a small
two-class time-series problem so they can be rendered as ASCII scatter
plots by the benchmark harness (:func:`ascii_scatter`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..augmentation import (
    NoiseInjection,
    OHIT,
    RangeTechnique,
    SMOTE,
    TimeGAN,
    TimeGANConfig,
)
from ..augmentation.preserving import snn_clusters
from ..data.generators import make_classification_panel

__all__ = [
    "FigureData",
    "figure2_noise",
    "figure3_smote",
    "figure4_timegan",
    "figure5_range",
    "figure6_ohit",
    "ascii_scatter",
]


@dataclass
class FigureData:
    """2-D scatter data for one illustration figure."""

    title: str
    class_a: np.ndarray  # (n, 2) original minority points
    class_b: np.ndarray  # (n, 2) original majority points
    synthetic: np.ndarray  # (k, 2) technique output, projected
    annotations: dict = field(default_factory=dict)


def _projection_basis(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """PCA basis (top 2 components) of a flattened panel."""
    flat = np.nan_to_num(X, nan=0.0).reshape(len(X), -1)
    mean = flat.mean(axis=0)
    centered = flat - mean
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return mean, vt[:2]


def _project(X: np.ndarray, mean: np.ndarray, basis: np.ndarray) -> np.ndarray:
    flat = np.nan_to_num(X, nan=0.0).reshape(len(X), -1)
    return (flat - mean) @ basis.T


def _two_class_panel(seed: int = 7, n: int = 40):
    X, y = make_classification_panel(
        n_series=n, n_channels=2, length=24, n_classes=2, difficulty=0.35, seed=seed,
    )
    return X[y == 0], X[y == 1]


def _make_figure(title: str, augmenter, *, seed: int = 7,
                 n_synthetic: int = 25, **annotations) -> FigureData:
    class_a, class_b = _two_class_panel(seed)
    synthetic = augmenter.generate(class_a, n_synthetic, rng=seed + 1, X_other=class_b)
    mean, basis = _projection_basis(np.concatenate([class_a, class_b]))
    return FigureData(
        title=title,
        class_a=_project(class_a, mean, basis),
        class_b=_project(class_b, mean, basis),
        synthetic=_project(synthetic, mean, basis),
        annotations=annotations,
    )


def figure2_noise(seed: int = 7) -> FigureData:
    """Fig. 2: basic noise injection — unconstrained spread around the class."""
    return _make_figure("Basic Techniques, like noise injection", NoiseInjection(1.0), seed=seed)


def figure3_smote(seed: int = 7) -> FigureData:
    """Fig. 3: SMOTE — synthetic points on segments between neighbours."""
    return _make_figure("Oversampling Techniques, like SMOTE", SMOTE(), seed=seed)


def figure4_timegan(seed: int = 7) -> FigureData:
    """Fig. 4: TimeGAN — samples drawn from a learned class distribution."""
    config = TimeGANConfig(iterations=(60, 60, 30))
    return _make_figure("Generative Techniques, like timeGANs", TimeGAN(config), seed=seed)


def figure5_range(seed: int = 7) -> FigureData:
    """Fig. 5: range technique — noise bounded away from the boundary.

    Annotates each original minority point's safe radius (half the distance
    to the nearest majority point) so a renderer can draw the constraint.
    """
    class_a, class_b = _two_class_panel(seed)
    augmenter = RangeTechnique(safety=0.9)
    synthetic = augmenter.generate(class_a, 25, rng=seed + 1, X_other=class_b)
    mean, basis = _projection_basis(np.concatenate([class_a, class_b]))
    flat_a = np.nan_to_num(class_a).reshape(len(class_a), -1)
    flat_b = np.nan_to_num(class_b).reshape(len(class_b), -1)
    d2 = ((flat_a[:, None, :] - flat_b[None, :, :]) ** 2).sum(axis=2)
    margins = np.sqrt(d2.min(axis=1)) / 2.0
    return FigureData(
        title="Label-Preserving Techniques, like range techniques",
        class_a=_project(class_a, mean, basis),
        class_b=_project(class_b, mean, basis),
        synthetic=_project(synthetic, mean, basis),
        annotations={"safe_radii": margins},
    )


def figure6_ohit(seed: int = 7) -> FigureData:
    """Fig. 6: OHIT — cluster structure and covariance-faithful samples."""
    class_a, class_b = _two_class_panel(seed)
    augmenter = OHIT()
    synthetic = augmenter.generate(class_a, 25, rng=seed + 1)
    mean, basis = _projection_basis(np.concatenate([class_a, class_b]))
    flat_a = np.nan_to_num(class_a).reshape(len(class_a), -1)
    clusters = snn_clusters(flat_a)
    return FigureData(
        title="Structure-Preserving Techniques, like OHIT",
        class_a=_project(class_a, mean, basis),
        class_b=_project(class_b, mean, basis),
        synthetic=_project(synthetic, mean, basis),
        annotations={"clusters": clusters},
    )


def ascii_scatter(figure: FigureData, *, width: int = 64, height: int = 20) -> str:
    """Render a FigureData as an ASCII scatter plot.

    ``o`` = minority class, ``x`` = majority class, ``+`` = synthetic.
    """
    points = np.concatenate([figure.class_a, figure.class_b, figure.synthetic])
    finite = points[np.isfinite(points).all(axis=1)]
    lo = finite.min(axis=0)
    hi = finite.max(axis=0)
    span = np.where(hi - lo == 0, 1.0, hi - lo)

    grid = [[" "] * width for _ in range(height)]

    def place(cloud: np.ndarray, marker: str) -> None:
        for x, y in cloud:
            if not (np.isfinite(x) and np.isfinite(y)):
                continue
            col = int((x - lo[0]) / span[0] * (width - 1))
            row = int((1.0 - (y - lo[1]) / span[1]) * (height - 1))
            grid[row][col] = marker

    place(figure.class_b, "x")
    place(figure.class_a, "o")
    place(figure.synthetic, "+")
    body = "\n".join("".join(row) for row in grid)
    return f"{figure.title}\n{'=' * len(figure.title)}\n{body}\n(o: minority, x: majority, +: synthetic)"
