"""The experimental protocol of Sections IV-C and IV-D.

One *evaluation* = train a model on (possibly augmented) training data and
measure test accuracy, repeated over *n_runs* seeds and averaged — the
``acc`` of Eq. (3).  Augmentation follows the balancing protocol; for
InceptionTime the augmented samples enter only the training part of the
2:1 stratified split (handled inside the classifier), matching Sec. IV-D.

:class:`ModelSpec` carries a classifier factory so the same protocol runs
both ROCKET and InceptionTime at either paper scale or CPU scale.

The unit of execution is :func:`run_single` — one run of one
``(dataset, model, technique)`` cell, with two dedicated seed streams:
the *model* stream (kernel sampling, weight init) is keyed by
``(dataset, run)`` only, so the baseline and every technique train the
same model on the same real data and differ *only* in the synthetic
samples (a paired design); the *augmentation* stream is keyed by the
technique as well.  Seeds derive from the job identity, never from
execution order, which is what lets the engine run jobs on a worker pool
with bit-identical results (:mod:`repro.experiments.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from .._rng import derive_seed, resolve_master_seed
from ..augmentation import augment_to_balance, make_augmenter
from ..augmentation.base import Augmenter
from ..cache import caching_enabled, digest_array, feature_cache
from ..classifiers import InceptionTimeClassifier, RocketClassifier
from ..classifiers.base import Classifier
from ..data.dataset import TimeSeriesDataset

__all__ = [
    "ModelSpec",
    "EvaluationResult",
    "evaluate",
    "run_single",
    "cell_seeds",
    "rocket_spec",
    "inceptiontime_spec",
]


@dataclass(frozen=True)
class ModelSpec:
    """A named classifier factory (seed -> fresh classifier)."""

    name: str
    build: Callable[[np.random.Generator], Classifier]
    #: InceptionTime-style models take augmented data via fit(X_extra=...)
    supports_extra: bool = False
    #: hyperparameter signature — distinguishes e.g. rocket(300) from
    #: rocket(500) in checkpoint headers, where the name alone cannot
    config: str = ""


def rocket_spec(num_kernels: int = 500) -> ModelSpec:
    """ROCKET + ridge at the given kernel budget (paper default: 10 000)."""
    return ModelSpec(
        name="rocket",
        build=lambda rng: RocketClassifier(num_kernels=num_kernels, seed=rng),
        config=f"rocket(num_kernels={num_kernels})",
    )


def inceptiontime_spec(*, n_filters: int = 8, depth: int = 3,
                       kernel_sizes: tuple[int, ...] = (9, 5, 3),
                       bottleneck: int = 8, ensemble_size: int = 1,
                       max_epochs: int = 40, patience: int = 15,
                       batch_size: int = 16) -> ModelSpec:
    """InceptionTime at CPU scale by default (paper scale: 32/6/(39,19,9)/5/200)."""
    def build(rng: np.random.Generator) -> InceptionTimeClassifier:
        return InceptionTimeClassifier(
            n_filters=n_filters, depth=depth, kernel_sizes=kernel_sizes,
            bottleneck=bottleneck, ensemble_size=ensemble_size,
            max_epochs=max_epochs, patience=patience, batch_size=batch_size,
            seed=rng,
        )
    config = (f"inceptiontime(n_filters={n_filters}, depth={depth}, "
              f"kernel_sizes={kernel_sizes}, bottleneck={bottleneck}, "
              f"ensemble_size={ensemble_size}, max_epochs={max_epochs}, "
              f"patience={patience}, batch_size={batch_size})")
    return ModelSpec(name="inceptiontime", build=build, supports_extra=True,
                     config=config)


@dataclass
class EvaluationResult:
    """Mean accuracy over runs, with the per-run values kept for analysis."""

    dataset: str
    model: str
    technique: str  # "baseline" or an augmenter name
    accuracies: list[float] = field(default_factory=list)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std_accuracy(self) -> float:
        return float(np.std(self.accuracies))


def _prepare(dataset: TimeSeriesDataset) -> TimeSeriesDataset:
    """Classification preprocessing: per-series z-norm, then imputation."""
    return dataset.znormalize().impute()


def _prepare_cached(dataset: TimeSeriesDataset) -> TimeSeriesDataset:
    """Like :func:`_prepare`, memoised by panel content when caching is on.

    Both preprocessing steps are per-series, so the prepared panel is a
    pure function of the raw panel — a content key is exact.
    """
    if not caching_enabled():
        return _prepare(dataset)
    key = ("prepared-panel", digest_array(dataset.X))
    X = feature_cache().get_or_create(key, lambda: _prepare(dataset).X)
    return TimeSeriesDataset(X, dataset.y, name=dataset.name, metadata=dataset.metadata)


def cell_seeds(
    master: int, dataset: str, technique_name: str, run: int
) -> tuple[int, int]:
    """The ``(model_seed, aug_seed)`` pair for one run of one cell.

    The model seed ignores the technique: every technique (and the
    baseline) trains the same model per ``(dataset, run)``, so accuracy
    deltas isolate the augmentation effect — and feature transforms of
    the shared real panels can be reused across techniques.
    """
    model_seed = derive_seed(master, "model", dataset, run)
    aug_seed = derive_seed(master, "augment", dataset, technique_name, run)
    return model_seed, aug_seed


def _synthetic_tail(
    train: TimeSeriesDataset, augmented: TimeSeriesDataset
) -> TimeSeriesDataset | None:
    """The synthetic samples appended by the balancing protocol, if any."""
    if augmented.n_series <= train.n_series:
        return None
    return augmented.subset(np.arange(train.n_series, augmented.n_series))


def run_single(
    train: TimeSeriesDataset,
    test: TimeSeriesDataset,
    model_spec: ModelSpec,
    augmenter: Augmenter | None,
    *,
    model_seed: int,
    aug_seed: int,
) -> float:
    """One run of one protocol cell; returns the test accuracy.

    Models built as a feature transform + ridge pair (ROCKET, MiniRocket)
    are fitted through a deterministic split: the transform is fitted on
    the real training panel, and the real and synthetic parts are
    featurised separately.  The split is taken unconditionally — never
    based on cache state — so results are bit-identical whatever was
    cached; its payoff is that the real-panel features are shared across
    the baseline and every technique.  With synthetic samples present,
    the split requires a transform whose fit reads only the panel shape
    (``fits_on_shape_only``, true for ROCKET) so that fitting on the
    real panel equals fitting on the augmented one; a transform whose
    fit reads panel values (MiniRocket's bias quantiles) falls back to
    the protocol's joint fit on the augmented panel.
    """
    return _run_prepared(train, _prepare_cached(train), _prepare_cached(test),
                         model_spec, augmenter,
                         model_seed=model_seed, aug_seed=aug_seed)


def _run_prepared(
    train: TimeSeriesDataset,
    train_ready: TimeSeriesDataset,
    test_ready: TimeSeriesDataset,
    model_spec: ModelSpec,
    augmenter: Augmenter | None,
    *,
    model_seed: int,
    aug_seed: int,
) -> float:
    """:func:`run_single` with the preprocessing already done — callers
    evaluating many runs of one cell prepare the panels once."""
    model_rng = np.random.default_rng(model_seed)
    model = model_spec.build(model_rng)

    synth_ready = None
    if augmenter is not None:
        augmented = augment_to_balance(train, augmenter, rng=np.random.default_rng(aug_seed))
        synth = _synthetic_tail(train, augmented)
        synth_ready = _prepare(synth) if synth is not None else None

    if augmenter is not None and model_spec.supports_extra:
        # Augmented samples go to the training part only (Sec. IV-D).
        model.fit(
            train_ready.X, train_ready.y,
            X_extra=synth_ready.X if synth_ready is not None else None,
            y_extra=synth_ready.y if synth_ready is not None else None,
        )
    else:
        transformer = getattr(model, "transformer", None)
        ridge = getattr(model, "ridge", None)
        split_valid = synth_ready is None or getattr(
            transformer, "fits_on_shape_only", False)
        if transformer is not None and ridge is not None and split_valid:
            X_real = Classifier._clean(train_ready.X)
            transformer.fit(X_real)
            features = transformer.transform(X_real)
            labels = train_ready.y
            if synth_ready is not None:
                X_synth = Classifier._clean(synth_ready.X)
                features = np.vstack([features, transformer.transform(X_synth)])
                labels = np.concatenate([labels, synth_ready.y])
            ridge.fit(features, labels)
        elif synth_ready is not None:
            X_all = np.concatenate([train_ready.X, synth_ready.X], axis=0)
            y_all = np.concatenate([train_ready.y, synth_ready.y])
            model.fit(X_all, y_all)
        else:
            model.fit(train_ready.X, train_ready.y)
    return model.score(test_ready.X, test_ready.y)


def evaluate(
    train: TimeSeriesDataset,
    test: TimeSeriesDataset,
    model_spec: ModelSpec,
    technique: str | Augmenter | None,
    *,
    n_runs: int = 5,
    seed: int | np.random.Generator | None = None,
) -> EvaluationResult:
    """Run the paper's protocol for one (dataset, model, technique) cell.

    *technique* may be ``None`` (baseline), a registered augmenter name, or
    an :class:`Augmenter` instance.  Augmentation operates on the raw
    training data; normalisation and imputation happen afterwards, inside
    the classification pipeline (as in the paper's sktime/tsai stack).

    Per-run seeds derive from ``(seed, train.name, technique, run)``, so a
    standalone ``evaluate`` reproduces exactly the cell a
    :func:`~repro.experiments.runner.run_grid` at the same master seed
    would produce, however many other cells that grid contains.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1; got {n_runs}")
    if isinstance(technique, str):
        augmenter: Augmenter | None = make_augmenter(technique)
        technique_name = technique
    elif technique is None:
        augmenter = None
        technique_name = "baseline"
    else:
        augmenter = technique
        technique_name = technique.name

    master = resolve_master_seed(seed)
    train_ready = _prepare_cached(train)
    test_ready = _prepare_cached(test)
    result = EvaluationResult(train.name, model_spec.name, technique_name)
    for run in range(n_runs):
        model_seed, aug_seed = cell_seeds(master, train.name, technique_name, run)
        result.accuracies.append(
            _run_prepared(train, train_ready, test_ready, model_spec, augmenter,
                          model_seed=model_seed, aug_seed=aug_seed)
        )
    return result
