"""The experimental protocol of Sections IV-C and IV-D.

One *evaluation* = train a model on (possibly augmented) training data and
measure test accuracy, repeated over *n_runs* seeds and averaged — the
``acc`` of Eq. (3).  Augmentation follows the balancing protocol; for
InceptionTime the augmented samples enter only the training part of the
2:1 stratified split (handled inside the classifier), matching Sec. IV-D.

:class:`ModelSpec` carries a classifier factory so the same protocol runs
both ROCKET and InceptionTime at either paper scale or CPU scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from .._rng import ensure_rng, spawn
from ..augmentation import augment_to_balance, make_augmenter
from ..augmentation.base import Augmenter
from ..classifiers import InceptionTimeClassifier, RocketClassifier
from ..classifiers.base import Classifier
from ..data.dataset import TimeSeriesDataset

__all__ = ["ModelSpec", "EvaluationResult", "evaluate", "rocket_spec", "inceptiontime_spec"]


@dataclass(frozen=True)
class ModelSpec:
    """A named classifier factory (seed -> fresh classifier)."""

    name: str
    build: Callable[[np.random.Generator], Classifier]
    #: InceptionTime-style models take augmented data via fit(X_extra=...)
    supports_extra: bool = False


def rocket_spec(num_kernels: int = 500) -> ModelSpec:
    """ROCKET + ridge at the given kernel budget (paper default: 10 000)."""
    return ModelSpec(
        name="rocket",
        build=lambda rng: RocketClassifier(num_kernels=num_kernels, seed=rng),
    )


def inceptiontime_spec(*, n_filters: int = 8, depth: int = 3,
                       kernel_sizes: tuple[int, ...] = (9, 5, 3),
                       bottleneck: int = 8, ensemble_size: int = 1,
                       max_epochs: int = 40, patience: int = 15,
                       batch_size: int = 16) -> ModelSpec:
    """InceptionTime at CPU scale by default (paper scale: 32/6/(39,19,9)/5/200)."""
    def build(rng: np.random.Generator) -> InceptionTimeClassifier:
        return InceptionTimeClassifier(
            n_filters=n_filters, depth=depth, kernel_sizes=kernel_sizes,
            bottleneck=bottleneck, ensemble_size=ensemble_size,
            max_epochs=max_epochs, patience=patience, batch_size=batch_size,
            seed=rng,
        )
    return ModelSpec(name="inceptiontime", build=build, supports_extra=True)


@dataclass
class EvaluationResult:
    """Mean accuracy over runs, with the per-run values kept for analysis."""

    dataset: str
    model: str
    technique: str  # "baseline" or an augmenter name
    accuracies: list[float] = field(default_factory=list)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std_accuracy(self) -> float:
        return float(np.std(self.accuracies))


def _prepare(dataset: TimeSeriesDataset) -> TimeSeriesDataset:
    """Classification preprocessing: per-series z-norm, then imputation."""
    return dataset.znormalize().impute()


def evaluate(
    train: TimeSeriesDataset,
    test: TimeSeriesDataset,
    model_spec: ModelSpec,
    technique: str | Augmenter | None,
    *,
    n_runs: int = 5,
    seed: int | np.random.Generator | None = None,
) -> EvaluationResult:
    """Run the paper's protocol for one (dataset, model, technique) cell.

    *technique* may be ``None`` (baseline), a registered augmenter name, or
    an :class:`Augmenter` instance.  Augmentation operates on the raw
    training data; normalisation and imputation happen afterwards, inside
    the classification pipeline (as in the paper's sktime/tsai stack).
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1; got {n_runs}")
    rng = ensure_rng(seed)
    if isinstance(technique, str):
        augmenter: Augmenter | None = make_augmenter(technique)
        technique_name = technique
    elif technique is None:
        augmenter = None
        technique_name = "baseline"
    else:
        augmenter = technique
        technique_name = technique.name

    test_ready = _prepare(test)
    result = EvaluationResult(train.name, model_spec.name, technique_name)
    for run_rng in spawn(rng, n_runs):
        model = model_spec.build(run_rng)
        if augmenter is None:
            ready = _prepare(train)
            model.fit(ready.X, ready.y)
        elif model_spec.supports_extra:
            # Augmented samples go to the training part only (Sec. IV-D).
            augmented = augment_to_balance(train, augmenter, rng=run_rng)
            extra = augmented.subset(np.arange(train.n_series, augmented.n_series))
            ready = _prepare(train)
            extra_ready = _prepare(extra) if extra.n_series else None
            model.fit(
                ready.X, ready.y,
                X_extra=extra_ready.X if extra_ready is not None else None,
                y_extra=extra_ready.y if extra_ready is not None else None,
            )
        else:
            augmented = _prepare(augment_to_balance(train, augmenter, rng=run_rng))
            model.fit(augmented.X, augmented.y)
        result.accuracies.append(model.score(test_ready.X, test_ready.y))
    return result
