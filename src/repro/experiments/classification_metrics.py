"""Imbalance-aware classification metrics.

The paper reports plain accuracy; for an imbalanced-classification study a
downstream user also needs per-class views, so the library provides the
standard complement: confusion matrix, precision/recall/F1 (macro and per
class), balanced accuracy, and Cohen's kappa.  The extended ablation
benches use balanced accuracy to check that augmentation's minority-class
benefit is not hidden by majority-dominated plain accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "confusion_matrix",
    "precision_recall_f1",
    "balanced_accuracy",
    "cohen_kappa",
    "ClassificationReport",
    "classification_report",
]


def confusion_matrix(y_true, y_pred, *, n_classes: int | None = None) -> np.ndarray:
    """Counts ``C[i, j]`` = samples of true class i predicted as class j."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    k = n_classes or int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((k, k), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def precision_recall_f1(y_true, y_pred, *, n_classes: int | None = None
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class precision, recall and F1 (zero where undefined)."""
    matrix = confusion_matrix(y_true, y_pred, n_classes=n_classes)
    true_positive = np.diag(matrix).astype(float)
    predicted = matrix.sum(axis=0).astype(float)
    actual = matrix.sum(axis=1).astype(float)
    with np.errstate(invalid="ignore", divide="ignore"):
        precision = np.where(predicted > 0, true_positive / predicted, 0.0)
        recall = np.where(actual > 0, true_positive / actual, 0.0)
        denominator = precision + recall
        f1 = np.where(denominator > 0, 2 * precision * recall / denominator, 0.0)
    return precision, recall, f1


def balanced_accuracy(y_true, y_pred) -> float:
    """Mean per-class recall — the imbalance-robust accuracy."""
    matrix = confusion_matrix(y_true, y_pred)
    actual = matrix.sum(axis=1)
    present = actual > 0
    recalls = np.diag(matrix)[present] / actual[present]
    return float(recalls.mean())


def cohen_kappa(y_true, y_pred) -> float:
    """Cohen's kappa: agreement corrected for chance."""
    matrix = confusion_matrix(y_true, y_pred).astype(float)
    total = matrix.sum()
    observed = np.diag(matrix).sum() / total
    expected = (matrix.sum(axis=0) * matrix.sum(axis=1)).sum() / total**2
    if np.isclose(expected, 1.0):
        return 0.0
    return float((observed - expected) / (1.0 - expected))


@dataclass(frozen=True)
class ClassificationReport:
    """All metrics for one prediction set."""

    accuracy: float
    balanced_accuracy: float
    kappa: float
    precision: np.ndarray
    recall: np.ndarray
    f1: np.ndarray
    confusion: np.ndarray

    @property
    def macro_f1(self) -> float:
        return float(self.f1.mean())

    def render(self) -> str:
        lines = [
            f"accuracy          {self.accuracy:.4f}",
            f"balanced accuracy {self.balanced_accuracy:.4f}",
            f"macro F1          {self.macro_f1:.4f}",
            f"Cohen's kappa     {self.kappa:.4f}",
            "class  precision  recall  f1",
        ]
        for c, (p, r, f) in enumerate(zip(self.precision, self.recall, self.f1)):
            lines.append(f"{c:5d}  {p:9.3f}  {r:6.3f}  {f:5.3f}")
        return "\n".join(lines)


def classification_report(y_true, y_pred) -> ClassificationReport:
    """Compute every metric at once."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    precision, recall, f1 = precision_recall_f1(y_true, y_pred)
    return ClassificationReport(
        accuracy=float((y_true == y_pred).mean()),
        balanced_accuracy=balanced_accuracy(y_true, y_pred),
        kappa=cohen_kappa(y_true, y_pred),
        precision=precision,
        recall=recall,
        f1=f1,
        confusion=confusion_matrix(y_true, y_pred),
    )
