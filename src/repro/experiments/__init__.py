"""Experiment harness: the paper's protocol, grid runner and table renderers."""

from . import paper_reference
from .analysis import FindingsSummary, ImprovementCounts, count_improvements, summarize_findings
from .classification_metrics import (
    ClassificationReport,
    balanced_accuracy,
    classification_report,
    cohen_kappa,
    confusion_matrix,
    precision_recall_f1,
)
from .generative_quality import (
    FidelityReport,
    discriminative_score,
    fidelity_report,
    predictive_score,
)
from .statistics import (
    GainCorrelation,
    average_ranks,
    friedman_test,
    gain_characteristic_correlations,
    nemenyi_critical_difference,
    render_cd_diagram,
    wilcoxon_matrix,
)
from .figures import (
    FigureData,
    ascii_scatter,
    figure2_noise,
    figure3_smote,
    figure4_timegan,
    figure5_range,
    figure6_ohit,
)
from .engine import BASELINE, GridCheckpoint, GridJob, execute_jobs, plan_grid
from .metrics import best_relative_gain_percent, relative_gain
from .protocol import (
    EvaluationResult,
    ModelSpec,
    cell_seeds,
    evaluate,
    inceptiontime_spec,
    rocket_spec,
    run_single,
)
from .runner import GridResult, run_grid
from .scenario_harness import ScenarioReport, run_scenario, run_suite
from .tables import (
    render_accuracy_table,
    render_table1_roles,
    render_table2_families,
    render_table3_characteristics,
    render_table6_counts,
)

__all__ = [
    "paper_reference",
    "relative_gain",
    "best_relative_gain_percent",
    "ModelSpec",
    "EvaluationResult",
    "evaluate",
    "run_single",
    "cell_seeds",
    "rocket_spec",
    "inceptiontime_spec",
    "GridResult",
    "run_grid",
    "ScenarioReport",
    "run_scenario",
    "run_suite",
    "BASELINE",
    "GridJob",
    "GridCheckpoint",
    "plan_grid",
    "execute_jobs",
    "ImprovementCounts",
    "count_improvements",
    "FindingsSummary",
    "summarize_findings",
    "render_table1_roles",
    "render_table2_families",
    "render_table3_characteristics",
    "render_accuracy_table",
    "render_table6_counts",
    "FigureData",
    "figure2_noise",
    "figure3_smote",
    "figure4_timegan",
    "figure5_range",
    "figure6_ohit",
    "ascii_scatter",
    "confusion_matrix",
    "precision_recall_f1",
    "balanced_accuracy",
    "cohen_kappa",
    "ClassificationReport",
    "classification_report",
    "average_ranks",
    "friedman_test",
    "wilcoxon_matrix",
    "nemenyi_critical_difference",
    "render_cd_diagram",
    "GainCorrelation",
    "gain_characteristic_correlations",
    "discriminative_score",
    "predictive_score",
    "FidelityReport",
    "fidelity_report",
]
