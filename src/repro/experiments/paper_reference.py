"""The paper's published numbers, used for paper-vs-measured comparisons.

Tables IV and V report test accuracy (in %) for the baseline model, five
augmentation configurations and the best-technique relative improvement;
Table VI counts improvement occurrences per technique family.
"""

from __future__ import annotations

__all__ = [
    "TECHNIQUE_COLUMNS",
    "ROCKET_TABLE4",
    "INCEPTIONTIME_TABLE5",
    "TABLE6_COUNTS",
    "ROCKET_AVERAGE_IMPROVEMENT",
    "INCEPTIONTIME_AVERAGE_IMPROVEMENT",
    "paper_improvement_percent",
    "paper_improved_datasets",
]

#: column order of Tables IV-V after the baseline column
TECHNIQUE_COLUMNS = ("noise1", "noise3", "noise5", "smote", "timegan")

# Table IV: ROCKET baseline, noise 1/3/5, SMOTE, TimeGAN, improvement (%).
ROCKET_TABLE4: dict[str, dict[str, float]] = {
    "CharacterTrajectories": {"baseline": 98.52, "noise1": 99.09, "noise3": 99.04, "noise5": 99.12, "smote": 98.47, "timegan": 99.19, "improvement": 0.68},
    "EigenWorms": {"baseline": 89.16, "noise1": 79.54, "noise3": 82.60, "noise5": 83.97, "smote": 91.15, "timegan": 88.93, "improvement": 2.23},
    "Epilepsy": {"baseline": 98.99, "noise1": 98.12, "noise3": 98.41, "noise5": 98.26, "smote": 98.55, "timegan": 99.28, "improvement": 0.29},
    "EthanolConcentration": {"baseline": 41.29, "noise1": 39.16, "noise3": 40.08, "noise5": 40.53, "smote": 42.43, "timegan": 42.05, "improvement": 2.76},
    "FingerMovements": {"baseline": 52.20, "noise1": 54.80, "noise3": 54.00, "noise5": 55.00, "smote": 53.80, "timegan": 54.80, "improvement": 5.36},
    "Handwriting": {"baseline": 58.71, "noise1": 59.13, "noise3": 56.61, "noise5": 56.78, "smote": 59.91, "timegan": 57.93, "improvement": 2.04},
    "Heartbeat": {"baseline": 73.76, "noise1": 73.07, "noise3": 74.63, "noise5": 72.59, "smote": 75.32, "timegan": 74.34, "improvement": 2.11},
    "LSST": {"baseline": 63.84, "noise1": 61.97, "noise3": 62.54, "noise5": 62.64, "smote": 61.39, "timegan": 63.78, "improvement": -0.09},
    "PEMS-SF": {"baseline": 82.43, "noise1": 83.93, "noise3": 82.66, "noise5": 83.35, "smote": 83.35, "timegan": 82.31, "improvement": 1.82},
    "PenDigits": {"baseline": 97.87, "noise1": 97.77, "noise3": 97.75, "noise5": 97.71, "smote": 97.72, "timegan": 97.66, "improvement": -0.10},
    "RacketSports": {"baseline": 90.66, "noise1": 90.92, "noise3": 91.05, "noise5": 90.53, "smote": 91.32, "timegan": 91.58, "improvement": 1.01},
    "SelfRegulationSCP1": {"baseline": 85.39, "noise1": 84.85, "noise3": 85.19, "noise5": 85.19, "smote": 84.51, "timegan": 84.98, "improvement": -0.23},
    "SpokenArabicDigits": {"baseline": 96.20, "noise1": 98.34, "noise3": 98.23, "noise5": 98.26, "smote": 96.44, "timegan": 98.40, "improvement": 2.29},
}

# Table V: InceptionTime baseline, noise 1/3/5, SMOTE, TimeGAN, improvement (%).
INCEPTIONTIME_TABLE5: dict[str, dict[str, float]] = {
    "CharacterTrajectories": {"baseline": 99.51, "noise1": 99.51, "noise3": 99.30, "noise5": 99.20, "smote": 99.55, "timegan": 99.41, "improvement": 0.04},
    "EigenWorms": {"baseline": 92.37, "noise1": 92.62, "noise3": 89.31, "noise5": 89.57, "smote": 94.66, "timegan": 86.77, "improvement": 2.48},
    "Epilepsy": {"baseline": 97.10, "noise1": 97.39, "noise3": 96.81, "noise5": 96.96, "smote": 97.25, "timegan": 96.96, "improvement": 0.30},
    "EthanolConcentration": {"baseline": 23.19, "noise1": 24.33, "noise3": 20.15, "noise5": 22.81, "smote": 24.52, "timegan": 23.57, "improvement": 5.74},
    "FingerMovements": {"baseline": 53.20, "noise1": 50.40, "noise3": 48.60, "noise5": 47.80, "smote": 51.00, "timegan": 48.40, "improvement": -4.14},
    "Handwriting": {"baseline": 64.33, "noise1": 60.78, "noise3": 58.52, "noise5": 58.19, "smote": 63.29, "timegan": 57.84, "improvement": -1.62},
    "Heartbeat": {"baseline": 71.22, "noise1": 71.41, "noise3": 73.37, "noise5": 72.78, "smote": 71.51, "timegan": 70.15, "improvement": 3.02},
    "LSST": {"baseline": 69.40, "noise1": 65.25, "noise3": 62.40, "noise5": 62.04, "smote": 67.60, "timegan": 69.91, "improvement": 0.73},
    "PEMS-SF": {"baseline": 81.21, "noise1": 78.61, "noise3": 77.75, "noise5": 78.61, "smote": 78.61, "timegan": 78.61, "improvement": -3.20},
    "PenDigits": {"baseline": 98.96, "noise1": 98.74, "noise3": 98.77, "noise5": 98.99, "smote": 98.99, "timegan": 98.79, "improvement": 0.03},
    "RacketSports": {"baseline": 87.89, "noise1": 89.80, "noise3": 89.80, "noise5": 87.83, "smote": 88.03, "timegan": 88.82, "improvement": 2.17},
    "SelfRegulationSCP1": {"baseline": 76.18, "noise1": 74.74, "noise3": 76.25, "noise5": 76.25, "smote": 77.27, "timegan": 77.00, "improvement": 1.43},
    "SpokenArabicDigits": {"baseline": 99.14, "noise1": 98.93, "noise3": 98.79, "noise5": 99.41, "smote": 98.93, "timegan": 98.98, "improvement": 0.27},
}

#: Table VI — count of improvement occurrences over baseline (out of 13)
TABLE6_COUNTS = {
    "smote": {"rocket": 8, "inceptiontime": 8},
    "timegan": {"rocket": 7, "inceptiontime": 4},
    "noise": {"rocket": 7, "inceptiontime": 8},
}

ROCKET_AVERAGE_IMPROVEMENT = 1.55
INCEPTIONTIME_AVERAGE_IMPROVEMENT = 0.56


def paper_improvement_percent(table: dict[str, dict[str, float]], dataset: str) -> float:
    """Published best-technique relative improvement for *dataset* (in %)."""
    return table[dataset]["improvement"]


def paper_improved_datasets(table: dict[str, dict[str, float]]) -> int:
    """Number of datasets whose best augmentation beats the baseline (10/13)."""
    return sum(1 for row in table.values() if row["improvement"] > 0)
