"""Cross-table analysis: Table VI and the paper's qualitative findings.

Table VI counts, for each technique family, the number of datasets whose
augmented accuracy beats the baseline.  The noise family counts a dataset
when *any* of the three noise levels improves it (the paper reports a
single "Noise" row for the three levels).
"""

from __future__ import annotations

from dataclasses import dataclass

from .runner import GridResult

__all__ = ["ImprovementCounts", "count_improvements", "FindingsSummary", "summarize_findings"]

_NOISE_LEVELS = ("noise1", "noise3", "noise5")


@dataclass(frozen=True)
class ImprovementCounts:
    """One model's column of Table VI."""

    model: str
    smote: int
    timegan: int
    noise: int

    def as_dict(self) -> dict[str, int]:
        return {"smote": self.smote, "timegan": self.timegan, "noise": self.noise}


def count_improvements(grid: GridResult) -> ImprovementCounts:
    """Count improvement occurrences over baseline, per technique family."""
    smote = timegan = noise = 0
    for dataset in grid.datasets():
        baseline = grid.baseline_accuracy(dataset)
        if "smote" in grid.techniques and grid.accuracy(dataset, "smote") > baseline:
            smote += 1
        if "timegan" in grid.techniques and grid.accuracy(dataset, "timegan") > baseline:
            timegan += 1
        levels = [t for t in _NOISE_LEVELS if t in grid.techniques]
        if levels and any(grid.accuracy(dataset, t) > baseline for t in levels):
            noise += 1
    return ImprovementCounts(grid.model, smote=smote, timegan=timegan, noise=noise)


@dataclass(frozen=True)
class FindingsSummary:
    """The headline claims of Section IV-E for one model grid."""

    model: str
    n_datasets: int
    improved_datasets: int
    average_improvement_percent: float
    best_technique_by_dataset: dict[str, str]

    @property
    def no_single_dominator(self) -> bool:
        """The paper's 'no one-size-fits-all' claim: the best technique varies."""
        return len(set(self.best_technique_by_dataset.values())) > 1


def summarize_findings(grid: GridResult) -> FindingsSummary:
    """Extract the paper's headline findings from a grid."""
    best = {}
    for dataset in grid.datasets():
        augmented = grid.augmented_accuracies(dataset)
        best[dataset] = max(augmented, key=augmented.get)
    return FindingsSummary(
        model=grid.model,
        n_datasets=len(grid.datasets()),
        improved_datasets=grid.improved_dataset_count(),
        average_improvement_percent=grid.average_improvement(),
        best_technique_by_dataset=best,
    )
