"""Compute-core policy and the small op set the classifier families share.

The backend layer makes the serving fast path explicit instead of ad-hoc
per-classifier numpy: a :class:`ComputePolicy` names the dtype and
execution engine a model should run under, and the ops here are the only
places model math happens — batched grouped convolution
(:func:`grouped_conv`), the fused conv+PPV banks (:mod:`repro.backend.fused`),
ridge margin application (:func:`ridge_margins`, :func:`fold_ridge`) and
:func:`softmax`.

Two policies matter in practice:

* ``FIT_POLICY`` — ``float64`` / ``numpy``.  Fitting stays in double
  precision, bit-identical to the historical code path; every existing
  test and cached artifact is unchanged.
* ``INFERENCE_POLICY`` — ``float32`` / ``numpy``.  The serving default:
  kernel banks and ridge heads are cast once at policy-application time,
  the transform runs through the fused one-GEMM bank when the model is
  small enough to unroll, and probabilities come out within a documented
  tolerance of the float64 path (labels bit-identical in practice —
  ridge margins are far wider than float32 noise; the parity suite pins
  this).

The ``numba`` engine is **optional**: when numba is not importable the
policy silently resolves to ``numpy`` — engine selection may change
speed, never answers, and a missing accelerator must never take serving
down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ComputePolicy",
    "FIT_POLICY",
    "INFERENCE_POLICY",
    "apply_folded_ridge",
    "apply_inference_policy",
    "fold_ridge",
    "grouped_conv",
    "numba_available",
    "ridge_margins",
    "softmax",
]

_DTYPES = {"float32": np.float32, "float64": np.float64}
_ENGINES = ("numpy", "numba")


def numba_available() -> bool:
    """Whether the optional numba engine can actually run.

    Imported lazily and memoised by :mod:`repro.backend.numba_engine`;
    the answer gates engine resolution, never correctness.
    """
    from . import numba_engine

    return numba_engine.NUMBA_AVAILABLE


@dataclass(frozen=True)
class ComputePolicy:
    """Execution policy for model math: dtype and engine.

    Parameters
    ----------
    dtype:
        ``"float64"`` (the fit-time default) or ``"float32"`` (the
        inference default).  Under float32 the classifier families cast
        their kernel banks and ridge heads once, then run every predict
        in single precision.
    engine:
        ``"numpy"`` or ``"numba"``.  The numba engine is best-effort:
        :meth:`resolved_engine` falls back to numpy silently when numba
        is not importable, so a policy recorded at publish time on a
        numba-equipped box still loads everywhere.
    """

    dtype: str = "float64"
    engine: str = "numpy"

    def __post_init__(self):
        if self.dtype not in _DTYPES:
            raise ValueError(
                f"unknown compute dtype {self.dtype!r}; "
                f"expected one of {sorted(_DTYPES)}"
            )
        if self.engine not in _ENGINES:
            raise ValueError(
                f"unknown compute engine {self.engine!r}; "
                f"expected one of {_ENGINES}"
            )

    @property
    def np_dtype(self) -> np.dtype:
        """The numpy dtype this policy computes in."""
        return np.dtype(_DTYPES[self.dtype])

    def resolved_engine(self) -> str:
        """The engine that will actually run: ``numba`` only when it is
        importable, ``numpy`` otherwise (the documented silent fallback)."""
        if self.engine == "numba" and not numba_available():
            return "numpy"
        return self.engine

    def as_dict(self) -> dict:
        """JSON-ready form, as recorded in registry metadata at publish."""
        return {"dtype": self.dtype, "engine": self.engine}

    @classmethod
    def from_dict(cls, data: dict | None) -> "ComputePolicy | None":
        """Rebuild a policy from :meth:`as_dict` output (``None`` passes
        through, so metadata without a policy stays policy-less)."""
        if not data:
            return None
        return cls(dtype=data.get("dtype", "float64"),
                   engine=data.get("engine", "numpy"))


#: fitting stays double precision — the historical, bit-pinned path
FIT_POLICY = ComputePolicy("float64", "numpy")
#: the serving default: float32 banks, fused path, numpy engine
INFERENCE_POLICY = ComputePolicy("float32", "numpy")


def apply_inference_policy(model, policy: ComputePolicy | None):
    """Apply *policy* to *model* in place (returns the model).

    Families that support policies implement ``set_inference_policy``;
    everything else is left untouched — the policy then simply describes
    the dtype its math already runs in (float64), so applying a policy
    can never break a family that has not opted in.
    """
    if policy is not None:
        setter = getattr(model, "set_inference_policy", None)
        if setter is not None:
            setter(policy)
    return model


# --------------------------------------------------------------------------- #
# ops
# --------------------------------------------------------------------------- #


def softmax(scores: np.ndarray, dtype: np.dtype | None = None) -> np.ndarray:
    """Row-wise softmax of a ``(n, n_classes)`` score matrix.

    Numerically stable (row max subtracted) and strictly order-preserving
    per row, so the argmax of the output equals the argmax of the input —
    the property ``predict``/``predict_proba`` agreement rests on.  With
    *dtype* ``None`` the historical float64 behaviour is kept exactly;
    float32 computes in single precision end to end.
    """
    scores = np.asarray(scores, dtype=dtype if dtype is not None else np.float64)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D; got ndim={scores.ndim}")
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def ridge_margins(features: np.ndarray, mean: np.ndarray, std: np.ndarray,
                  coef: np.ndarray, target_mean: np.ndarray) -> np.ndarray:
    """Ridge margin scores: ``((features - mean) / std) @ coef + target_mean``.

    The float64 reference application, operation-for-operation the
    historical ``RidgeClassifierCV.decision_function`` — kept here so the
    fit-time path and the folded float32 path (:func:`fold_ridge`) are
    two views of one op with a pinned reference.
    """
    features = np.asarray(features, dtype=np.float64)
    features = (features - mean) / std
    return features @ coef + target_mean


def fold_ridge(mean: np.ndarray, std: np.ndarray, coef: np.ndarray,
               target_mean: np.ndarray, dtype=np.float32
               ) -> tuple[np.ndarray, np.ndarray]:
    """Fold feature normalisation into the coefficient matrix.

    ``((f - mean) / std) @ coef + tm  ==  f @ (coef / std) + (tm - (mean
    / std) @ coef)``, so inference needs one GEMM and one add instead of
    two broadcasts and a GEMM.  Returns ``(scale_coef, intercept)`` in
    *dtype*; the fold changes floating-point association, which is why it
    is reserved for the tolerance-documented float32 inference path.
    """
    scale_coef = (coef / std[:, None]).astype(dtype)
    intercept = (target_mean - (mean / std) @ coef).astype(dtype)
    return scale_coef, intercept


def apply_folded_ridge(features: np.ndarray, scale_coef: np.ndarray,
                       intercept: np.ndarray) -> np.ndarray:
    """Margins from a :func:`fold_ridge` head: ``features @ scale_coef +
    intercept`` in the head's dtype (one GEMM, one add)."""
    features = np.asarray(features, dtype=scale_coef.dtype)
    return features @ scale_coef + intercept


def grouped_conv(X: np.ndarray, weights: np.ndarray, biases: np.ndarray,
                 dilation: int, padding: int,
                 dtype=np.float64) -> np.ndarray:
    """Batched dilated convolution of one kernel group.

    *X* is a panel ``(n, channels, length)``; *weights* ``(k, channels,
    kernel_length)`` share one ``(dilation, padding)``; the result is
    ``(n, k, out_len)`` responses with *biases* added.  One batched
    matmul per call — ``(1, k, c*l) @ (n, c*l, out)`` over unfolded
    windows — which beats einsum at these shapes (no contraction-path
    search, better BLAS blocking).  ``dtype=float64`` reproduces the
    historical ROCKET group convolution bit for bit; float32 casts the
    operands once and halves the bandwidth.
    """
    X = np.asarray(X)
    if X.dtype != dtype:
        X = X.astype(dtype)
    n, c, t = X.shape
    length = weights.shape[2]
    if padding:
        X = np.pad(X, ((0, 0), (0, 0), (padding, padding)))
        t = X.shape[2]
    span = (length - 1) * dilation + 1
    out_len = t - span + 1
    s_n, s_c, s_t = X.strides
    windows = np.lib.stride_tricks.as_strided(
        X,
        shape=(n, c, length, out_len),
        strides=(s_n, s_c, s_t * dilation, s_t),
        writeable=False,
    )
    if weights.dtype != dtype:
        weights = weights.astype(dtype)
    kernel_matrix = weights.reshape(len(weights), c * length)
    window_matrix = np.ascontiguousarray(windows).reshape(n, c * length, out_len)
    responses = np.matmul(kernel_matrix[None], window_matrix)
    return responses + np.asarray(biases, dtype=dtype)[None, :, None]
