"""Fused dilated-conv + PPV pooling as one matmul-shaped pass.

The historical ROCKET/MiniRocket transforms loop over kernel groups —
pad, unfold, copy, matmul, pool, ~8 numpy dispatches per group, dozens
of groups — which is dispatch-bound at serving shapes (one window at a
time).  The fused path *unrolls the convolution operator*: every kernel
tap of every group at every output position becomes one row of a single
dense matrix ``A``, built once per (model, policy), so the whole
transform collapses to

    responses = X_padded_flat @ A.T          # ONE GEMM
    ppv/max   = segment reductions over rows # reduceat

The unrolled matrix does not exploit the Toeplitz structure of the
convolution, so it performs roughly ``padded_length / kernel_length``
times more FLOPs than the grouped loop.  That trade is a large win
exactly where serving lives — short windows, small-to-medium kernel
banks, batch sizes the micro-batcher produces — and a loss for long
series or huge banks, so :meth:`RocketBank.build` /
:meth:`MiniRocketBank.build` refuse (return ``None``) when the matrix
would exceed ``max_bytes`` or the FLOP blowup exceeds ``max_blowup``;
callers then fall back to the grouped op at the policy dtype.

Feature ordering is pinned to the historical layout (all PPV columns in
group order, then all max columns for ROCKET; entry-major, kernel,
quantile for MiniRocket) so a fused transform feeds the same ridge head
the grouped transform trained.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MiniRocketBank", "RocketBank"]

#: refuse to unroll past this matrix size — memory, and a proxy for the
#: GEMM being FLOP-bound rather than dispatch-bound
MAX_BANK_BYTES = 32 * 1024 * 1024
#: refuse when the unrolled GEMM would do this many times the grouped
#: loop's FLOPs — measured crossover: fused still wins ~1.5-2x at blowup
#: 20 (short-window serving is dispatch-bound, not FLOP-bound) and only
#: reaches parity at batch-32 around blowup ~32; past that the grouped
#: loop is the better op
MAX_FLOP_BLOWUP = 32.0


def _center_columns(c: int, T: int, pad: int) -> np.ndarray:
    """Column indices of the unpadded samples inside a ``(c, T + 2*pad)``
    flattened layout — the only columns a bank needs to keep."""
    Tp = T + 2 * pad
    return (np.arange(c)[:, None] * Tp + pad + np.arange(T)[None, :]).ravel()


class RocketBank:
    """Unrolled fused conv+PPV/max operator for a fitted ROCKET transform.

    Built once per (fitted transform, policy) by :meth:`build`; applied
    per panel by :meth:`transform`.  Rows of the unrolled matrix are
    ordered ``(group, kernel, output position)`` with per-kernel segments
    contiguous, so PPV and max are single ``reduceat`` calls.
    """

    def __init__(self, matrix_t: np.ndarray, bias: np.ndarray,
                 starts: np.ndarray, seg_len: np.ndarray,
                 n_channels: int, length: int):
        self.matrix_t = matrix_t  # (c*T, R) contiguous, GEMM-ready
        self.bias = bias  # (R,) per-row kernel bias
        self.starts = starts  # (K,) per-kernel segment starts
        self.seg_len = seg_len  # (K,) per-kernel segment lengths
        self.n_channels = n_channels
        self.length = length
        self.dtype = matrix_t.dtype

    @property
    def nbytes(self) -> int:
        """Size of the unrolled matrix (the bank's memory footprint)."""
        return self.matrix_t.nbytes

    @classmethod
    def build(cls, groups, fit_shape: tuple[int, int], dtype=np.float32, *,
              max_bytes: int = MAX_BANK_BYTES,
              max_blowup: float = MAX_FLOP_BLOWUP) -> "RocketBank | None":
        """Unroll *groups* (objects with ``length/dilation/padding/weights/
        biases``) fitted on *fit_shape*; ``None`` when unrolling would be
        bigger than *max_bytes* or slower than the grouped loop
        (FLOP blowup above *max_blowup*)."""
        c, T = fit_shape
        pmax = max(g.padding for g in groups)
        Tp = T + 2 * pmax
        total_rows = 0
        direct_flops = 0
        out_lens = []
        for g in groups:
            out_len = T + 2 * g.padding - (g.length - 1) * g.dilation
            if out_len < 1:
                return None
            out_lens.append(out_len)
            k = len(g.weights)
            total_rows += k * out_len
            direct_flops += k * (c * g.length) * out_len
        # Zero-padding columns of the unrolled matrix only ever multiply
        # zeros, so the stored bank keeps just the center c*T columns —
        # the transform then needs no padding copy and a smaller GEMM.
        cols = c * T
        itemsize = np.dtype(dtype).itemsize
        if total_rows * cols * itemsize > max_bytes:
            return None
        if total_rows * cols > max_blowup * direct_flops:
            return None

        matrix = np.zeros((total_rows, c * Tp), dtype=dtype)
        bias = np.empty(total_rows, dtype=dtype)
        starts: list[int] = []
        row = 0
        for g, out_len in zip(groups, out_lens):
            k = len(g.weights)
            offset = pmax - g.padding
            block = matrix[row:row + k * out_len].reshape(k, out_len, c, Tp)
            s_k, s_o, s_c, s_t = block.strides
            # Writable strided view whose last axis lands on the dilated
            # taps and whose output axis shifts one column per position:
            # one assignment scatters the whole group.
            taps = np.lib.stride_tricks.as_strided(
                block[:, :, :, offset:],
                shape=(k, out_len, c, g.length),
                strides=(s_k, s_o + s_t, s_c, s_t * g.dilation),
            )
            taps[:] = np.asarray(g.weights, dtype=dtype)[:, None, :, :]
            bias[row:row + k * out_len] = np.repeat(
                np.asarray(g.biases, dtype=dtype), out_len)
            starts.extend(row + kk * out_len for kk in range(k))
            row += k * out_len
        starts_arr = np.asarray(starts, dtype=np.intp)
        seg_len = np.diff(np.append(starts_arr, total_rows)).astype(dtype)
        center = _center_columns(c, T, pmax)
        return cls(np.ascontiguousarray(matrix[:, center].T), bias,
                   starts_arr, seg_len, c, T)

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Fused features for a panel ``(n, channels, length)``: one GEMM,
        a bias add, and two segment reductions → ``(n, 2 * n_kernels)``
        (PPV columns first, then max, matching the grouped layout)."""
        dtype = self.dtype
        n = X.shape[0]
        flat = np.ascontiguousarray(X, dtype=dtype).reshape(n, -1)
        responses = flat @ self.matrix_t  # (n, R)
        responses += self.bias
        positive = (responses > 0).astype(dtype)
        ppv = np.add.reduceat(positive, self.starts, axis=1) / self.seg_len
        maxima = np.maximum.reduceat(responses, self.starts, axis=1)
        return np.concatenate([ppv, maxima], axis=1)


class MiniRocketBank:
    """Unrolled fused conv+PPV operator for a fitted MiniRocket transform.

    MiniRocket's dilations all use ``padding = span // 2`` so every plan
    entry shares one output length; the unrolled responses reshape to
    ``(n, entries, 84, out_len)`` and the quantile-threshold PPV becomes
    a single vectorised comparison over all entries at once.
    """

    def __init__(self, matrix_t: np.ndarray, thresholds: np.ndarray,
                 n_channels: int, length: int,
                 n_entries: int, n_kernels: int, out_len: int):
        self.matrix_t = matrix_t  # (c*T, E*k*out) contiguous
        self.thresholds = thresholds  # (E, k, f) bias quantiles
        self.n_channels = n_channels
        self.length = length
        self.n_entries = n_entries
        self.n_kernels = n_kernels
        self.out_len = out_len
        self.dtype = matrix_t.dtype

    @property
    def nbytes(self) -> int:
        """Size of the unrolled matrix (the bank's memory footprint)."""
        return self.matrix_t.nbytes

    @classmethod
    def build(cls, plan, kernels: np.ndarray, fit_shape: tuple[int, int],
              dtype=np.float32, *, max_bytes: int = MAX_BANK_BYTES,
              max_blowup: float = MAX_FLOP_BLOWUP) -> "MiniRocketBank | None":
        """Unroll a fitted MiniRocket *plan* (``(dilation, padding,
        channel_choice, biases)`` entries over the 84 canonical
        *kernels*); ``None`` under the same size/blowup gates as
        :meth:`RocketBank.build`, or when the entries disagree on output
        length (which the fused reshape requires)."""
        c, T = fit_shape
        n_kernels, kernel_length = kernels.shape
        pmax = max(p for _, p, _, _ in plan)
        Tp = T + 2 * pmax
        out_lens = {T + 2 * p - (kernel_length - 1) * d for d, p, _, _ in plan}
        if len(out_lens) != 1:
            return None
        out_len = out_lens.pop()
        if out_len < 1:
            return None
        feature_counts = {b.shape[1] for _, _, _, b in plan}
        if len(feature_counts) != 1:
            return None
        n_entries = len(plan)
        total_rows = n_entries * n_kernels * out_len
        cols = c * T  # padding columns are dropped, as in RocketBank
        itemsize = np.dtype(dtype).itemsize
        if total_rows * cols * itemsize > max_bytes:
            return None
        direct_flops = n_entries * n_kernels * (kernel_length * out_len)
        if total_rows * cols > max_blowup * direct_flops:
            return None

        matrix = np.zeros((n_entries, n_kernels, out_len, c, Tp), dtype=dtype)
        thresholds = np.empty((n_entries, n_kernels, feature_counts.pop()),
                              dtype=dtype)
        k_idx = np.arange(n_kernels)
        o_idx = np.arange(out_len)
        for e, (dilation, padding, channel_choice, biases) in enumerate(plan):
            offset = pmax - padding
            channels = np.asarray(channel_choice, dtype=np.intp)
            for tap in range(kernel_length):
                cols_at = offset + tap * dilation + o_idx
                matrix[e, k_idx[:, None], o_idx[None, :],
                       channels[:, None], cols_at[None, :]] = \
                    np.asarray(kernels[:, tap], dtype=dtype)[:, None]
            thresholds[e] = np.asarray(biases, dtype=dtype)
        flat = matrix.reshape(total_rows, c * Tp)
        center = _center_columns(c, T, pmax)
        return cls(np.ascontiguousarray(flat[:, center].T), thresholds, c, T,
                   n_entries, n_kernels, out_len)

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Fused PPV features for a panel ``(n, channels, length)``: one
        GEMM plus one vectorised quantile comparison →
        ``(n, entries * 84 * features_per_combo)`` in plan order."""
        dtype = self.dtype
        n = X.shape[0]
        flat = np.ascontiguousarray(X, dtype=dtype).reshape(n, -1)
        responses = flat @ self.matrix_t
        responses = responses.reshape(n, self.n_entries, self.n_kernels,
                                      self.out_len)
        ppv = (responses[:, :, :, None, :]
               > self.thresholds[None, :, :, :, None]).mean(axis=-1,
                                                            dtype=dtype)
        return ppv.reshape(n, -1)
