"""repro.backend — the compute core every model-math layer runs on.

One place owns dtype and engine decisions: a :class:`ComputePolicy`
names them, the op set (grouped/fused convolution, ridge margins,
softmax) executes them, and everything above — classifier families,
serialization, the serving registry and prediction service — threads the
policy through instead of hard-coding numpy calls.  Fitting stays
float64 (``FIT_POLICY``, bit-identical to the historical path); serving
defaults to float32 (``INFERENCE_POLICY``) over the fused one-GEMM
banks; the optional numba engine is a silent speed-only fallback.  See
``docs/architecture.md`` (Backend layer) for the contract.
"""

from .bank import is_mmap_backed, open_npz
from .core import (
    FIT_POLICY,
    INFERENCE_POLICY,
    ComputePolicy,
    apply_folded_ridge,
    apply_inference_policy,
    fold_ridge,
    grouped_conv,
    numba_available,
    ridge_margins,
    softmax,
)
from .fused import MAX_BANK_BYTES, MAX_FLOP_BLOWUP, MiniRocketBank, RocketBank
from .parity import PROBA_ATOL, ParityReport, check_parity, parity_report

__all__ = [
    "ComputePolicy",
    "FIT_POLICY",
    "INFERENCE_POLICY",
    "MAX_BANK_BYTES",
    "MAX_FLOP_BLOWUP",
    "MiniRocketBank",
    "PROBA_ATOL",
    "ParityReport",
    "RocketBank",
    "apply_folded_ridge",
    "apply_inference_policy",
    "check_parity",
    "fold_ridge",
    "grouped_conv",
    "is_mmap_backed",
    "numba_available",
    "open_npz",
    "parity_report",
    "ridge_margins",
    "softmax",
]
