"""Correctness-parity sweep between compute policies.

The backend's contract is that a policy changes *speed*, never
*answers*: argmax labels must be bit-identical across policies, and
probabilities must agree within a documented tolerance
(:data:`PROBA_ATOL`).  This module is the single implementation of that
check, used three ways:

* at publish time, to gate recording a non-default engine (numba) into
  model metadata — a model never ships with an engine that disagrees
  with the numpy reference;
* by the CI ``backend-parity`` job, sweeping float64-vs-float32 across
  every classifier family (and numpy-vs-numba where numba exists);
* by the test suite, as the assertion helper for the stream-parity and
  contract sweeps.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from .core import FIT_POLICY, ComputePolicy, apply_inference_policy

__all__ = ["PROBA_ATOL", "ParityReport", "parity_report", "check_parity"]

#: documented probability tolerance between the float64 reference and any
#: other policy (float32 banks, folded ridge heads, fused GEMM ordering,
#: numba loop ordering).  Ridge margins and softmax gaps between classes
#: are orders of magnitude wider in practice; the sweep pins that.
PROBA_ATOL = 1e-3


@dataclass(frozen=True)
class ParityReport:
    """Outcome of comparing one candidate policy against the reference."""

    labels_equal: bool
    max_proba_diff: float
    n_samples: int
    policy: ComputePolicy
    reference: ComputePolicy

    @property
    def ok(self) -> bool:
        """Whether the candidate satisfies the parity contract."""
        return self.labels_equal and self.max_proba_diff <= PROBA_ATOL

    def summary(self) -> str:
        """One-line human-readable verdict (used by CI and the bench)."""
        status = "OK" if self.ok else "FAIL"
        return (f"parity[{self.policy.dtype}/{self.policy.engine} vs "
                f"{self.reference.dtype}/{self.reference.engine}] {status}: "
                f"labels_equal={self.labels_equal} "
                f"max_proba_diff={self.max_proba_diff:.3e} "
                f"(atol={PROBA_ATOL:g}, n={self.n_samples})")


def _predict_under(model, X, policy: ComputePolicy):
    """Labels and probabilities from a policy-applied deep copy of *model*.

    Copying keeps the caller's model untouched — policy application
    mutates banks in place, and the sweep must not leave the published
    model running under the candidate policy before it passes.
    """
    candidate = apply_inference_policy(copy.deepcopy(model), policy)
    labels = np.asarray(candidate.predict(X))
    proba_fn = getattr(candidate, "predict_proba", None)
    probas = np.asarray(proba_fn(X)) if proba_fn is not None else None
    return labels, probas


def parity_report(model, X, policy: ComputePolicy,
                  reference: ComputePolicy = FIT_POLICY) -> ParityReport:
    """Compare *model* under *policy* against it under *reference* on *X*.

    Labels are compared exactly (the contract is bit-identical argmax);
    probabilities by max absolute difference.  Families without
    ``predict_proba`` report a zero probability diff — labels are the
    whole contract there.
    """
    X = np.asarray(X, dtype=np.float64)
    ref_labels, ref_probas = _predict_under(model, X, reference)
    cand_labels, cand_probas = _predict_under(model, X, policy)
    labels_equal = bool(np.array_equal(ref_labels, cand_labels))
    if ref_probas is None or cand_probas is None:
        max_diff = 0.0
    else:
        max_diff = float(np.max(np.abs(
            ref_probas.astype(np.float64) - cand_probas.astype(np.float64))))
    return ParityReport(labels_equal=labels_equal, max_proba_diff=max_diff,
                        n_samples=int(X.shape[0]), policy=policy,
                        reference=reference)


def check_parity(model, X, policy: ComputePolicy,
                 reference: ComputePolicy = FIT_POLICY) -> ParityReport:
    """:func:`parity_report`, raising ``ValueError`` on failure.

    This is the publish gate: recording a policy into model metadata goes
    through here first, so registry artifacts never advertise a policy
    that disagrees with the float64 reference.
    """
    report = parity_report(model, X, policy, reference)
    if not report.ok:
        raise ValueError(f"compute-policy parity failure: {report.summary()}")
    return report
