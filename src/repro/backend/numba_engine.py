"""Optional numba engine: JIT-compiled fused conv+PPV kernels.

Numba is **not** a dependency of this package.  When it is importable,
``ComputePolicy(engine="numba")`` resolves here and the transforms run
through the JIT kernels below — true fused loops that never materialise
the response matrix.  When it is missing, ``NUMBA_AVAILABLE`` is False
and the policy resolves to the numpy engine silently: engine selection
may change speed, never answers, and a model published on a
numba-equipped box must keep serving on one without.

The kernels mirror the numpy ops' arithmetic exactly (same accumulation
dtype, same comparison direction), and the publish-time parity sweep
(:mod:`repro.backend.parity`) plus the CI backend-parity job hold them
to the numpy path's answers before an engine choice is ever recorded.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NUMBA_AVAILABLE", "minirocket_entry_ppv", "rocket_group_ppv_max"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_AVAILABLE = True
except ImportError:
    numba = None
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True, fastmath=False)
    def _rocket_group(Xp, weights, biases, dilation, out_len):
        n, c, _ = Xp.shape
        k = weights.shape[0]
        length = weights.shape[2]
        ppv = np.zeros((n, k), dtype=Xp.dtype)
        maxima = np.empty((n, k), dtype=Xp.dtype)
        for i in range(n):
            for j in range(k):
                best = -np.inf
                positive = 0
                for o in range(out_len):
                    acc = biases[j]
                    for ch in range(c):
                        for tap in range(length):
                            acc += weights[j, ch, tap] * Xp[i, ch, o + tap * dilation]
                    if acc > 0:
                        positive += 1
                    if acc > best:
                        best = acc
                ppv[i, j] = positive / out_len
                maxima[i, j] = best
        return ppv, maxima

    @numba.njit(cache=True, fastmath=False)
    def _minirocket_entry(Xp, kernels, channel_choice, thresholds, dilation,
                          out_len):
        n = Xp.shape[0]
        k, length = kernels.shape
        f = thresholds.shape[1]
        ppv = np.zeros((n, k, f), dtype=Xp.dtype)
        for i in range(n):
            for j in range(k):
                ch = channel_choice[j]
                for o in range(out_len):
                    acc = 0.0
                    for tap in range(length):
                        acc += kernels[j, tap] * Xp[i, ch, o + tap * dilation]
                    for q in range(f):
                        if acc > thresholds[j, q]:
                            ppv[i, j, q] += 1
        return ppv / out_len


def _pad(X: np.ndarray, padding: int, dtype) -> np.ndarray:
    """Zero-pad a panel's time axis on both sides, casting to *dtype*."""
    X = np.asarray(X, dtype=dtype)
    if not padding:
        return np.ascontiguousarray(X)
    n, c, t = X.shape
    padded = np.zeros((n, c, t + 2 * padding), dtype=dtype)
    padded[:, :, padding:padding + t] = X
    return padded


def rocket_group_ppv_max(X: np.ndarray, weights: np.ndarray,
                         biases: np.ndarray, dilation: int, padding: int,
                         dtype=np.float32) -> tuple[np.ndarray, np.ndarray]:
    """Fused PPV+max for one ROCKET kernel group via the JIT kernel.

    Only callable when ``NUMBA_AVAILABLE``; the transforms guard on the
    resolved engine, so a missing numba never reaches this point.
    """
    if not NUMBA_AVAILABLE:  # pragma: no cover - guarded by resolved_engine
        raise RuntimeError("numba engine requested but numba is not installed")
    Xp = _pad(X, padding, dtype)
    t = Xp.shape[2]
    out_len = t - ((weights.shape[2] - 1) * dilation + 1) + 1
    return _rocket_group(Xp, np.ascontiguousarray(weights, dtype=dtype),
                         np.asarray(biases, dtype=dtype), dilation, out_len)


def minirocket_entry_ppv(X: np.ndarray, kernels: np.ndarray,
                         channel_choice: np.ndarray, thresholds: np.ndarray,
                         dilation: int, padding: int,
                         dtype=np.float32) -> np.ndarray:
    """Fused quantile-threshold PPV for one MiniRocket plan entry via the
    JIT kernel; same guard as :func:`rocket_group_ppv_max`."""
    if not NUMBA_AVAILABLE:  # pragma: no cover - guarded by resolved_engine
        raise RuntimeError("numba engine requested but numba is not installed")
    Xp = _pad(X, padding, dtype)
    t = Xp.shape[2]
    out_len = t - ((kernels.shape[1] - 1) * dilation + 1) + 1
    return _minirocket_entry(Xp, np.ascontiguousarray(kernels, dtype=dtype),
                             np.asarray(channel_choice, dtype=np.intp),
                             np.ascontiguousarray(thresholds, dtype=dtype),
                             dilation, out_len)
