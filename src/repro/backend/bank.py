"""Zero-copy model banks: memory-mapped arrays out of ``.npz`` archives.

``np.load(..., mmap_mode="r")`` silently ignores the mmap request for
zipped archives, so registry objects were always decompressed and copied
on every (re)load — the dominant cost of the serving LRU churn path.
This module implements the mmap for real: model archives are written
*uncompressed* (`np.savez`), each zip member is located by parsing its
local file header, and the ``.npy`` payload is handed back as an ndarray
view into **one** shared memory map of the archive file.  A reloaded
kernel bank therefore costs a handful of page-table entries, not a copy;
the actual bytes fault in lazily from the page cache, which still holds
them from the previous residency.

Compressed members (archives written by older ``save_model`` versions
with ``np.savez_compressed``) fall back to an eager read, member by
member, so every historical artifact keeps loading — just without the
zero-copy fast path.
"""

from __future__ import annotations

import mmap as _mmap
import zipfile
from io import BytesIO
from pathlib import Path

import numpy as np
from numpy.lib import format as _npy_format

__all__ = ["open_npz", "is_mmap_backed"]

_LOCAL_HEADER_LEN = 30  # fixed part of a zip local file header
_LOCAL_HEADER_MAGIC = b"PK\x03\x04"


def is_mmap_backed(array: np.ndarray) -> bool:
    """Whether *array* (or any ancestor in its ``base`` chain) is backed
    by a memory map — i.e. the data still lives in the archive file
    rather than in a private copy.  The eviction/reload tests assert
    this."""
    node = array
    while node is not None:
        if isinstance(node, (np.memmap, _mmap.mmap)):
            return True
        if isinstance(node, memoryview) and isinstance(node.obj, _mmap.mmap):
            return True
        node = getattr(node, "base", None)
    return False


def _member_payload_offset(buffer, info: zipfile.ZipInfo) -> int:
    """Absolute offset of a stored zip member's payload within *buffer*.

    ``ZipInfo.header_offset`` points at the member's local file header;
    the payload starts after its fixed 30 bytes plus the (variable) name
    and extra fields, whose lengths only the local header itself records
    — the central directory's copies can legally differ.
    """
    header = buffer[info.header_offset:info.header_offset + _LOCAL_HEADER_LEN]
    if len(header) != _LOCAL_HEADER_LEN or \
            header[:4] != _LOCAL_HEADER_MAGIC:
        raise ValueError("corrupt zip member header in model archive")
    name_len = int.from_bytes(header[26:28], "little")
    extra_len = int.from_bytes(header[28:30], "little")
    return info.header_offset + _LOCAL_HEADER_LEN + name_len + extra_len


def _read_npy_header(handle) -> tuple[tuple, bool, np.dtype, int]:
    """Parse an ``.npy`` stream header: (shape, fortran_order, dtype,
    header_length_in_bytes)."""
    version = _npy_format.read_magic(handle)
    if version == (1, 0):
        shape, fortran, dtype = _npy_format.read_array_header_1_0(handle)
    else:
        shape, fortran, dtype = _npy_format.read_array_header_2_0(handle)
    return shape, fortran, dtype, handle.tell()


def open_npz(path, *, mmap: bool = True) -> dict[str, np.ndarray]:
    """Load every array in a ``.npz`` archive, memory-mapping when possible.

    With *mmap* (the default), arrays whose zip members are stored
    uncompressed come back as read-only views into one shared memory map
    of *path* — zero copy, lazily faulted, one ``mmap`` syscall per
    archive rather than per member.  Compressed members, object dtypes
    and ``mmap=False`` read eagerly.  The result is a plain dict; the
    shared map lives exactly as long as arrays referencing it do (it is
    their ``base``), so callers hold no file handles to manage.
    """
    path = Path(path)
    out: dict[str, np.ndarray] = {}
    shared = None  # the one mmap, created lazily on the first stored member
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            if not mmap or info.compress_type != zipfile.ZIP_STORED:
                with archive.open(info) as member:
                    out[name] = _npy_format.read_array(member,
                                                       allow_pickle=False)
                continue
            if shared is None:
                with open(path, "rb") as handle:
                    shared = _mmap.mmap(handle.fileno(), 0,
                                        access=_mmap.ACCESS_READ)
            payload = _member_payload_offset(shared, info)
            shape, fortran, dtype, header_len = _read_npy_header(
                BytesIO(shared[payload:payload + min(info.file_size, 4096)]))
            if dtype.hasobject:  # pragma: no cover - save path refuses these
                with archive.open(info) as member:
                    out[name] = _npy_format.read_array(member,
                                                       allow_pickle=False)
                continue
            count = int(np.prod(shape))
            flat = np.frombuffer(shared, dtype=dtype, count=count,
                                 offset=payload + header_len)
            out[name] = flat.reshape(tuple(shape),
                                     order="F" if fortran else "C")
    return out
