"""Decomposition techniques: STL, EMD, FastICA."""

import numpy as np
import pytest

from repro.augmentation import (
    EMDRecombination,
    ICAMixing,
    STLRecombination,
    emd,
    fast_ica,
    stl_decompose,
)


class TestSTL:
    def test_components_sum_to_series(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(60) + np.sin(np.arange(60) / 3)
        trend, seasonal, residual = stl_decompose(x, period=12)
        assert np.allclose(trend + seasonal + residual, x)

    def test_seasonal_is_periodic_and_centered(self):
        x = np.sin(2 * np.pi * np.arange(48) / 12)
        _, seasonal, _ = stl_decompose(x, period=12)
        assert np.allclose(seasonal[:12], seasonal[12:24], atol=1e-9)
        assert abs(seasonal.mean()) < 1e-9

    def test_trend_captures_slope(self):
        x = np.linspace(0, 10, 100)
        trend, _, _ = stl_decompose(x, period=10)
        # trend should be close to the line except near the edges
        assert np.abs(trend[20:80] - x[20:80]).max() < 0.5

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            stl_decompose(np.zeros((3, 4)), period=2)

    def test_recombination_keeps_trend(self, rng):
        t = np.linspace(0, 1, 64)
        X = (5 * t + np.sin(2 * np.pi * 8 * t)).reshape(1, 1, 64).repeat(4, axis=0)
        out = STLRecombination(period=8).transform(X, rng=rng)
        assert out.shape == X.shape
        # trend survives: start low, end high
        assert (out[:, :, -8:].mean(axis=2) > out[:, :, :8].mean(axis=2)).all()


class TestEMD:
    def test_reconstruction_exact(self):
        rng = np.random.default_rng(1)
        t = np.linspace(0, 1, 128)
        x = np.sin(2 * np.pi * 3 * t) + 0.5 * np.sin(2 * np.pi * 17 * t) + rng.normal(0, 0.1, 128)
        components = emd(x)
        assert np.allclose(np.sum(components, axis=0), x, atol=1e-9)

    def test_multiple_imfs_for_multiscale_signal(self):
        t = np.linspace(0, 1, 256)
        x = np.sin(2 * np.pi * 2 * t) + np.sin(2 * np.pi * 40 * t)
        components = emd(x)
        assert len(components) >= 2

    def test_first_imf_is_fastest(self):
        t = np.linspace(0, 1, 256)
        x = np.sin(2 * np.pi * 2 * t) + np.sin(2 * np.pi * 40 * t)
        components = emd(x)
        zero_crossings = [
            int(np.sum(np.abs(np.diff(np.sign(c))) > 0) ) for c in components[:-1]
        ]
        assert zero_crossings == sorted(zero_crossings, reverse=True)

    def test_monotone_signal_no_imfs(self):
        components = emd(np.linspace(0, 1, 50))
        assert len(components) == 1  # just the residue

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            emd(np.zeros((3, 4)))

    def test_recombination_shape(self, rng):
        X = rng.standard_normal((3, 2, 64))
        out = EMDRecombination(sigma=0.2).transform(X, rng=rng)
        assert out.shape == X.shape
        assert np.isfinite(out).all()


class TestFastICA:
    def test_unmixes_independent_sources(self):
        rng = np.random.default_rng(2)
        t = np.linspace(0, 1, 2000)
        s1 = np.sign(np.sin(2 * np.pi * 5 * t))  # square wave
        s2 = np.sin(2 * np.pi * 3 * t)
        S = np.stack([s1, s2])
        A = np.array([[1.0, 0.6], [0.4, 1.0]])
        X = A @ S
        recovered, _, _ = fast_ica(X, rng=rng)
        # Each recovered component should correlate strongly with one source.
        corr = np.abs(np.corrcoef(np.vstack([recovered, S]))[:2, 2:])
        assert corr.max(axis=1).min() > 0.9

    def test_output_shapes(self):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((4, 100))
        S, W, mean = fast_ica(X, n_components=3, rng=rng)
        assert S.shape == (3, 100)
        assert W.shape == (3, 4)
        assert mean.shape == (4, 1)

    def test_mixing_shape(self, rng):
        X = rng.standard_normal((4, 3, 50))
        out = ICAMixing(sigma=0.2).transform(X, rng=rng)
        assert out.shape == X.shape
        assert np.isfinite(out).all()

    def test_univariate_fallback(self, rng):
        X = rng.standard_normal((4, 1, 20))
        out = ICAMixing(sigma=0.2).transform(X, rng=rng)
        # fallback is pure scaling
        ratios = out / X
        assert np.allclose(ratios.std(axis=2), 0.0, atol=1e-9)
