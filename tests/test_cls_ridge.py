"""Ridge classifier with LOO-CV alpha selection."""

import numpy as np
import pytest

from repro.classifiers import RidgeClassifierCV


def _blobs(rng, n=60, d=10, classes=3, gap=4.0):
    centers = rng.standard_normal((classes, d)) * gap
    y = rng.integers(0, classes, size=n)
    X = centers[y] + rng.standard_normal((n, d))
    return X, y


def test_separable_blobs(rng):
    X, y = _blobs(rng)
    model = RidgeClassifierCV().fit(X, y)
    assert model.score(X, y) > 0.95


def test_generalizes(rng):
    X, y = _blobs(rng, n=200)
    model = RidgeClassifierCV().fit(X[:150], y[:150])
    assert model.score(X[150:], y[150:]) > 0.9


def test_alpha_selected_from_candidates(rng):
    X, y = _blobs(rng)
    model = RidgeClassifierCV(alphas=np.array([0.1, 10.0])).fit(X, y)
    assert model.alpha_ in (0.1, 10.0)


def test_chosen_alpha_minimizes_brute_force_loo(rng):
    """The selected alpha is the brute-force LOO-error minimiser."""
    n, d = 14, 6
    X = rng.standard_normal((n, d))
    y = rng.integers(0, 2, n)
    alphas = np.array([0.01, 1.0, 100.0])
    model = RidgeClassifierCV(alphas=alphas, normalize=False).fit(X, y)

    targets = np.where(y[:, None] == np.unique(y)[None, :], 1.0, -1.0)
    centered = targets - targets.mean(axis=0)
    brute_errors = []
    for alpha in alphas:
        errors = []
        for leave in range(n):
            keep = np.arange(n) != leave
            gram = X[keep].T @ X[keep] + alpha * np.eye(d)
            coef = np.linalg.solve(gram, X[keep].T @ centered[keep])
            errors.append(((centered[leave] - X[leave] @ coef) ** 2).sum())
        brute_errors.append(np.sum(errors) / n)
    assert model.alpha_ == alphas[np.argmin(brute_errors)]


def test_binary_labels_arbitrary_values(rng):
    X, y = _blobs(rng, classes=2)
    labels = np.where(y == 0, 7, 42)
    model = RidgeClassifierCV().fit(X, labels)
    assert set(model.predict(X)) <= {7, 42}


def test_decision_function_shape(rng):
    X, y = _blobs(rng, classes=4)
    model = RidgeClassifierCV().fit(X, y)
    assert model.decision_function(X).shape == (len(X), 4)


def test_constant_feature_safe(rng):
    X, y = _blobs(rng)
    X[:, 0] = 5.0  # zero-variance feature
    model = RidgeClassifierCV().fit(X, y)
    assert np.isfinite(model.decision_function(X)).all()


def test_rejects_single_class():
    with pytest.raises(ValueError, match="two classes"):
        RidgeClassifierCV().fit(np.zeros((4, 2)), np.zeros(4))


def test_rejects_bad_alphas():
    with pytest.raises(ValueError):
        RidgeClassifierCV(alphas=np.array([-1.0, 1.0]))


def test_rejects_mismatched_lengths(rng):
    with pytest.raises(ValueError):
        RidgeClassifierCV().fit(rng.standard_normal((4, 2)), np.zeros(3))


def test_rejects_3d_features(rng):
    with pytest.raises(ValueError):
        RidgeClassifierCV().fit(rng.standard_normal((4, 2, 2)), np.zeros(4))


def test_loo_error_recorded(rng):
    X, y = _blobs(rng)
    model = RidgeClassifierCV().fit(X, y)
    assert model.best_loo_error_ >= 0


def test_loo_matches_explicit_leave_one_out(rng):
    """Closed-form LOO residuals equal literally refitting without each row."""
    n, d = 12, 5
    X = rng.standard_normal((n, d))
    y = rng.integers(0, 2, n)
    alpha = 1.0
    model = RidgeClassifierCV(alphas=np.array([alpha]), normalize=False)
    model.fit(X, y)

    # Recompute the LOO error by brute force on centred +/-1 targets.
    targets = np.where(y[:, None] == np.unique(y)[None, :], 1.0, -1.0)
    target_mean = targets.mean(axis=0)
    centered = targets - target_mean
    errors = []
    for leave in range(n):
        keep = np.arange(n) != leave
        gram = X[keep].T @ X[keep] + alpha * np.eye(d)
        coef = np.linalg.solve(gram, X[keep].T @ centered[keep])
        residual = centered[leave] - X[leave] @ coef
        errors.append((residual**2).sum())
    brute = np.sum(errors) / n
    assert np.isclose(model.best_loo_error_, brute, rtol=0.15)
