"""Internal utilities: RNG plumbing and validation helpers."""

import numpy as np
import pytest

from repro._rng import ensure_rng, spawn
from repro._validation import (
    check_labels,
    check_panel,
    check_panel_labels,
    check_positive,
    check_probability,
)


class TestRng:
    def test_int_seed_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_independent_streams(self):
        children = spawn(np.random.default_rng(0), 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_reproducible(self):
        a = [c.random() for c in spawn(np.random.default_rng(5), 4)]
        b = [c.random() for c in spawn(np.random.default_rng(5), 4)]
        assert a == b

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn(np.random.default_rng(0), -1)


class TestValidation:
    def test_check_panel_promotes_2d(self):
        out = check_panel(np.zeros((3, 5)))
        assert out.shape == (3, 1, 5)

    def test_check_panel_contiguous_float64(self):
        out = check_panel(np.asfortranarray(np.zeros((2, 3, 4), dtype=np.float32)))
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_check_panel_rejects_4d(self):
        with pytest.raises(ValueError):
            check_panel(np.zeros((1, 2, 3, 4)))

    def test_check_panel_rejects_empty(self):
        with pytest.raises(ValueError):
            check_panel(np.zeros((0, 2, 3)))

    def test_check_panel_allow_empty(self):
        out = check_panel(np.zeros((0, 2, 3)), allow_empty=True)
        assert out.shape == (0, 2, 3)

    def test_check_panel_rejects_zero_axes(self):
        with pytest.raises(ValueError):
            check_panel(np.zeros((2, 0, 3)))

    def test_check_labels_length(self):
        with pytest.raises(ValueError):
            check_labels(np.zeros(3), n=4)

    def test_check_labels_rejects_2d(self):
        with pytest.raises(ValueError):
            check_labels(np.zeros((2, 2)))

    def test_check_panel_labels_joint(self):
        X, y = check_panel_labels(np.zeros((3, 5)), np.arange(3))
        assert X.shape == (3, 1, 5)
        assert y.shape == (3,)

    def test_check_positive(self):
        check_positive(1, name="x")
        check_positive(0, name="x", strict=False)
        with pytest.raises(ValueError):
            check_positive(0, name="x")
        with pytest.raises(ValueError):
            check_positive(-1, name="x", strict=False)

    def test_check_probability(self):
        check_probability(0.0, name="p")
        check_probability(1.0, name="p")
        with pytest.raises(ValueError):
            check_probability(1.5, name="p")
