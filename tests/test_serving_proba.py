"""Probabilities on the wire: batcher proba path, service fields, HTTP.

The agreement contract (``argmax(predict_proba) == predict``) is swept
per classifier family in ``test_cls_contract.py``; here the serving
layers are checked to *carry* those probabilities faithfully — through
coalesced mixed batches, the service's ``return_proba`` surface, the
HTTP predict body flag and the NDJSON stream's confidence fields.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.classifiers import RocketClassifier
from repro.data import make_classification_panel
from repro.serving import (
    MicroBatcher,
    ModelRegistry,
    Prediction,
    PredictionService,
    ServingError,
    create_server,
    model_metadata,
    prepare_panel,
)
from repro.streaming import stream_windows

WINDOW = 32


@pytest.fixture(scope="module")
def problem():
    X, y = make_classification_panel(
        n_series=40, n_channels=2, length=WINDOW, n_classes=3,
        difficulty=0.2, seed=0,
    )
    return X, y


@pytest.fixture(scope="module")
def model(problem):
    X, y = problem
    return RocketClassifier(num_kernels=60, seed=0).fit(prepare_panel(X), y)


@pytest.fixture
def registry(tmp_path, problem, model):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(model, "demo", metadata=model_metadata(
        model, dataset="synthetic", preprocessing="znormalize+impute"))
    return registry


@pytest.fixture
def service(registry):
    service = PredictionService(registry, max_queue=256)
    yield service
    service.close()


class TestBatcherProba:
    def test_proba_fn_requires_classes(self, model):
        with pytest.raises(ValueError, match="classes"):
            MicroBatcher(model.predict, proba_fn=model.predict_proba)

    def test_return_proba_without_proba_fn_refused_at_submit(self, model):
        with MicroBatcher(model.predict) as batcher:
            assert not batcher.serves_proba
            with pytest.raises(ValueError, match="probabilities"):
                batcher.submit(np.zeros((2, WINDOW)), return_proba=True)

    def test_mixed_batch_one_pass(self, problem, model):
        """Proba and plain requests coalesce into one panel predicted
        once through the probability head; labels agree with predict."""
        X, _ = problem
        calls = {"predict": 0, "proba": 0}

        def predict_fn(panel):
            calls["predict"] += 1
            return model.predict(panel)

        def proba_fn(panel):
            calls["proba"] += 1
            return model.predict_proba(panel)

        prepared = prepare_panel(X[:8])
        with MicroBatcher(predict_fn, proba_fn=proba_fn,
                          classes=model.classes_, max_batch=64,
                          max_latency=0.2) as batcher:
            assert batcher.serves_proba
            futures = [
                batcher.submit(prepared[i], return_proba=bool(i % 2))
                for i in range(8)
            ]
            results = [future.result(timeout=10) for future in futures]
        assert calls["proba"] >= 1 and calls["predict"] == 0
        expected_labels = model.predict(prepared)
        expected_probas = model.predict_proba(prepared)
        for i, result in enumerate(results):
            if i % 2:
                assert isinstance(result, Prediction)
                assert result.label == expected_labels[i]
                np.testing.assert_allclose(result.proba, expected_probas[i])
            else:
                assert result == expected_labels[i]


class TestServiceProba:
    def test_predict_return_proba_fields(self, service, problem, model):
        X, _ = problem
        out = service.predict("demo", X[:5], return_proba=True)
        assert out["classes"] == [int(c) for c in model.classes_]
        assert len(out["probas"]) == len(out["labels"]) == 5
        assert len(out["confidences"]) == 5
        for label, proba, confidence in zip(out["labels"], out["probas"],
                                            out["confidences"]):
            assert confidence == pytest.approx(max(proba))
            assert out["classes"][int(np.argmax(proba))] == label
            assert sum(proba) == pytest.approx(1.0)
        # The labels equal the plain path's labels exactly.
        assert out["labels"] == service.predict("demo", X[:5])["labels"]

    def test_serves_proba(self, service):
        assert service.serves_proba("demo") is True
        with pytest.raises(ServingError):
            service.serves_proba("missing")

    def test_submit_return_proba_futures(self, service, problem):
        X, _ = problem
        record, futures = service.submit("demo", X[:3], return_proba=True)
        results = [future.result(timeout=10) for future in futures]
        assert all(isinstance(result, Prediction) for result in results)
        assert all(result.proba.shape == (3,) for result in results)


class TestHTTPProba:
    @pytest.fixture
    def server(self, registry):
        server = create_server(registry, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def _post(self, server, path, payload):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.load(response)
        except urllib.error.HTTPError as error:
            return error.code, json.load(error)

    def test_single_series_proba(self, server, problem):
        X, _ = problem
        status, body = self._post(
            server, "/v1/models/demo/predict",
            {"series": X[0].tolist(), "proba": True})
        assert status == 200
        assert body["confidence"] == pytest.approx(max(body["proba"]))
        assert body["classes"][int(np.argmax(body["proba"]))] == body["label"]
        assert "labels" not in body and "probas" not in body

    def test_instances_probas(self, server, problem):
        X, _ = problem
        status, body = self._post(
            server, "/v1/models/demo/predict",
            {"instances": [series.tolist() for series in X[:3]],
             "proba": True})
        assert status == 200
        assert len(body["probas"]) == len(body["labels"]) == 3
        assert body["confidences"] == [pytest.approx(max(p))
                                       for p in body["probas"]]

    def test_plain_request_has_no_proba_fields(self, server, problem):
        X, _ = problem
        status, body = self._post(server, "/v1/models/demo/predict",
                                  {"series": X[0].tolist()})
        assert status == 200
        assert "proba" not in body and "confidence" not in body

    def test_stream_lines_carry_confidence(self, server, problem):
        X, y = problem

        def samples():
            for series, label in zip(X[:4], y[:4]):
                for step in range(series.shape[1]):
                    yield (series[:, step], int(label))

        events = list(stream_windows("127.0.0.1", server.port, "demo",
                                     samples(), window=WINDOW))
        windows = [e for e in events if e["kind"] == "window"]
        assert len(windows) == 4
        assert all(0.0 <= e["confidence"] <= 1.0 for e in windows)
        assert all("proba" not in e for e in windows)  # opt-in only
        assert all("confidence_fast" in e["drift"] for e in windows)

    def test_stream_proba_opt_in_and_metrics(self, server, problem):
        X, y = problem

        def samples():
            for series in X[:3]:
                for step in range(series.shape[1]):
                    yield series[:, step]

        events = list(stream_windows("127.0.0.1", server.port, "demo",
                                     samples(), window=WINDOW, proba=True))
        windows = [e for e in events if e["kind"] == "window"]
        assert windows and all(len(e["proba"]) == 3 for e in windows)
        for event in windows:
            assert event["confidence"] == pytest.approx(max(event["proba"]),
                                                        abs=1e-3)
        with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics") as response:
            text = response.read().decode()
        assert "repro_serving_stream_confidence_bucket" in text
        assert 'repro_serving_stream_confidence_count{model="demo",version="1"}' \
            in text
